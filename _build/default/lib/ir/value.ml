(** Values (operands) of the miniature IR. *)

type t =
  | Var of int  (** SSA name / virtual register, function local *)
  | IConst of Types.t * int64  (** typed integer constant *)
  | FConst of float
  | Global of string  (** address of a global variable *)
  | Undef of Types.t

let i1 b = IConst (Types.I1, if b then 1L else 0L)
let i8 n = IConst (Types.I8, Int64.of_int n)
let i32 n = IConst (Types.I32, Int64.of_int n)
let i32_64 n = IConst (Types.I32, n)
let i64 n = IConst (Types.I64, Int64.of_int n)
let f64 x = FConst x
let var i = Var i

let is_const = function
  | IConst _ | FConst _ -> true
  | Var _ | Global _ | Undef _ -> false

let equal (a : t) (b : t) = a = b

let pp fmt = function
  | Var i -> Fmt.pf fmt "%%%d" i
  | IConst (t, n) -> Fmt.pf fmt "%s %Ld" (Types.to_string t) n
  | FConst x -> Fmt.pf fmt "double %h" x
  | Global g -> Fmt.pf fmt "@%s" g
  | Undef t -> Fmt.pf fmt "%s undef" (Types.to_string t)

let to_string v = Fmt.str "%a" pp v
