(** Imperative convenience layer for constructing functions: create a
    builder, open blocks, emit instructions, [finish] into an immutable
    {!Func.t}.  Used by the frontend and by obfuscators. *)

type t

val create : name:string -> param_tys:Types.t list -> ret:Types.t -> t

(** The [i]-th parameter as a value.
    @raise Invalid_argument when out of range *)
val param : t -> int -> Value.t

(** Mint a fresh SSA id. *)
val fresh_id : t -> int

(** Create a new (empty, unpositioned) block and return its label. *)
val new_block : ?hint:string -> t -> string

(** Position the builder at the end of a block.
    @raise Invalid_argument on unknown labels *)
val switch_to : t -> string -> unit

(** @raise Invalid_argument when no block is current *)
val current_label : t -> string

(** Append an instruction; returns the value it defines.
    @raise Invalid_argument when the block is already terminated *)
val emit : t -> ty:Types.t -> Instr.kind -> Value.t

val emit_void : t -> Instr.kind -> unit

(** Seal the current block.
    @raise Invalid_argument when already terminated *)
val terminate : t -> Instr.terminator -> unit

val is_terminated : t -> bool

(** Typed emission helpers. *)

val ibin : t -> Instr.ibin -> Value.t -> Value.t -> ty:Types.t -> Value.t
val fbin : t -> Instr.fbin -> Value.t -> Value.t -> Value.t
val icmp : t -> Instr.icmp -> Value.t -> Value.t -> Value.t
val fcmp : t -> Instr.fcmp -> Value.t -> Value.t -> Value.t
val alloca : t -> Types.t -> Value.t
val load : t -> ty:Types.t -> Value.t -> Value.t
val store : t -> Value.t -> Value.t -> unit
val gep : t -> ty:Types.t -> Value.t -> Value.t list -> Value.t
val phi : t -> ty:Types.t -> (Value.t * string) list -> Value.t
val select : t -> Value.t -> Value.t -> Value.t -> ty:Types.t -> Value.t
val call : t -> ty:Types.t -> string -> Value.t list -> Value.t
val cast : t -> Instr.cast -> Value.t -> ty:Types.t -> Value.t

val ret : t -> Value.t option -> unit
val br : t -> string -> unit
val condbr : t -> Value.t -> string -> string -> unit
val switch : t -> Value.t -> default:string -> (int64 * string) list -> unit

(** Assemble into an immutable function (blocks in creation order;
    unterminated blocks receive [unreachable]). *)
val finish : t -> Func.t
