(** Parser for the textual IR emitted by {!Pp}.

    Contract: for any module [m] produced by this library,
    [parse_module (Pp.module_to_string m)] prints identically and behaves
    identically under the interpreter.  Integer constant types (invisible in
    the printed form) are inferred from instruction context. *)

exception Parse_error of string

(** @raise Parse_error on malformed input *)
val parse_type : string -> Types.t

(** @raise Parse_error on malformed input *)
val parse_module : string -> Irmod.t
