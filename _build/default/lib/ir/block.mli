(** Basic blocks: a label, a straight-line list of instructions, and a
    single terminator. *)

type t = { label : string; instrs : Instr.t list; term : Instr.terminator }

val make : label:string -> instrs:Instr.t list -> term:Instr.terminator -> t

(** Phi instructions (a prefix of the instruction list when well formed). *)
val phis : t -> Instr.t list

val non_phis : t -> Instr.t list
val successors : t -> string list

(** All opcodes executed by the block, terminator included. *)
val opcodes : t -> Opcode.t list

(** Relabel phi entries from [old_pred] to [new_pred] (CFG surgery). *)
val retarget_phis : old_pred:string -> new_pred:string -> t -> t

(** Drop phi entries coming from a predecessor that no longer branches
    here; phis left with no entries are removed. *)
val remove_phi_entries : pred:string -> t -> t
