(** Textual rendering of the IR, in an LLVM-flavoured concrete syntax. *)

open Instr

let pp_value = Value.pp

let pp_operand fmt v =
  (* short form, without the type, for contexts where the type is implied *)
  match v with
  | Value.Var i -> Fmt.pf fmt "%%%d" i
  | Value.IConst (_, n) -> Fmt.pf fmt "%Ld" n
  | Value.FConst x -> Fmt.pf fmt "%h" x
  | Value.Global g -> Fmt.pf fmt "@%s" g
  | Value.Undef _ -> Fmt.string fmt "undef"

let pp_instr fmt (i : Instr.t) =
  let dst fmt () =
    if Instr.defines i then Fmt.pf fmt "%%%d = " i.id else ()
  in
  let ty = Types.to_string i.ty in
  match i.kind with
  | Ibin (op, a, b) ->
      Fmt.pf fmt "%a%s %s %a, %a" dst () (ibin_to_string op) ty pp_operand a
        pp_operand b
  | Fbin (op, a, b) ->
      Fmt.pf fmt "%a%s %s %a, %a" dst () (fbin_to_string op) ty pp_operand a
        pp_operand b
  | Fneg a -> Fmt.pf fmt "%afneg %s %a" dst () ty pp_operand a
  | Icmp (p, a, b) ->
      Fmt.pf fmt "%aicmp %s %a, %a" dst () (icmp_to_string p) pp_operand a
        pp_operand b
  | Fcmp (p, a, b) ->
      Fmt.pf fmt "%afcmp %s %a, %a" dst () (fcmp_to_string p) pp_operand a
        pp_operand b
  | Alloca t -> Fmt.pf fmt "%aalloca %s" dst () (Types.to_string t)
  | Load p -> Fmt.pf fmt "%aload %s, %a" dst () ty pp_operand p
  | Store (v, p) -> Fmt.pf fmt "store %a, %a" pp_operand v pp_operand p
  | Gep (base, idxs) ->
      Fmt.pf fmt "%agetelementptr %s %a%a" dst () ty pp_operand base
        Fmt.(list ~sep:nop (fun fmt i -> Fmt.pf fmt ", %a" pp_operand i))
        idxs
  | Phi incoming ->
      Fmt.pf fmt "%aphi %s %a" dst () ty
        Fmt.(
          list ~sep:(any ", ") (fun fmt (v, l) ->
              Fmt.pf fmt "[ %a, %%%s ]" pp_operand v l))
        incoming
  | Select (c, a, b) ->
      Fmt.pf fmt "%aselect %a, %s %a, %s %a" dst () pp_operand c ty pp_operand
        a ty pp_operand b
  | Call (callee, args) ->
      Fmt.pf fmt "%acall %s @%s(%a)" dst () ty callee
        Fmt.(list ~sep:(any ", ") pp_operand)
        args
  | Cast (c, a) ->
      Fmt.pf fmt "%a%s %a to %s" dst () (cast_to_string c) pp_operand a ty
  | Freeze a -> Fmt.pf fmt "%afreeze %a" dst () pp_operand a

let pp_terminator fmt (t : Instr.terminator) =
  match t with
  | Ret None -> Fmt.string fmt "ret void"
  | Ret (Some v) -> Fmt.pf fmt "ret %a" pp_operand v
  | Br l -> Fmt.pf fmt "br label %%%s" l
  | CondBr (c, t, e) ->
      Fmt.pf fmt "br %a, label %%%s, label %%%s" pp_operand c t e
  | Switch (v, d, cases) ->
      Fmt.pf fmt "switch %a, label %%%s [%a]" pp_operand v d
        Fmt.(
          list ~sep:(any " ") (fun fmt (k, l) -> Fmt.pf fmt "%Ld: %%%s" k l))
        cases
  | Unreachable -> Fmt.string fmt "unreachable"

let pp_block fmt (b : Block.t) =
  Fmt.pf fmt "%s:@." b.label;
  List.iter (fun i -> Fmt.pf fmt "  %a@." pp_instr i) b.instrs;
  Fmt.pf fmt "  %a@." pp_terminator b.term

let pp_func fmt (f : Func.t) =
  Fmt.pf fmt "define %s @%s(%a) {@." (Types.to_string f.ret) f.name
    Fmt.(
      list ~sep:(any ", ") (fun fmt (id, ty) ->
          Fmt.pf fmt "%s %%%d" (Types.to_string ty) id))
    f.params;
  List.iter (pp_block fmt) f.blocks;
  Fmt.pf fmt "}@."

let pp_global fmt (g : Irmod.global) =
  Fmt.pf fmt "@%s = global %s@." g.Irmod.gname (Types.to_string g.Irmod.gty)

let pp_module fmt (m : Irmod.t) =
  Fmt.pf fmt "; module %s@." m.mname;
  List.iter (pp_global fmt) m.globals;
  List.iter (fun f -> Fmt.pf fmt "@.%a" pp_func f) m.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let module_to_string m = Fmt.str "%a" pp_module m
