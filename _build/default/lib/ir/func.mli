(** Functions: parameters, a return type, and an ordered list of basic
    blocks (the first is the entry).  [next_id] / [next_label] are
    high-water marks letting passes mint fresh SSA names and labels. *)

type t = {
  name : string;
  params : (int * Types.t) list;  (** SSA id and type of each parameter *)
  ret : Types.t;
  blocks : Block.t list;
  next_id : int;
  next_label : int;
}

(** Build a function; high-water marks are derived from the contents. *)
val make :
  name:string ->
  params:(int * Types.t) list ->
  ret:Types.t ->
  blocks:Block.t list ->
  t

(** @raise Invalid_argument when the function has no blocks *)
val entry : t -> Block.t

val find_block : t -> string -> Block.t option

(** @raise Invalid_argument when absent *)
val find_block_exn : t -> string -> Block.t

(** Replace a block, matched by label. *)
val update_block : t -> Block.t -> t

val map_blocks : (Block.t -> Block.t) -> t -> t

(** Allocate [n] fresh SSA ids; returns the first and the updated function. *)
val fresh_ids : t -> int -> int * t

val fresh_label : t -> string -> string * t

(** All instructions, in block order (terminators excluded). *)
val instrs : t -> Instr.t list

(** All opcodes executed, terminators included. *)
val opcodes : t -> Opcode.t list

(** Instruction count, terminators included. *)
val instr_count : t -> int

(** Map from SSA id to defining instruction. *)
val definitions : t -> (int, Instr.t) Hashtbl.t

(** Rewrite every operand (instructions and terminators) with [g]. *)
val map_values : (Value.t -> Value.t) -> t -> t
