(** Control-flow-graph queries over a function: successor and predecessor
    maps, reachability, traversal orders. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  succ : string list SMap.t;
  pred : string list SMap.t;
  entry : string;
  order : string list;  (** block labels in function order *)
}

let of_func (f : Func.t) : t =
  let order = List.map (fun (b : Block.t) -> b.Block.label) f.Func.blocks in
  let succ =
    List.fold_left
      (fun m (b : Block.t) -> SMap.add b.label (Block.successors b) m)
      SMap.empty f.blocks
  in
  let pred =
    List.fold_left
      (fun m (b : Block.t) ->
        List.fold_left
          (fun m s ->
            SMap.update s
              (function None -> Some [ b.label ] | Some ps -> Some (b.label :: ps))
              m)
          m (Block.successors b))
      (List.fold_left (fun m l -> SMap.add l [] m) SMap.empty order)
      f.blocks
  in
  { succ; pred; entry = (Func.entry f).label; order }

let successors (g : t) l = try SMap.find l g.succ with Not_found -> []
let predecessors (g : t) l = try SMap.find l g.pred with Not_found -> []

(** Labels reachable from the entry block. *)
let reachable (g : t) : SSet.t =
  let rec go seen = function
    | [] -> seen
    | l :: rest ->
        if SSet.mem l seen then go seen rest
        else go (SSet.add l seen) (successors g l @ rest)
  in
  go SSet.empty [ g.entry ]

(** Reverse post-order over reachable blocks, starting at the entry. *)
let reverse_postorder (g : t) : string list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then (
      Hashtbl.add seen l ();
      List.iter dfs (successors g l);
      out := l :: !out)
  in
  dfs g.entry;
  !out

(** Number of edges in the CFG. *)
let edge_count (g : t) =
  SMap.fold (fun _ ss acc -> acc + List.length ss) g.succ 0

(** Does the CFG contain a cycle (i.e. a loop)? *)
let has_cycle (g : t) : bool =
  let color = Hashtbl.create 16 in
  (* 0 = white, 1 = grey, 2 = black *)
  let rec dfs l =
    match Hashtbl.find_opt color l with
    | Some 1 -> true
    | Some _ -> false
    | None ->
        Hashtbl.replace color l 1;
        let cyc = List.exists dfs (successors g l) in
        Hashtbl.replace color l 2;
        cyc
  in
  dfs g.entry
