(** Compilation units: a set of functions plus global variables.  Execution
    starts at [main]. *)

type global = {
  gname : string;
  gty : Types.t;
  ginit : int64 array;  (** flat word-level initialiser (zeros if absent) *)
}

type t = { mname : string; globals : global list; funcs : Func.t list }

let make ?(globals = []) ~name funcs = { mname = name; globals; funcs }

let find_func (m : t) (name : string) : Func.t option =
  List.find_opt (fun (f : Func.t) -> f.Func.name = name) m.funcs

let find_func_exn (m : t) name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Irmod.find_func: no function %s" name)

let find_global (m : t) (name : string) : global option =
  List.find_opt (fun g -> g.gname = name) m.globals

let map_funcs (g : Func.t -> Func.t) (m : t) : t =
  { m with funcs = List.map g m.funcs }

let update_func (m : t) (f : Func.t) : t =
  {
    m with
    funcs =
      List.map (fun (f' : Func.t) -> if f'.Func.name = f.Func.name then f else f') m.funcs;
  }

(** All opcodes of the module; the raw material of the histogram embedding. *)
let opcodes (m : t) : Opcode.t list = List.concat_map Func.opcodes m.funcs

let instr_count (m : t) =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 m.funcs
