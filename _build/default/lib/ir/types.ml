(** Types of the miniature IR.  A deliberately small lattice: enough to type
    the programs the mini-C frontend produces (integers of a few widths, one
    float type, pointers and flat arrays). *)

type t =
  | Void
  | I1
  | I8
  | I32
  | I64
  | F64
  | Ptr of t
  | Arr of t * int  (** element type, length *)

let rec to_string = function
  | Void -> "void"
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "double"
  | Ptr t -> to_string t ^ "*"
  | Arr (t, n) -> Printf.sprintf "[%d x %s]" n (to_string t)

let pp fmt t = Fmt.string fmt (to_string t)

let equal (a : t) (b : t) = a = b

let is_integer = function I1 | I8 | I32 | I64 -> true | _ -> false
let is_float = function F64 -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false

(** Bit width of an integer type. *)
let width = function
  | I1 -> 1
  | I8 -> 8
  | I32 -> 32
  | I64 -> 64
  | t -> invalid_arg ("Types.width: not an integer type: " ^ to_string t)

(** Type pointed to by a pointer type. *)
let deref = function
  | Ptr t -> t
  | t -> invalid_arg ("Types.deref: not a pointer type: " ^ to_string t)

(** Element type of an array or the pointee of a pointer. *)
let element = function
  | Arr (t, _) -> t
  | Ptr t -> t
  | t -> invalid_arg ("Types.element: " ^ to_string t)

(** Size of a type in abstract memory cells (the interpreter's heap is
    word-addressed: every scalar occupies one cell). *)
let rec size_in_cells = function
  | Void -> 0
  | I1 | I8 | I32 | I64 | F64 | Ptr _ -> 1
  | Arr (t, n) -> n * size_in_cells t
