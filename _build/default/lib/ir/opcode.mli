(** The instruction set of the miniature IR: exactly 63 opcodes, mirroring
    the 63-dimensional opcode histogram of the paper.  Exotic opcodes
    (vector, atomic, EH) exist in the universe — and hence in every
    histogram's dimensionality — even though the mini-C frontend never emits
    them, just as a C frontend exercises only part of LLVM. *)

type t =
  | Ret | Br | CondBr | Switch | Unreachable
  | Add | Sub | Mul | SDiv | UDiv | SRem | URem
  | Shl | LShr | AShr | And | Or | Xor
  | FAdd | FSub | FMul | FDiv | FRem | FNeg
  | Alloca | Load | Store | Gep
  | Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
  | PtrToInt | IntToPtr | Bitcast | AddrSpaceCast
  | ICmp | FCmp | Phi | Select | Call | Freeze | ExtractValue | InsertValue
  | ExtractElement | InsertElement | ShuffleVector
  | AtomicRMW | CmpXchg | Fence | VAArg | LandingPad | Resume | Invoke
  | CallBr | CatchSwitch | CatchRet | CleanupRet

(** All opcodes, in the canonical (histogram-bucket) order. *)
val all : t list

(** [List.length all] = 63: the histogram dimensionality. *)
val count : int

val to_string : t -> string
val of_string : string -> t option

(** Dense index of an opcode in [all]; addresses histogram buckets. *)
val index : t -> int

val pp : Format.formatter -> t -> unit

(** Abstract execution cost in cycles; drives the interpreter's cost model
    (the substrate of the paper's Figure 13). *)
val cost : t -> int
