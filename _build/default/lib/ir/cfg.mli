(** Control-flow-graph queries over a function: successor and predecessor
    maps, reachability, traversal orders. *)

module SMap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t
module SSet :
  Set.S with type elt = string and type t = Set.Make(String).t

type t = {
  succ : string list SMap.t;
  pred : string list SMap.t;
  entry : string;
  order : string list;  (** block labels in function order *)
}

val of_func : Func.t -> t

val successors : t -> string -> string list
val predecessors : t -> string -> string list

(** Labels reachable from the entry block. *)
val reachable : t -> SSet.t

(** Reverse post-order over reachable blocks. *)
val reverse_postorder : t -> string list

val edge_count : t -> int

(** Does the CFG contain a cycle (i.e. a loop)? *)
val has_cycle : t -> bool
