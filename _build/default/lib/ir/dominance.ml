(** Dominator tree and dominance frontiers, via the Cooper–Harvey–Kennedy
    iterative algorithm.  Needed by SSA construction (mem2reg). *)

module SMap = Map.Make (String)

type t = {
  idom : string SMap.t;  (** immediate dominator of each non-entry block *)
  frontier : string list SMap.t;
  rpo : string list;
}

let compute (g : Cfg.t) : t =
  let rpo = Cfg.reverse_postorder g in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom g.Cfg.entry g.Cfg.entry;
  let intersect a b =
    (* walk up the (partial) dominator tree by rpo index *)
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> g.Cfg.entry then
          let processed_preds =
            List.filter
              (fun p -> Hashtbl.mem idom p && Hashtbl.mem index p)
              (Cfg.predecessors g l)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom l <> Some new_idom then (
                Hashtbl.replace idom l new_idom;
                changed := true))
      rpo
  done;
  let idom_map =
    Hashtbl.fold
      (fun l d acc -> if l = g.Cfg.entry then acc else SMap.add l d acc)
      idom SMap.empty
  in
  (* dominance frontiers *)
  let frontier = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace frontier l []) rpo;
  List.iter
    (fun l ->
      let preds =
        List.filter (fun p -> Hashtbl.mem index p) (Cfg.predecessors g l)
      in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec runner r =
              if
                r <> (match SMap.find_opt l idom_map with Some d -> d | None -> g.Cfg.entry)
              then (
                let cur = try Hashtbl.find frontier r with Not_found -> [] in
                if not (List.mem l cur) then Hashtbl.replace frontier r (l :: cur);
                match SMap.find_opt r idom_map with
                | Some d when d <> r -> runner d
                | _ -> ())
            in
            runner p)
          preds)
    rpo;
  let frontier_map =
    Hashtbl.fold (fun l fs acc -> SMap.add l fs acc) frontier SMap.empty
  in
  { idom = idom_map; frontier = frontier_map; rpo }

let idom (d : t) (l : string) : string option = SMap.find_opt l d.idom

let frontier_of (d : t) (l : string) : string list =
  Option.value (SMap.find_opt l d.frontier) ~default:[]

(** Does block [a] dominate block [b]?  (Reflexive.) *)
let dominates (d : t) (a : string) (b : string) : bool =
  let rec up b = if a = b then true else
    match SMap.find_opt b d.idom with
    | Some p when p <> b -> up p
    | _ -> false
  in
  up b

(** Children map of the dominator tree. *)
let children (d : t) : string list SMap.t =
  SMap.fold
    (fun l p acc ->
      SMap.update p
        (function None -> Some [ l ] | Some ls -> Some (l :: ls))
        acc)
    d.idom SMap.empty
