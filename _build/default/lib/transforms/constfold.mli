(** Constant folding: evaluate instructions whose operands are literals and
    substitute results into uses.  Division by zero is left in place (its
    trap is the program's behaviour). *)

val fold_instr : Yali_ir.Instr.t -> Yali_ir.Value.t option
val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
