lib/transforms/dce.ml: Block Func Instr Int Irmod List Set Value Yali_ir
