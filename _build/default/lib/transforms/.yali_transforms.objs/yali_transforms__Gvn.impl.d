lib/transforms/gvn.ml: Block Cfg Dominance Func Hashtbl Instr Irmod List Map Option Printf String Types Value Yali_ir
