lib/transforms/constfold.mli: Yali_ir
