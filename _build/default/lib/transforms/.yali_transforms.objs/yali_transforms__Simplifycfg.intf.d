lib/transforms/simplifycfg.mli: Yali_ir
