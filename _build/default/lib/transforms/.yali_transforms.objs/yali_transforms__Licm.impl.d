lib/transforms/licm.ml: Block Cfg Func Instr Int Irmod List Loops Set Value Yali_ir
