lib/transforms/mem2reg.mli: Yali_ir
