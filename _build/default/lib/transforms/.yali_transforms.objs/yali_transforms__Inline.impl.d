lib/transforms/inline.ml: Block Func Hashtbl Instr Irmod List Option Value Yali_ir
