lib/transforms/mem2reg.ml: Block Cfg Dominance Func Hashtbl Instr Int Irmod List Map Option Queue Set String Types Value Yali_ir
