lib/transforms/dce.mli: Yali_ir
