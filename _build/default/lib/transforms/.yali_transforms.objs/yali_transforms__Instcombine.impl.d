lib/transforms/instcombine.ml: Block Constfold Func Hashtbl Instr Irmod List Types Value Yali_ir
