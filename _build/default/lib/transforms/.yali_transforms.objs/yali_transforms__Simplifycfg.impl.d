lib/transforms/simplifycfg.ml: Block Cfg Func Hashtbl Instr Int64 Irmod List Mem2reg Value Yali_ir
