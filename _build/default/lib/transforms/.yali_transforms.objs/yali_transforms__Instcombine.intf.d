lib/transforms/instcombine.mli: Yali_ir
