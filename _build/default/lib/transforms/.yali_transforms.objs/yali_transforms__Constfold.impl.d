lib/transforms/constfold.ml: Block Func Hashtbl Instr Int64 Interp Irmod List Option Value Yali_ir
