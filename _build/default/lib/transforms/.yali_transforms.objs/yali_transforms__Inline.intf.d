lib/transforms/inline.mli: Yali_ir
