lib/transforms/pipeline.ml: Constfold Dce Gvn Inline Instcombine Irmod Licm List Mem2reg Simplifycfg Yali_ir
