lib/transforms/gvn.mli: Yali_ir
