lib/transforms/pipeline.mli: Yali_ir
