lib/transforms/licm.mli: Yali_ir
