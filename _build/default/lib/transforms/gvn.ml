(** Dominator-scoped common-subexpression elimination (a light GVN).

    Pure instructions with syntactically equal keys are unified when an
    earlier occurrence dominates the later one.  Commutative operations are
    keyed on sorted operands. *)

open Yali_ir
module SMap = Map.Make (String)

let key_of (i : Instr.t) : string option =
  let v = Value.to_string in
  match i.kind with
  | Instr.Ibin (op, a, b) ->
      let a, b =
        if Instr.is_commutative_ibin op && compare b a < 0 then (b, a)
        else (a, b)
      in
      Some (Printf.sprintf "ib:%s:%s:%s:%s" (Instr.ibin_to_string op)
              (Types.to_string i.ty) (v a) (v b))
  | Instr.Fbin (op, a, b) ->
      Some (Printf.sprintf "fb:%s:%s:%s" (Instr.fbin_to_string op) (v a) (v b))
  | Instr.Fneg a -> Some (Printf.sprintf "fneg:%s" (v a))
  | Instr.Icmp (p, a, b) ->
      Some (Printf.sprintf "ic:%s:%s:%s" (Instr.icmp_to_string p) (v a) (v b))
  | Instr.Fcmp (p, a, b) ->
      Some (Printf.sprintf "fc:%s:%s:%s" (Instr.fcmp_to_string p) (v a) (v b))
  | Instr.Select (c, a, b) ->
      Some (Printf.sprintf "sel:%s:%s:%s" (v c) (v a) (v b))
  | Instr.Cast (c, a) ->
      Some
        (Printf.sprintf "cast:%s:%s:%s" (Instr.cast_to_string c)
           (Types.to_string i.ty) (v a))
  | Instr.Gep (base, idxs) ->
      Some
        (Printf.sprintf "gep:%s:%s" (v base)
           (String.concat "," (List.map v idxs)))
  (* loads, stores, calls, allocas, phis, freezes are not unified *)
  | _ -> None

let run_func (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let dom = Dominance.compute cfg in
  let children = Dominance.children dom in
  let block_tbl = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace block_tbl b.label b) f.blocks;
  let repl : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Value.Var id -> (
        match Hashtbl.find_opt repl id with Some v' -> resolve v' | None -> v)
    | _ -> v
  in
  let new_blocks : (string, Block.t) Hashtbl.t = Hashtbl.create 16 in
  let rec walk label (available : Value.t SMap.t) =
    let b = Hashtbl.find block_tbl label in
    let available = ref available in
    let instrs =
      List.filter_map
        (fun (i : Instr.t) ->
          let i = Instr.map_operands resolve i in
          if Instr.defines i && Instr.is_pure i then
            match key_of i with
            | Some k -> (
                match SMap.find_opt k !available with
                | Some v ->
                    Hashtbl.replace repl i.id v;
                    None
                | None ->
                    available := SMap.add k (Value.Var i.id) !available;
                    Some i)
            | None -> Some i
          else Some i)
        b.instrs
    in
    Hashtbl.replace new_blocks label
      { b with instrs; term = Instr.map_terminator_operands resolve b.term };
    List.iter
      (fun c -> walk c !available)
      (Option.value (SMap.find_opt label children) ~default:[])
  in
  walk cfg.Cfg.entry SMap.empty;
  let blocks =
    List.filter_map
      (fun (b : Block.t) -> Hashtbl.find_opt new_blocks b.label)
      f.blocks
  in
  (* a second resolve sweep: uses may appear in blocks processed before the
     def's replacement was recorded (not possible under dominance, but phi
     operands flow across edges) *)
  Func.map_values resolve { f with blocks }

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
