(** Loop-invariant code motion: pure, non-trapping instructions whose
    operands are loop-external move to a freshly inserted preheader.
    Divisions stay put (hoisting could introduce a trap on a zero-trip
    path); loads, stores and calls are never moved. *)

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
