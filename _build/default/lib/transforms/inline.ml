(** Function inlining.  Small, non-recursive callees are cloned into their
    callers; the callee's blocks are renamed, its parameters bound to the
    actual arguments, and its returns rewired to a continuation block with a
    phi collecting the return values. *)

open Yali_ir

let default_threshold = 40

let is_recursive (f : Func.t) : bool =
  List.exists
    (fun (i : Instr.t) ->
      match i.kind with Instr.Call (n, _) -> n = f.name | _ -> false)
    (Func.instrs f)

let inlinable ~threshold (f : Func.t) : bool =
  Func.instr_count f <= threshold && not (is_recursive f)

(* Clone [callee]'s body into [caller], returning the rewritten caller.
   [site_block] is split at the call site. *)
let inline_call (caller : Func.t) (callee : Func.t) ~(site_label : string)
    ~(call_instr : Instr.t) ~(args : Value.t list) : Func.t =
  let site = Func.find_block_exn caller site_label in
  (* fresh ids for every def of the callee *)
  let base_id, caller = Func.fresh_ids caller (callee.next_id + 1) in
  let rename_id id = base_id + id in
  let label_map = Hashtbl.create 16 in
  let caller = ref caller in
  List.iter
    (fun (b : Block.t) ->
      let l, c = Func.fresh_label !caller ("inl." ^ b.label) in
      caller := c;
      Hashtbl.replace label_map b.label l)
    callee.blocks;
  let cont_label, c = Func.fresh_label !caller "inl.cont" in
  caller := c;
  let caller = !caller in
  let rename_label l = Hashtbl.find label_map l in
  (* bind parameters: a simple substitution of params by argument values *)
  let param_sub = Hashtbl.create 8 in
  List.iter2
    (fun (pid, _) arg -> Hashtbl.replace param_sub pid arg)
    callee.params args;
  let rename_value (v : Value.t) : Value.t =
    match v with
    | Value.Var id -> (
        match Hashtbl.find_opt param_sub id with
        | Some arg -> arg
        | None -> Value.Var (rename_id id))
    | _ -> v
  in
  (* split the call site *)
  let before, after =
    let rec go acc = function
      | [] -> invalid_arg "inline_call: call instruction not found"
      | (i : Instr.t) :: rest ->
          if i == call_instr then (List.rev acc, rest)
          else go (i :: acc) rest
    in
    go [] site.instrs
  in
  let entry_clone = rename_label (Func.entry callee).label in
  let site' = { site with instrs = before; term = Instr.Br entry_clone } in
  (* clone callee blocks; collect return values *)
  let returns = ref [] in
  let clones =
    List.map
      (fun (b : Block.t) ->
        let label = rename_label b.label in
        let instrs =
          List.map
            (fun (i : Instr.t) ->
              let i = Instr.map_operands rename_value i in
              let i =
                match i.kind with
                | Instr.Phi incoming ->
                    {
                      i with
                      kind =
                        Instr.Phi
                          (List.map (fun (v, l) -> (v, rename_label l)) incoming);
                    }
                | _ -> i
              in
              { i with id = (if Instr.defines i then rename_id i.id else i.id) })
            b.instrs
        in
        let term =
          match b.term with
          | Instr.Ret v ->
              let v = Option.map rename_value v in
              returns := (label, v) :: !returns;
              Instr.Br cont_label
          | t ->
              Instr.map_successors rename_label
                (Instr.map_terminator_operands rename_value t)
        in
        Block.make ~label ~instrs ~term)
      callee.blocks
  in
  (* continuation block: phi over returned values feeding the old call id *)
  let cont_instrs =
    if Instr.defines call_instr then
      match !returns with
      | [] ->
          (* callee never returns: the continuation is unreachable, but uses
             of the call's id must stay defined for the verifier *)
          [
            Instr.mk ~id:call_instr.id ~ty:call_instr.ty
              (Instr.Freeze (Value.Undef call_instr.ty));
          ]
      | rets ->
          let incoming =
            List.map
              (fun (l, v) ->
                (Option.value v ~default:(Value.Undef call_instr.ty), l))
              rets
          in
          [ Instr.mk ~id:call_instr.id ~ty:call_instr.ty (Instr.Phi incoming) ]
    else []
  in
  let cont =
    Block.make ~label:cont_label ~instrs:(cont_instrs @ after) ~term:site.term
  in
  (* successors of the original site must retarget their phis to [cont] *)
  let blocks =
    List.concat_map
      (fun (b : Block.t) ->
        if b.label = site_label then [ site' ] else [ b ])
      caller.blocks
    @ clones @ [ cont ]
  in
  let old_succs = Instr.successors site.term in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        if List.mem b.label old_succs then
          Block.retarget_phis ~old_pred:site_label ~new_pred:cont_label b
        else b)
      blocks
  in
  { caller with blocks }

(** Inline every eligible call site in the module, bottom-up. *)
let run ?(threshold = default_threshold) (m : Irmod.t) : Irmod.t =
  let m = ref m in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 4 do
    incr rounds;
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        let f = Irmod.find_func_exn !m f.name in
        (* find one call site at a time; the function is rebuilt after each *)
        let rec step f =
          let site =
            List.find_map
              (fun (b : Block.t) ->
                List.find_map
                  (fun (i : Instr.t) ->
                    match i.kind with
                    | Instr.Call (callee_name, args)
                      when callee_name <> f.Func.name -> (
                        match Irmod.find_func !m callee_name with
                        | Some callee when inlinable ~threshold callee ->
                            Some (b.label, i, args, callee)
                        | _ -> None)
                    | _ -> None)
                  b.instrs)
              f.Func.blocks
          in
          match site with
          | Some (site_label, call_instr, args, callee) ->
              progress := true;
              step (inline_call f callee ~site_label ~call_instr ~args)
          | None -> f
        in
        m := Irmod.update_func !m (step f))
      !m.funcs
  done;
  !m
