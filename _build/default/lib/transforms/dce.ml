(** Dead-code elimination: iteratively remove pure instructions whose results
    are never used. *)

open Yali_ir
module ISet = Set.Make (Int)

let used_ids (f : Func.t) : ISet.t =
  let add acc (v : Value.t) =
    match v with Value.Var id -> ISet.add id acc | _ -> acc
  in
  List.fold_left
    (fun acc (b : Block.t) ->
      let acc =
        List.fold_left
          (fun acc (i : Instr.t) ->
            List.fold_left add acc (Instr.operands i))
          acc b.instrs
      in
      List.fold_left add acc (Instr.terminator_operands b.term))
    ISet.empty f.blocks

let run_func (f : Func.t) : Func.t =
  let f = ref f in
  let progress = ref true in
  while !progress do
    progress := false;
    let used = used_ids !f in
    f :=
      Func.map_blocks
        (fun b ->
          {
            b with
            instrs =
              List.filter
                (fun (i : Instr.t) ->
                  let keep =
                    (not (Instr.defines i))
                    || (not (Instr.is_pure i))
                    || ISet.mem i.id used
                  in
                  if not keep then progress := true;
                  keep)
                b.instrs;
          })
        !f
  done;
  !f

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
