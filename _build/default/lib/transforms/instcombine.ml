(** Peephole algebraic simplification ("instcombine").

    This pass is the heart of the paper's normalization story: O-LLVM's
    instruction-substitution obfuscation rewrites e.g. [a + b] into
    [a - (0 - b)] or [(a ^ b) + 2*(a & b)]; the rules below recognise such
    shapes and rewrite them back, which is why a classifier armed with an
    optimizer can undo the [sub] evader (paper, Example 2.5 and §4.4). *)

open Yali_ir
open Instr

let is_zero = function Value.IConst (_, 0L) -> true | _ -> false
let is_one = function Value.IConst (_, 1L) -> true | _ -> false
let is_allones = function Value.IConst (_, -1L) -> true | _ -> false

(* A definition table is consulted to look through operands. *)
type ctx = { defs : (int, Instr.t) Hashtbl.t }

let def_of (ctx : ctx) (v : Value.t) : Instr.t option =
  match v with Value.Var id -> Hashtbl.find_opt ctx.defs id | _ -> None

(* [0 - x] as an operand *)
let as_neg (ctx : ctx) (v : Value.t) : Value.t option =
  match def_of ctx v with
  | Some { kind = Ibin (Sub, z, x); _ } when is_zero z -> Some x
  | _ -> None

(* [x ^ -1] (bitwise not) as an operand *)
let as_not (ctx : ctx) (v : Value.t) : Value.t option =
  match def_of ctx v with
  | Some { kind = Ibin (Xor, x, m); _ } when is_allones m -> Some x
  | Some { kind = Ibin (Xor, m, x); _ } when is_allones m -> Some x
  | _ -> None

(* a binop with the given operator, as an operand *)
let as_ibin (ctx : ctx) (op : ibin) (v : Value.t) : (Value.t * Value.t) option
    =
  match def_of ctx v with
  | Some { kind = Ibin (op', a, b); _ } when op' = op -> Some (a, b)
  | _ -> None

(* [x << 1] (i.e. 2*x), as an operand *)
let as_twice (ctx : ctx) (v : Value.t) : Value.t option =
  match def_of ctx v with
  | Some { kind = Ibin (Shl, x, Value.IConst (_, 1L)); _ } -> Some x
  | Some { kind = Ibin (Mul, x, Value.IConst (_, 2L)); _ } -> Some x
  | Some { kind = Ibin (Mul, Value.IConst (_, 2L), x); _ } -> Some x
  | Some { kind = Ibin (Add, x, y); _ } when Value.equal x y -> Some x
  | _ -> None

let same_pair (a1, b1) (a2, b2) =
  (Value.equal a1 a2 && Value.equal b1 b2)
  || (Value.equal a1 b2 && Value.equal b1 a2)

type rewrite =
  | Value of Value.t  (** replace the instruction by a value *)
  | Instr of Instr.kind  (** replace the instruction's kind *)
  | Keep

let simplify (ctx : ctx) (i : Instr.t) : rewrite =
  match i.kind with
  | Ibin (Add, a, b) -> (
      if is_zero b then Value a
      else if is_zero a then Value b
      else
        (* the inverse rules for O-LLVM's -sub rewrites of [x + y]: *)
        let undo_ollvm_add () =
          let pairs l r =
            match (l ctx a, r ctx b) with
            | Some p, Some q -> Some (p, q)
            | _ -> (
                match (l ctx b, r ctx a) with
                | Some p, Some q -> Some (p, q)
                | _ -> None)
          in
          (* (x | y) + (x & y)  ==>  x + y *)
          match pairs (fun c v -> as_ibin c Or v) (fun c v -> as_ibin c And v) with
          | Some ((x, y), p) when same_pair (x, y) p ->
              Some (Instr (Ibin (Add, x, y)))
          | _ -> (
              (* (x ^ y) + 2*(x & y)  ==>  x + y *)
              let as_twice_and c v =
                match as_twice c v with
                | Some inner -> as_ibin c And inner
                | None -> None
              in
              match pairs (fun c v -> as_ibin c Xor v) as_twice_and with
              | Some ((x, y), p) when same_pair (x, y) p ->
                  Some (Instr (Ibin (Add, x, y)))
              | _ -> (
                  (* (x & y) + (x ^ y)  ==>  x | y *)
                  match
                    pairs (fun c v -> as_ibin c And v) (fun c v -> as_ibin c Xor v)
                  with
                  | Some ((x, y), p) when same_pair (x, y) p ->
                      Some (Instr (Ibin (Or, x, y)))
                  | _ -> None))
        in
        (* a + (0 - b)  ==>  a - b ; (0 - a) + b ==> b - a *)
        match (as_neg ctx a, as_neg ctx b) with
        | _, Some nb -> Instr (Ibin (Sub, a, nb))
        | Some na, _ -> Instr (Ibin (Sub, b, na))
        | None, None -> (
            match undo_ollvm_add () with Some r -> r | None -> Keep))
  | Ibin (Sub, a, b) -> (
      if is_zero b then Value a
      else if Value.equal a b then Value (Value.IConst (i.ty, 0L))
      else
        match as_neg ctx b with
        (* a - (0 - b) ==> a + b *)
        | Some nb -> Instr (Ibin (Add, a, nb))
        | None -> (
            (* inverse rules for O-LLVM's xor/and substitutions:
               (x | y) - (x & y) ==> x ^ y ; (x | y) - (x ^ y) ==> x & y *)
            match (as_ibin ctx Or a, as_ibin ctx And b, as_ibin ctx Xor b) with
            | Some (x, y), Some p, _ when same_pair (x, y) p ->
                Instr (Ibin (Xor, x, y))
            | Some (x, y), _, Some p when same_pair (x, y) p ->
                Instr (Ibin (And, x, y))
            | _ -> Keep))
  | Ibin (Mul, a, b) ->
      if is_one b then Value a
      else if is_one a then Value b
      else if is_zero a || is_zero b then Value (Value.IConst (i.ty, 0L))
      else if (match b with Value.IConst (_, 2L) -> true | _ -> false) then
        Instr (Ibin (Shl, a, Value.IConst (i.ty, 1L)))
      else Keep
  | Ibin (SDiv, a, b) when is_one b -> Value a
  | Ibin ((And | Or), a, b) when Value.equal a b -> Value a
  | Ibin (And, a, b) ->
      if is_zero a || is_zero b then Value (Value.IConst (i.ty, 0L))
      else if is_allones b then Value a
      else if is_allones a then Value b
      else Keep
  | Ibin (Or, a, b) ->
      if is_zero b then Value a
      else if is_zero a then Value b
      else if is_allones a || is_allones b then Value (Value.IConst (i.ty, -1L))
      else Keep
  | Ibin (Xor, a, b) -> (
      if Value.equal a b then Value (Value.IConst (i.ty, 0L))
      else if is_zero b then Value a
      else if is_zero a then Value b
      else
        (* ~(~x) ==> x *)
        match (as_not ctx a, as_not ctx b) with
        | Some x, _ when is_allones b -> Value x
        | _, Some x when is_allones a -> Value x
        | _ -> Keep)
  | Ibin ((Shl | LShr | AShr), a, s) when is_zero s -> Value a
  | Ibin ((Shl | LShr), a, _) when is_zero a -> Value a
  | Icmp (p, a, b) when Value.equal a b -> (
      match p with
      | Eq | Sle | Sge | Ule | Uge -> Value (Value.i1 true)
      | Ne | Slt | Sgt | Ult | Ugt -> Value (Value.i1 false))
  | Select (c, a, b) -> (
      if Value.equal a b then Value a
      else
        match c with
        | Value.IConst (_, 0L) -> Value b
        | Value.IConst (_, _) -> Value a
        | _ -> (
            (* select (icmp eq x 0) 0 x  and friends could be simplified;
               keep the common not-pattern: select c false true = !c *)
            match def_of ctx c with
            | Some { kind = Icmp (p, x, y); _ }
              when is_one a && is_zero b && i.ty = Types.I1 ->
                Instr (Icmp (p, x, y))
            | _ -> Keep))
  | Cast (ZExt, v) when i.ty = Types.I1 -> Value v
  | Cast ((ZExt | SExt | Trunc), v) -> (
      (* collapse cast chains that return to the original width, and
         trunc-of-zext of an i1 comparison *)
      match def_of ctx v with
      | Some { kind = Cast ((ZExt | SExt), inner); ty = _; _ } -> (
          match (inner, i.ty) with
          | Value.Var id, t -> (
              match Hashtbl.find_opt ctx.defs id with
              | Some d when d.ty = t -> Value inner
              | _ -> Keep)
          | _ -> Keep)
      | _ -> Keep)
  | Freeze v -> Value v
  | Phi [ (v, _) ] -> Value v
  | _ -> Keep

let run_func (f : Func.t) : Func.t =
  let f = ref f in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 8 do
    incr rounds;
    progress := false;
    let ctx = { defs = Func.definitions !f } in
    let repl : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
    let rewritten : (int, Instr.kind) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            if Instr.defines i && not (Hashtbl.mem repl i.id) then
              match simplify ctx i with
              | Value v ->
                  Hashtbl.replace repl i.id v;
                  progress := true
              | Instr k ->
                  Hashtbl.replace rewritten i.id k;
                  progress := true
              | Keep -> ())
          b.instrs)
      !f.blocks;
    if !progress then begin
      let rec resolve v =
        match v with
        | Value.Var id -> (
            match Hashtbl.find_opt repl id with
            | Some v' when v' <> v -> resolve v'
            | _ -> v)
        | _ -> v
      in
      f :=
        Func.map_blocks
          (fun b ->
            {
              b with
              instrs =
                List.filter_map
                  (fun (i : Instr.t) ->
                    if Hashtbl.mem repl i.id then None
                    else
                      let i =
                        match Hashtbl.find_opt rewritten i.id with
                        | Some k -> { i with kind = k }
                        | None -> i
                      in
                      Some (Instr.map_operands resolve i))
                  b.instrs;
              term = Instr.map_terminator_operands resolve b.term;
            })
          !f
    end
  done;
  Constfold.run_func !f

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
