(** Peephole algebraic simplification ("instcombine").  Includes the inverse
    rule for every identity O-LLVM's -sub obfuscation uses — [a - (0-b)],
    [(a|b)+(a&b)], [(a^b)+2(a&b)], [(a|b)-(a&b)], [(a|b)-(a^b)],
    [(a&b)+(a^b)] — which is why a classifier armed with an optimizer undoes
    that evader (paper, Example 2.5 and §4.4). *)

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
