(** Promotion of alloca slots to SSA registers ("mem2reg"): the classic
    phi-placement-on-iterated-dominance-frontiers algorithm, plus dead-block
    removal.  This is the pass the paper singles out: SSA conversion alone
    reverts the effect of most source-level obfuscations (§4.3). *)

(** Drop blocks unreachable from the entry (also exposed as a standalone
    cleanup). *)
val remove_unreachable : Yali_ir.Func.t -> Yali_ir.Func.t

(** Scalar allocas whose every use is a direct load or store. *)
val promotable_allocas : Yali_ir.Func.t -> (int * Yali_ir.Types.t) list

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
