(** Dead-code elimination: iteratively remove pure instructions whose
    results are never used. *)

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
