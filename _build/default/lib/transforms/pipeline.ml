(** Named passes and the clang-style optimization pipelines used throughout
    the paper's experiments: [-O0] (identity), [-O1], [-O2] and [-O3]. *)

open Yali_ir

type pass = { pname : string; prun : Irmod.t -> Irmod.t }

let mem2reg = { pname = "mem2reg"; prun = Mem2reg.run }
let constfold = { pname = "constfold"; prun = Constfold.run }
let instcombine = { pname = "instcombine"; prun = Instcombine.run }
let dce = { pname = "dce"; prun = Dce.run }
let simplifycfg = { pname = "simplifycfg"; prun = Simplifycfg.run }
let gvn = { pname = "gvn"; prun = Gvn.run }
let inline = { pname = "inline"; prun = (fun m -> Inline.run m) }
let licm = { pname = "licm"; prun = Licm.run }

let all_passes =
  [ mem2reg; constfold; instcombine; dce; simplifycfg; gvn; inline; licm ]

let find_pass name = List.find_opt (fun p -> p.pname = name) all_passes

let apply (passes : pass list) (m : Irmod.t) : Irmod.t =
  List.fold_left (fun m p -> p.prun m) m passes

(** Apply [passes] repeatedly until the module stops shrinking (bounded). *)
let apply_fixpoint ?(max_rounds = 3) (passes : pass list) (m : Irmod.t) :
    Irmod.t =
  let rec go m rounds =
    if rounds >= max_rounds then m
    else
      let m' = apply passes m in
      if Irmod.instr_count m' = Irmod.instr_count m then m' else go m' (rounds + 1)
  in
  go m 0

let o0 (m : Irmod.t) : Irmod.t = m

let o1 : Irmod.t -> Irmod.t =
  apply [ mem2reg; constfold; instcombine; simplifycfg; dce ]

let o2 : Irmod.t -> Irmod.t =
 fun m ->
  m
  |> apply [ mem2reg ]
  |> apply_fixpoint [ constfold; instcombine; simplifycfg; gvn; dce ]
  |> apply [ licm; dce ]

let o3 : Irmod.t -> Irmod.t =
 fun m ->
  m
  |> apply [ mem2reg; constfold; instcombine; simplifycfg ]
  |> apply [ inline ]
  |> apply_fixpoint ~max_rounds:4 [ constfold; instcombine; simplifycfg; gvn; dce ]
  |> apply [ licm; gvn; dce; simplifycfg ]

type level = O0 | O1 | O2 | O3

let level_of_string = function
  | "O0" | "o0" | "-O0" -> Some O0
  | "O1" | "o1" | "-O1" -> Some O1
  | "O2" | "o2" | "-O2" -> Some O2
  | "O3" | "o3" | "-O3" -> Some O3
  | _ -> None

let level_to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

let optimize (level : level) : Irmod.t -> Irmod.t =
  match level with O0 -> o0 | O1 -> o1 | O2 -> o2 | O3 -> o3
