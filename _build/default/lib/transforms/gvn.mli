(** Dominator-scoped common-subexpression elimination (a light GVN): pure
    instructions with equal keys unify when an earlier occurrence dominates
    the later one; commutative operations are keyed on sorted operands.
    Memory operations and calls are never unified. *)

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
