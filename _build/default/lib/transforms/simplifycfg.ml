(** Control-flow-graph simplification:

    - fold conditional branches / switches on constants;
    - remove unreachable blocks;
    - merge a block into its unique predecessor when that predecessor has a
      single successor;
    - collapse single-incoming phis.

    It is this pass (together with constant folding) that dismantles the kind
    of trivially-dead control flow naive obfuscators insert — though, as the
    paper observes, bogus control flow built on *opaque* predicates survives,
    because the predicate does not fold. *)

open Yali_ir

let fold_terminators (f : Func.t) : Func.t =
  Func.map_blocks
    (fun b ->
      let term =
        match b.term with
        | Instr.CondBr (Value.IConst (_, c), t, e) ->
            Instr.Br (if not (Int64.equal c 0L) then t else e)
        | Instr.CondBr (_, t, e) when t = e -> Instr.Br t
        | Instr.Switch (Value.IConst (_, k), d, cases) ->
            let target =
              match List.find_opt (fun (k', _) -> Int64.equal k k') cases with
              | Some (_, l) -> l
              | None -> d
            in
            Instr.Br target
        | Instr.Switch (v, d, []) ->
            ignore v;
            Instr.Br d
        | t -> t
      in
      { b with term })
    f

(* After terminator folding some blocks lose predecessors; their phi entries
   must be pruned.  [remove_unreachable] in Mem2reg handles the fully dead
   ones; here we prune phi entries for edges that disappeared. *)
let prune_phis (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  Func.map_blocks
    (fun b ->
      let preds = Cfg.predecessors cfg b.label in
      let instrs =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Phi incoming -> (
                match
                  List.filter (fun (_, l) -> List.mem l preds) incoming
                with
                | [] -> None
                | [ (v, _) ] when Instr.defines i ->
                    (* single predecessor: phi is just a copy; keep it as a
                       freeze so uses stay valid, Instcombine removes it *)
                    Some { i with kind = Instr.Freeze v }
                | incoming -> Some { i with kind = Instr.Phi incoming })
            | _ -> Some i)
          b.instrs
      in
      { b with instrs })
    f

(** Merge blocks with a unique predecessor whose terminator is an
    unconditional branch to them. *)
let merge_blocks (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let entry_label = (Func.entry f).label in
  (* candidate: label b s.t. pred(b) = [p], term(p) = Br b, b <> entry,
     and b has no phis *)
  let merged_into : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let rec root l =
    match Hashtbl.find_opt merged_into l with Some p -> root p | None -> l
  in
  let block_tbl = Hashtbl.create 16 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace block_tbl b.label (ref b)) f.blocks;
  List.iter
    (fun (b : Block.t) ->
      if b.label <> entry_label then
        match Cfg.predecessors cfg b.label with
        | [ p ] -> (
            let p = root p in
            let pb = !(Hashtbl.find block_tbl p) in
            (* b may itself have absorbed blocks already: use its current
               version, not the stale one from the iteration list *)
            let bcur = !(Hashtbl.find block_tbl b.label) in
            match pb.term with
            | Instr.Br l when l = b.label && Block.phis bcur = [] ->
                let nb =
                  {
                    pb with
                    instrs = pb.instrs @ bcur.instrs;
                    term = bcur.term;
                  }
                in
                Hashtbl.replace block_tbl p (ref nb);
                Hashtbl.replace merged_into b.label p
            | _ -> ())
        | _ -> ())
    f.blocks;
  if Hashtbl.length merged_into = 0 then f
  else
    let blocks =
      List.filter_map
        (fun (b : Block.t) ->
          if Hashtbl.mem merged_into b.label then None
          else Some !(Hashtbl.find block_tbl b.label))
        f.blocks
    in
    (* successors' phis must now name the merged predecessor *)
    let blocks =
      List.map
        (fun (b : Block.t) ->
          Hashtbl.fold
            (fun old_pred _ acc ->
              Block.retarget_phis ~old_pred ~new_pred:(root old_pred) acc)
            merged_into b)
        blocks
    in
    { f with blocks }

let run_func (f : Func.t) : Func.t =
  let f = ref f in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 10 do
    incr rounds;
    let before = List.length !f.blocks + Func.instr_count !f in
    f := fold_terminators !f;
    f := Mem2reg.remove_unreachable !f;
    f := prune_phis !f;
    f := merge_blocks !f;
    let after = List.length !f.blocks + Func.instr_count !f in
    progress := after <> before
  done;
  !f

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
