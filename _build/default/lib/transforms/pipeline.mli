(** Named passes and the clang-style optimization pipelines the paper's
    experiments use as both evaders ([-O3]) and normalizers. *)

type pass = { pname : string; prun : Yali_ir.Irmod.t -> Yali_ir.Irmod.t }

val mem2reg : pass
val constfold : pass
val instcombine : pass
val dce : pass
val simplifycfg : pass
val gvn : pass
val inline : pass
val licm : pass

val all_passes : pass list
val find_pass : string -> pass option

(** Run passes in order. *)
val apply : pass list -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t

(** Re-run the pass list until the module stops shrinking (bounded by
    [max_rounds]). *)
val apply_fixpoint :
  ?max_rounds:int -> pass list -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t

val o0 : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
val o1 : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
val o2 : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
val o3 : Yali_ir.Irmod.t -> Yali_ir.Irmod.t

type level = O0 | O1 | O2 | O3

val level_of_string : string -> level option
val level_to_string : level -> string
val optimize : level -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t
