(** Loop-invariant code motion.

    Pure instructions inside a loop whose operands are all defined outside
    the loop (or are themselves hoisted invariants) move to a preheader
    block inserted on the unique non-latch entry edge.  Loads and stores are
    left alone (no alias analysis); calls are never hoisted.

    LICM strengthens the O3 normalizer against evaders that bury arithmetic
    inside loops. *)

open Yali_ir
module SSet = Loops.SSet
module ISet = Set.Make (Int)

(* insert a preheader for a loop whose header has exactly the predecessors
   latches + outside preds; returns the new function, the preheader label,
   or None if the shape is unsuitable *)
let make_preheader (f : Func.t) (l : Loops.loop) :
    (Func.t * string) option =
  let cfg = Cfg.of_func f in
  let preds = Cfg.predecessors cfg l.header in
  let outside = List.filter (fun p -> not (List.mem p l.latches)) preds in
  match outside with
  | [] -> None
  | _ ->
      if l.header = (Func.entry f).label then None
      else
        let ph_label, f = Func.fresh_label f (l.header ^ ".preheader") in
        (* outside preds retarget to the preheader; phi entries in the
           header from outside preds move into the preheader's phis *)
        let header = Func.find_block_exn f l.header in
        (* split header phis: outside-incoming part becomes a phi in the
           preheader, the header phi keeps latch entries + the preheader *)
        let next = ref f.next_id in
        let fresh () =
          let id = !next in
          incr next;
          id
        in
        let ph_phis = ref [] in
        let new_header_instrs =
          List.map
            (fun (i : Instr.t) ->
              match i.kind with
              | Instr.Phi incoming ->
                  let out_in, latch_in =
                    List.partition (fun (_, l') -> List.mem l' outside) incoming
                  in
                  (match out_in with
                  | [] -> i
                  | [ (v, _) ] when List.length outside = 1 ->
                      (* single outside pred: route the value through *)
                      { i with kind = Instr.Phi ((v, ph_label) :: latch_in) }
                  | _ ->
                      let ph_id = fresh () in
                      ph_phis :=
                        Instr.mk ~id:ph_id ~ty:i.ty (Instr.Phi out_in)
                        :: !ph_phis;
                      {
                        i with
                        kind =
                          Instr.Phi ((Value.Var ph_id, ph_label) :: latch_in);
                      })
              | _ -> i)
            header.instrs
        in
        let header' = { header with instrs = new_header_instrs } in
        let preheader =
          Block.make ~label:ph_label ~instrs:(List.rev !ph_phis)
            ~term:(Instr.Br l.header)
        in
        (* retarget outside preds' terminators *)
        let blocks =
          List.concat_map
            (fun (b : Block.t) ->
              if b.label = l.header then [ header'; preheader ]
              else if List.mem b.label outside then
                [
                  {
                    b with
                    term =
                      Instr.map_successors
                        (fun s -> if s = l.header then ph_label else s)
                        b.term;
                  };
                ]
              else [ b ])
            f.blocks
        in
        Some ({ f with blocks; next_id = !next }, ph_label)

let hoistable (i : Instr.t) =
  match i.kind with
  | Instr.Ibin ((Instr.SDiv | Instr.UDiv | Instr.SRem | Instr.URem), _, _) ->
      (* division can trap; hoisting may introduce a trap on a path that
         never executed it *)
      false
  | Instr.Ibin _ | Instr.Fbin _ | Instr.Fneg _ | Instr.Icmp _ | Instr.Fcmp _
  | Instr.Select _ | Instr.Cast _ | Instr.Gep _ ->
      true
  | _ -> false

let run_func (f : Func.t) : Func.t =
  let loops = Loops.of_func f in
  List.fold_left
    (fun f (l : Loops.loop) ->
      (* recompute against the current function: earlier hoists may have
         changed labels *)
      let loops_now = Loops.of_func f in
      match
        List.find_opt (fun (l' : Loops.loop) -> l'.header = l.header)
          loops_now.loops
      with
      | None -> f
      | Some l -> (
          match make_preheader f l with
          | None -> f
          | Some (f, ph_label) ->
              (* defs inside the loop *)
              let loop_defs = ref ISet.empty in
              List.iter
                (fun (b : Block.t) ->
                  if SSet.mem b.label l.body then
                    List.iter
                      (fun (i : Instr.t) ->
                        if Instr.defines i then
                          loop_defs := ISet.add i.id !loop_defs)
                      b.instrs)
                f.blocks;
              (* iterate: hoist instructions whose operands are all
                 loop-external *)
              let hoisted = ref [] in
              let changed = ref true in
              let f = ref f in
              while !changed do
                changed := false;
                let blocks =
                  List.map
                    (fun (b : Block.t) ->
                      if not (SSet.mem b.label l.body) then b
                      else
                        let keep =
                          List.filter
                            (fun (i : Instr.t) ->
                              let invariant =
                                Instr.defines i && hoistable i
                                && List.for_all
                                     (fun (v : Value.t) ->
                                       match v with
                                       | Value.Var id ->
                                           not (ISet.mem id !loop_defs)
                                       | _ -> true)
                                     (Instr.operands i)
                              in
                              if invariant then begin
                                hoisted := i :: !hoisted;
                                loop_defs := ISet.remove i.id !loop_defs;
                                changed := true;
                                false
                              end
                              else true)
                            b.instrs
                        in
                        { b with instrs = keep })
                    !f.blocks
                in
                f := { !f with blocks }
              done;
              if !hoisted = [] then !f
              else
                let ph = Func.find_block_exn !f ph_label in
                let ph' =
                  { ph with instrs = ph.instrs @ List.rev !hoisted }
                in
                Func.update_block !f ph'))
    f
    (Loops.innermost_first loops)

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
