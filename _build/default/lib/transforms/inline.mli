(** Function inlining: small, non-(directly-)recursive callees are cloned
    into their callers; returns rewire to a continuation block with a phi
    over return values. *)

val default_threshold : int

val is_recursive : Yali_ir.Func.t -> bool
val inlinable : threshold:int -> Yali_ir.Func.t -> bool

(** Inline every eligible call site, bottom-up, until fixpoint (bounded). *)
val run : ?threshold:int -> Yali_ir.Irmod.t -> Yali_ir.Irmod.t
