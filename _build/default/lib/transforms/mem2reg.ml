(** Promotion of alloca slots to SSA registers ("mem2reg").

    The classic algorithm: find promotable allocas (all uses are direct loads
    and stores), place phi nodes on the iterated dominance frontier of the
    stores, then rename along a dominator-tree walk.  This is the pass the
    paper singles out (Section 4.3): the SSA conversion alone reverts the
    effect of most source-level obfuscations. *)

open Yali_ir
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

(** Drop blocks not reachable from the entry (required before the dominance
    computation; also a useful cleanup in its own right). *)
let remove_unreachable (f : Func.t) : Func.t =
  let cfg = Cfg.of_func f in
  let reach = Cfg.reachable cfg in
  let blocks =
    List.filter (fun (b : Block.t) -> Cfg.SSet.mem b.label reach) f.blocks
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        (* phis may still reference removed predecessors *)
        let instrs =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.kind with
              | Instr.Phi incoming -> (
                  match
                    List.filter (fun (_, l) -> Cfg.SSet.mem l reach) incoming
                  with
                  | [] -> None
                  | incoming -> Some { i with kind = Instr.Phi incoming })
              | _ -> Some i)
            b.instrs
        in
        { b with instrs })
      blocks
  in
  { f with blocks }

(* An alloca is promotable when every use is a Load's pointer or a Store's
   pointer (not its value operand, not a gep base, not a call argument). *)
let promotable_allocas (f : Func.t) : (int * Types.t) list =
  let allocas = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Alloca ty -> (
              (* only scalar slots are promotable *)
              match ty with
              | Types.Arr _ -> ()
              | _ -> Hashtbl.replace allocas i.id ty)
          | _ -> ())
        b.instrs)
    f.blocks;
  let disqualify (v : Value.t) =
    match v with
    | Value.Var id -> Hashtbl.remove allocas id
    | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Load _ -> ()
          | Instr.Store (v, _) -> disqualify v
          | _ -> List.iter disqualify (Instr.operands i))
        b.instrs;
      List.iter disqualify (Instr.terminator_operands b.term))
    f.blocks;
  Hashtbl.fold (fun id ty acc -> (id, ty) :: acc) allocas []

let run_func (f : Func.t) : Func.t =
  let f = remove_unreachable f in
  let promo = promotable_allocas f in
  if promo = [] then f
  else
    let promo_set = ISet.of_list (List.map fst promo) in
    let ty_of = Hashtbl.create 16 in
    List.iter (fun (id, ty) -> Hashtbl.replace ty_of id ty) promo;
    let cfg = Cfg.of_func f in
    let dom = Dominance.compute cfg in
    (* blocks containing a store to each alloca *)
    let def_blocks : (int, Cfg.SSet.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Store (_, Value.Var a) when ISet.mem a promo_set ->
                let cur =
                  Option.value
                    (Hashtbl.find_opt def_blocks a)
                    ~default:Cfg.SSet.empty
                in
                Hashtbl.replace def_blocks a (Cfg.SSet.add b.label cur)
            | _ -> ())
          b.instrs)
      f.blocks;
    (* phi placement on the iterated dominance frontier *)
    let next_id = ref f.next_id in
    let fresh () =
      let id = !next_id in
      incr next_id;
      id
    in
    (* (block label, phi id) -> alloca it stands for; plus per-block list *)
    let phi_for : (string * int, int) Hashtbl.t = Hashtbl.create 32 in
    let phis_of_block : (string, int list) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (a, _ty) ->
        let placed = Hashtbl.create 8 in
        let work = Queue.create () in
        Cfg.SSet.iter
          (fun l -> Queue.add l work)
          (Option.value (Hashtbl.find_opt def_blocks a) ~default:Cfg.SSet.empty);
        while not (Queue.is_empty work) do
          let l = Queue.pop work in
          List.iter
            (fun df ->
              if not (Hashtbl.mem placed df) then (
                Hashtbl.replace placed df ();
                let id = fresh () in
                Hashtbl.replace phi_for (df, id) a;
                Hashtbl.replace phis_of_block df
                  (id
                  :: Option.value (Hashtbl.find_opt phis_of_block df) ~default:[]);
                (* the phi is itself a def *)
                Queue.add df work))
            (Dominance.frontier_of dom l)
        done)
      promo;
    (* rename along the dominator tree *)
    let repl : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
    let rec resolve (v : Value.t) : Value.t =
      match v with
      | Value.Var id -> (
          match Hashtbl.find_opt repl id with
          | Some v' ->
              let r = resolve v' in
              Hashtbl.replace repl id r;
              r
          | None -> v)
      | _ -> v
    in
    let block_tbl = Hashtbl.create 16 in
    List.iter (fun (b : Block.t) -> Hashtbl.replace block_tbl b.label b) f.blocks;
    let new_instrs : (string, Instr.t list) Hashtbl.t = Hashtbl.create 16 in
    let new_terms : (string, Instr.terminator) Hashtbl.t = Hashtbl.create 16 in
    (* phi incoming accumulators: (block, phi id) -> (value, pred) list *)
    let phi_incoming : (string * int, (Value.t * string) list ref) Hashtbl.t =
      Hashtbl.create 32
    in
    Hashtbl.iter
      (fun (l, id) _ -> Hashtbl.replace phi_incoming (l, id) (ref []))
      phi_for;
    let dom_children = Dominance.children dom in
    let rec walk (label : string) (env : (int * Value.t) list) =
      let b = Hashtbl.find block_tbl label in
      let env = ref env in
      let lookup a =
        match List.assoc_opt a !env with
        | Some v -> resolve v
        | None -> Value.Undef (Hashtbl.find ty_of a)
      in
      (* new phis of this block first *)
      let own_phis =
        List.rev_map
          (fun id ->
            let a = Hashtbl.find phi_for (label, id) in
            env := (a, Value.Var id) :: !env;
            (id, a))
          (Option.value (Hashtbl.find_opt phis_of_block label) ~default:[])
      in
      let kept =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.kind with
            | Instr.Alloca _ when ISet.mem i.id promo_set -> None
            | Instr.Store (v, Value.Var a) when ISet.mem a promo_set ->
                env := (a, resolve v) :: !env;
                None
            | Instr.Load (Value.Var a) when ISet.mem a promo_set ->
                Hashtbl.replace repl i.id (lookup a);
                None
            | _ -> Some (Instr.map_operands resolve i))
          b.instrs
      in
      let phi_instrs =
        List.map
          (fun (id, a) ->
            Instr.mk ~id ~ty:(Hashtbl.find ty_of a) (Instr.Phi []))
          (List.rev own_phis)
      in
      Hashtbl.replace new_instrs label (phi_instrs @ kept);
      Hashtbl.replace new_terms label
        (Instr.map_terminator_operands resolve b.term);
      (* feed successors' phis (dedupe: several edges may share a target) *)
      List.iter
        (fun s ->
          List.iter
            (fun id ->
              let a = Hashtbl.find phi_for (s, id) in
              let acc = Hashtbl.find phi_incoming (s, id) in
              if not (List.exists (fun (_, l) -> l = label) !acc) then
                acc := (lookup a, label) :: !acc)
            (Option.value (Hashtbl.find_opt phis_of_block s) ~default:[]))
        (List.sort_uniq compare (Cfg.successors cfg label));
      (* recurse into dominated blocks *)
      List.iter
        (fun c -> walk c !env)
        (Option.value (SMap.find_opt label dom_children) ~default:[])
    in
    walk cfg.Cfg.entry [];
    (* assemble, filling phi incoming lists *)
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.map
              (fun (i : Instr.t) ->
                match i.kind with
                | Instr.Phi [] when Hashtbl.mem phi_for (b.label, i.id) ->
                    let incoming =
                      List.map
                        (fun (v, l) -> (resolve v, l))
                        !(Hashtbl.find phi_incoming (b.label, i.id))
                    in
                    { i with kind = Instr.Phi incoming }
                | Instr.Phi incoming ->
                    (* pre-existing phi: resolve operands *)
                    {
                      i with
                      kind =
                        Instr.Phi
                          (List.map (fun (v, l) -> (resolve v, l)) incoming);
                    }
                | _ -> i)
              (Hashtbl.find new_instrs b.label)
          in
          { b with instrs; term = Hashtbl.find new_terms b.label })
        f.blocks
    in
    { f with blocks; next_id = !next_id }

let run : Irmod.t -> Irmod.t = Irmod.map_funcs run_func
