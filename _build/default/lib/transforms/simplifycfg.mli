(** Control-flow-graph simplification: fold constant branches and switches,
    remove unreachable blocks, merge straight-line chains, collapse
    single-incoming phis.  Dismantles trivially-dead control flow — but not
    opaque-predicate bogus control flow, which does not fold (the paper's
    §4.4 caveat). *)

val run_func : Yali_ir.Func.t -> Yali_ir.Func.t
val run : Yali_ir.Irmod.t -> Yali_ir.Irmod.t
