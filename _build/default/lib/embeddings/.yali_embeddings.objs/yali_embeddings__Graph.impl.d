lib/embeddings/graph.ml: Array List
