lib/embeddings/inst2vec.mli: Embedding Yali_ir
