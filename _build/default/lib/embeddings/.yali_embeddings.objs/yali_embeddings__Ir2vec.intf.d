lib/embeddings/ir2vec.mli: Yali_ir
