lib/embeddings/graphs.ml: Array Block Func Graph Hashtbl Histogram Instr Irmod List Opcode Printf Value Yali_ir
