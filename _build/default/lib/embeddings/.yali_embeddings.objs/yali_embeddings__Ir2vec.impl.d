lib/embeddings/ir2vec.ml: Array Block Func Hashtbl Instr Irmod List Opcode Types Value Yali_ir Yali_util
