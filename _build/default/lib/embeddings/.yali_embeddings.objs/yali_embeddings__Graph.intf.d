lib/embeddings/graph.mli:
