lib/embeddings/inst2vec.ml: Array Block Embedding Func Hashtbl Instr Irmod List Opcode Printf String Types Value Yali_ir Yali_util
