lib/embeddings/embedding.ml: Array Graph Graphs Histogram Ir2vec Irmod List Milepost Yali_ir
