lib/embeddings/histogram.ml: Array Func Irmod List Opcode Yali_ir
