lib/embeddings/milepost.ml: Array Block Cfg Dominance Func Instr Int64 Irmod List Types Value Verify Yali_ir
