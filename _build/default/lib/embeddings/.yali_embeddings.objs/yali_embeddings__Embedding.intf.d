lib/embeddings/embedding.mli: Graph Yali_ir
