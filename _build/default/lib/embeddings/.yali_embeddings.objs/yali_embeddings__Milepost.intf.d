lib/embeddings/milepost.mli: Yali_ir
