lib/embeddings/histogram.mli: Yali_ir
