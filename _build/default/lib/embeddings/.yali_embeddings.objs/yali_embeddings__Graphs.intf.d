lib/embeddings/graphs.mli: Graph Yali_ir
