(** The six graph-based program representations of the paper's Figure 3:
    instruction-level graphs (Brauckmann et al.), basic-block-compact graphs
    (Faustino), and ProGraML (Cummins et al.). *)

(** Instruction nodes, control edges. *)
val cfg : Yali_ir.Irmod.t -> Graph.t

(** Instruction nodes, control + SSA def-use edges. *)
val cdfg : Yali_ir.Irmod.t -> Graph.t

(** [cdfg] plus call edges and coarse store→load memory edges. *)
val cdfg_plus : Yali_ir.Irmod.t -> Graph.t

(** Basic-block nodes with per-block opcode-histogram features, control
    edges. *)
val cfg_compact : Yali_ir.Irmod.t -> Graph.t

(** [cfg_compact] plus block-level data edges. *)
val cdfg_compact : Yali_ir.Irmod.t -> Graph.t

(** Instruction nodes plus value nodes (one per SSA name), typed
    control/data/call edges. *)
val programl : Yali_ir.Irmod.t -> Graph.t
