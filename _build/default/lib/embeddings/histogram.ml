(** The HISTOGRAM embedding (Silva et al.): a vector of {!Yali_ir.Opcode.count}
    positions counting instruction opcodes.  The paper's central finding is
    that this 63-dimensional bag of opcodes classifies algorithms as well as
    far more elaborate representations. *)

open Yali_ir

let dim = Opcode.count

let of_opcodes (ops : Opcode.t list) : float array =
  let h = Array.make dim 0.0 in
  List.iter (fun op -> h.(Opcode.index op) <- h.(Opcode.index op) +. 1.0) ops;
  h

let of_func (f : Func.t) : float array = of_opcodes (Func.opcodes f)
let of_module (m : Irmod.t) : float array = of_opcodes (Irmod.opcodes m)

(** L1-normalised variant: opcode proportions rather than counts. *)
let normalized_of_module (m : Irmod.t) : float array =
  let h = of_module m in
  let total = Array.fold_left ( +. ) 0.0 h in
  if total > 0.0 then Array.map (fun x -> x /. total) h else h

let euclidean (a : float array) (b : float array) : float =
  if Array.length a <> Array.length b then
    invalid_arg "Histogram.euclidean: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc
