(** The six graph-based program representations evaluated by the paper:

    - [cfg] / [cdfg] / [cdfg_plus] — Brauckmann et al.: instruction-level
      nodes with control, control+data, and control+data+call+memory edges;
    - [cfg_compact] / [cdfg_compact] — Faustino: basic-block-level nodes
      whose features are per-block opcode histograms;
    - [programl] — Cummins et al.: instruction nodes plus separate value
      nodes, with typed control/data/call edges. *)

open Yali_ir

let opcode_dim = Opcode.count

let one_hot (op : Opcode.t) : float array =
  let v = Array.make opcode_dim 0.0 in
  v.(Opcode.index op) <- 1.0;
  v

(* node numbering helpers over a module: one pass assigns ids to every
   instruction (including terminators as pseudo-instructions). *)
type inode = {
  ni_id : int;
  ni_op : Opcode.t;
  ni_def : int;  (** SSA id defined, or -1 *)
  ni_uses : int list;  (** SSA ids used *)
  ni_block : string;
  ni_func : string;
  ni_callee : string option;
  ni_is_mem : [ `Load | `Store | `No ];
}

let collect_inodes (m : Irmod.t) : inode list =
  let next = ref 0 in
  let nodes = ref [] in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              let uses =
                List.filter_map
                  (fun (v : Value.t) ->
                    match v with Value.Var id -> Some id | _ -> None)
                  (Instr.operands i)
              in
              nodes :=
                {
                  ni_id = !next;
                  ni_op = Instr.opcode i;
                  ni_def = (if Instr.defines i then i.id else -1);
                  ni_uses = uses;
                  ni_block = b.label;
                  ni_func = f.name;
                  ni_callee =
                    (match i.kind with
                    | Instr.Call (c, _) -> Some c
                    | _ -> None);
                  ni_is_mem =
                    (match i.kind with
                    | Instr.Load _ -> `Load
                    | Instr.Store _ -> `Store
                    | _ -> `No);
                }
                :: !nodes;
              incr next)
            b.instrs;
          let uses =
            List.filter_map
              (fun (v : Value.t) ->
                match v with Value.Var id -> Some id | _ -> None)
              (Instr.terminator_operands b.term)
          in
          nodes :=
            {
              ni_id = !next;
              ni_op = Instr.opcode_of_terminator b.term;
              ni_def = -1;
              ni_uses = uses;
              ni_block = b.label;
              ni_func = f.name;
              ni_callee = None;
              ni_is_mem = `No;
            }
            :: !nodes;
          incr next)
        f.blocks)
    m.funcs;
  List.rev !nodes

(* control edges at instruction granularity: consecutive instructions within
   a block, plus terminator -> first instruction of each successor block *)
let control_edges (m : Irmod.t) (nodes : inode list) :
    (int * int * Graph.edge_type) list =
  (* first and last node id of each (func, block) *)
  let firsts = Hashtbl.create 64 and lasts = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let key = (n.ni_func, n.ni_block) in
      if not (Hashtbl.mem firsts key) then Hashtbl.replace firsts key n.ni_id;
      Hashtbl.replace lasts key n.ni_id)
    nodes;
  let edges = ref [] in
  (* intra-block chains *)
  let prev : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let key = (n.ni_func, n.ni_block) in
      (match Hashtbl.find_opt prev key with
      | Some p -> edges := (p, n.ni_id, Graph.Control) :: !edges
      | None -> ());
      Hashtbl.replace prev key n.ni_id)
    nodes;
  (* cross-block edges *)
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let from = Hashtbl.find lasts (f.name, b.label) in
          List.iter
            (fun succ ->
              match Hashtbl.find_opt firsts (f.name, succ) with
              | Some dst -> edges := (from, dst, Graph.Control) :: !edges
              | None -> ())
            (Block.successors b))
        f.blocks)
    m.funcs;
  !edges

(* data edges: def -> use via SSA names (per function) *)
let data_edges (nodes : inode list) : (int * int * Graph.edge_type) list =
  let def_site : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if n.ni_def >= 0 then Hashtbl.replace def_site (n.ni_func, n.ni_def) n.ni_id)
    nodes;
  List.concat_map
    (fun n ->
      List.filter_map
        (fun use ->
          match Hashtbl.find_opt def_site (n.ni_func, use) with
          | Some def -> Some (def, n.ni_id, Graph.Data)
          | None -> None)
        n.ni_uses)
    nodes

(* call edges: call site -> first instruction of callee *)
let call_edges (m : Irmod.t) (nodes : inode list) :
    (int * int * Graph.edge_type) list =
  let entry_node : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      let entry = (Func.entry f).label in
      match
        List.find_opt
          (fun n -> n.ni_func = f.name && n.ni_block = entry)
          nodes
      with
      | Some n -> Hashtbl.replace entry_node f.name n.ni_id
      | None -> ())
    m.funcs;
  List.filter_map
    (fun n ->
      match n.ni_callee with
      | Some callee -> (
          match Hashtbl.find_opt entry_node callee with
          | Some dst -> Some (n.ni_id, dst, Graph.Call)
          | None -> None)
      | None -> None)
    nodes

(* memory edges: store -> subsequent loads, per function (a coarse
   may-alias approximation: all memory operations of a function are
   connected store->load in program order) *)
let memory_edges (nodes : inode list) : (int * int * Graph.edge_type) list =
  let edges = ref [] in
  let last_store : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match n.ni_is_mem with
      | `Store -> Hashtbl.replace last_store n.ni_func n.ni_id
      | `Load -> (
          match Hashtbl.find_opt last_store n.ni_func with
          | Some s -> edges := (s, n.ni_id, Graph.Memory) :: !edges
          | None -> ())
      | `No -> ())
    nodes;
  !edges

let instr_graph (m : Irmod.t) ~(with_data : bool) ~(with_call : bool)
    ~(with_mem : bool) : Graph.t =
  let nodes = collect_inodes m in
  let feats =
    Array.of_list (List.map (fun n -> one_hot n.ni_op) nodes)
  in
  let edges = control_edges m nodes in
  let edges = if with_data then edges @ data_edges nodes else edges in
  let edges = if with_call then edges @ call_edges m nodes else edges in
  let edges = if with_mem then edges @ memory_edges nodes else edges in
  { Graph.node_feats = feats; edges; feat_dim = opcode_dim }

let cfg (m : Irmod.t) : Graph.t =
  instr_graph m ~with_data:false ~with_call:false ~with_mem:false

let cdfg (m : Irmod.t) : Graph.t =
  instr_graph m ~with_data:true ~with_call:false ~with_mem:false

let cdfg_plus (m : Irmod.t) : Graph.t =
  instr_graph m ~with_data:true ~with_call:true ~with_mem:true

(* compact variants: one node per basic block, features are per-block opcode
   histograms *)
let compact_graph (m : Irmod.t) ~(with_data : bool) : Graph.t =
  let ids : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          Hashtbl.replace ids (f.name, b.label) !next;
          incr next)
        f.blocks)
    m.funcs;
  let feats = Array.make !next [||] in
  let edges = ref [] in
  List.iter
    (fun (f : Func.t) ->
      (* def block of each SSA id, for block-level data edges *)
      let def_block : (int, string) Hashtbl.t = Hashtbl.create 64 in
      if with_data then
        List.iter
          (fun (b : Block.t) ->
            List.iter
              (fun (i : Instr.t) ->
                if Instr.defines i then Hashtbl.replace def_block i.id b.label)
              b.instrs)
          f.blocks;
      List.iter
        (fun (b : Block.t) ->
          let id = Hashtbl.find ids (f.name, b.label) in
          feats.(id) <- Histogram.of_opcodes (Block.opcodes b);
          List.iter
            (fun succ ->
              match Hashtbl.find_opt ids (f.name, succ) with
              | Some dst -> edges := (id, dst, Graph.Control) :: !edges
              | None -> ())
            (Block.successors b);
          if with_data then
            List.iter
              (fun (i : Instr.t) ->
                List.iter
                  (fun (v : Value.t) ->
                    match v with
                    | Value.Var use -> (
                        match Hashtbl.find_opt def_block use with
                        | Some src_label when src_label <> b.label -> (
                            match Hashtbl.find_opt ids (f.name, src_label) with
                            | Some src -> edges := (src, id, Graph.Data) :: !edges
                            | None -> ())
                        | _ -> ())
                    | _ -> ())
                  (Instr.operands i))
              b.instrs)
        f.blocks)
    m.funcs;
  {
    Graph.node_feats = feats;
    edges = List.sort_uniq compare !edges;
    feat_dim = opcode_dim;
  }

let cfg_compact (m : Irmod.t) : Graph.t = compact_graph m ~with_data:false
let cdfg_compact (m : Irmod.t) : Graph.t = compact_graph m ~with_data:true

(* ProGraML: instruction nodes plus value nodes (one per SSA name and one
   per distinct constant), typed edges *)
let programl (m : Irmod.t) : Graph.t =
  let nodes = collect_inodes m in
  let n_instr = List.length nodes in
  (* value nodes appended after instruction nodes *)
  let value_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref n_instr in
  let value_node key =
    match Hashtbl.find_opt value_ids key with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.replace value_ids key id;
        id
  in
  let edges = ref (control_edges m nodes) in
  List.iter
    (fun n ->
      if n.ni_def >= 0 then begin
        let vn = value_node (Printf.sprintf "%s/%d" n.ni_func n.ni_def) in
        edges := (n.ni_id, vn, Graph.Data) :: !edges
      end;
      List.iter
        (fun use ->
          let vn = value_node (Printf.sprintf "%s/%d" n.ni_func use) in
          edges := (vn, n.ni_id, Graph.Data) :: !edges)
        n.ni_uses)
    nodes;
  List.iter
    (fun (s, d, t) -> edges := (s, d, t) :: !edges)
    (call_edges m nodes);
  (* features: instruction nodes carry opcode one-hots in the first 63 dims;
     value nodes set an extra "is-value" dimension *)
  let dim = opcode_dim + 1 in
  let feats = Array.init !next (fun _ -> Array.make dim 0.0) in
  List.iter
    (fun n -> feats.(n.ni_id).(Opcode.index n.ni_op) <- 1.0)
    nodes;
  Hashtbl.iter (fun _ id -> feats.(id).(opcode_dim) <- 1.0) value_ids;
  { Graph.node_feats = feats; edges = !edges; feat_dim = dim }
