(** Attributed directed graphs: the common output format of the graph-based
    program representations (CFG, CDFG, ProGraML, …), and the input format of
    the DGCNN classifier.  Mirrors the three-tensor encoding of Brauckmann et
    al.: node attributes, edge list, edge attributes. *)

type edge_type = Control | Data | Call | Memory

let edge_type_index = function Control -> 0 | Data -> 1 | Call -> 2 | Memory -> 3
let edge_type_count = 4

type t = {
  node_feats : float array array;  (** [n] rows of dimension [feat_dim] *)
  edges : (int * int * edge_type) list;
  feat_dim : int;
}

let node_count (g : t) = Array.length g.node_feats
let edge_count (g : t) = List.length g.edges

let empty ~feat_dim = { node_feats = [||]; edges = []; feat_dim }

(** Out-adjacency lists, ignoring edge types. *)
let adjacency (g : t) : int list array =
  let adj = Array.make (node_count g) [] in
  List.iter
    (fun (s, d, _) ->
      if s < Array.length adj && d < Array.length adj then
        adj.(s) <- d :: adj.(s))
    g.edges;
  adj

(** Symmetric adjacency (used by graph convolutions). *)
let undirected_adjacency (g : t) : int list array =
  let adj = Array.make (node_count g) [] in
  List.iter
    (fun (s, d, _) ->
      if s < Array.length adj && d < Array.length adj then begin
        adj.(s) <- d :: adj.(s);
        if s <> d then adj.(d) <- s :: adj.(d)
      end)
    g.edges;
  adj

(** Flatten a graph into a fixed-size summary vector: mean and max over node
    features plus degree statistics.  Used when a flat model is asked to
    consume a graph embedding. *)
let to_flat (g : t) : float array =
  let n = node_count g in
  let d = g.feat_dim in
  let out = Array.make ((2 * d) + 4) 0.0 in
  if n > 0 then begin
    for j = 0 to d - 1 do
      let sum = ref 0.0 and mx = ref neg_infinity in
      for i = 0 to n - 1 do
        let v = g.node_feats.(i).(j) in
        sum := !sum +. v;
        if v > !mx then mx := v
      done;
      out.(j) <- !sum /. float_of_int n;
      out.(d + j) <- !mx
    done;
    out.((2 * d) + 0) <- float_of_int n;
    out.((2 * d) + 1) <- float_of_int (edge_count g);
    out.((2 * d) + 2) <-
      float_of_int (edge_count g) /. float_of_int (max 1 n);
    out.((2 * d) + 3) <-
      List.fold_left
        (fun acc (_, _, ty) -> if ty = Data then acc +. 1.0 else acc)
        0.0 g.edges
  end;
  out
