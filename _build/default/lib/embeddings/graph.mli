(** Attributed directed graphs: the common output of the graph-based program
    representations and the input of the DGCNN classifier.  Mirrors the
    node-attribute / edge-list / edge-attribute encoding of Brauckmann et
    al. *)

type edge_type = Control | Data | Call | Memory

val edge_type_index : edge_type -> int
val edge_type_count : int

type t = {
  node_feats : float array array;  (** one row of length [feat_dim] per node *)
  edges : (int * int * edge_type) list;
  feat_dim : int;
}

val node_count : t -> int
val edge_count : t -> int
val empty : feat_dim:int -> t

(** Out-adjacency lists (edge types erased). *)
val adjacency : t -> int list array

(** Symmetric adjacency, as used by graph convolutions. *)
val undirected_adjacency : t -> int list array

(** Fixed-size summary vector (mean/max node features + degree statistics);
    lets flat models consume graph embeddings. *)
val to_flat : t -> float array
