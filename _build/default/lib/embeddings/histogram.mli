(** The HISTOGRAM embedding (Silva et al.): a vector of {!Yali_ir.Opcode.count}
    positions counting instruction opcodes — the paper's simplest and, in
    symmetric games, unbeaten program representation. *)

(** Dimensionality: the number of opcodes (63). *)
val dim : int

val of_opcodes : Yali_ir.Opcode.t list -> float array
val of_func : Yali_ir.Func.t -> float array
val of_module : Yali_ir.Irmod.t -> float array

(** L1-normalised variant: opcode proportions rather than counts. *)
val normalized_of_module : Yali_ir.Irmod.t -> float array

(** Euclidean distance between two equal-length vectors (the paper's
    Figure 10 metric).  @raise Invalid_argument on dimension mismatch *)
val euclidean : float array -> float array -> float
