(** A MILEPOST-GCC-style static feature vector (Namolaru et al.).  The
    original collects 56 hand-designed counters over the compiler's IR; this
    re-implementation computes the analogous counters over the miniature IR:
    CFG shape statistics, instruction class counts, and value statistics. *)

open Yali_ir

let dim = 56

let of_func (f : Func.t) : float array =
  let v = Array.make dim 0.0 in
  let add i x = v.(i) <- v.(i) +. x in
  let cfg = Cfg.of_func f in
  let blocks = f.blocks in
  let n_blocks = List.length blocks in
  add 0 (float_of_int n_blocks);
  List.iter
    (fun (b : Block.t) ->
      let n_succ = List.length (Block.successors b) in
      let n_pred = List.length (Cfg.predecessors cfg b.label) in
      (* 1-8: block shape counters, after MILEPOST ft2..ft9 *)
      if n_succ = 1 then add 1 1.0;
      if n_succ = 2 then add 2 1.0;
      if n_succ > 2 then add 3 1.0;
      if n_pred = 1 then add 4 1.0;
      if n_pred = 2 then add 5 1.0;
      if n_pred > 2 then add 6 1.0;
      if n_pred = 1 && n_succ = 1 then add 7 1.0;
      if n_pred = 2 && n_succ = 2 then add 8 1.0;
      let n_instrs = List.length b.instrs in
      (* 9-11: block size buckets *)
      if n_instrs < 15 then add 9 1.0
      else if n_instrs <= 500 then add 10 1.0
      else add 11 1.0;
      List.iter
        (fun (i : Instr.t) ->
          match i.kind with
          | Instr.Phi args ->
              add 12 1.0;
              add 13 (float_of_int (List.length args));
              if List.length args > 3 then add 14 1.0
          | Instr.Ibin (op, a, b') -> (
              add 15 1.0;
              (match op with
              | Instr.Add -> add 16 1.0
              | Instr.Sub -> add 17 1.0
              | Instr.Mul -> add 18 1.0
              | Instr.SDiv | Instr.UDiv -> add 19 1.0
              | Instr.SRem | Instr.URem -> add 20 1.0
              | Instr.Shl | Instr.LShr | Instr.AShr -> add 21 1.0
              | Instr.And | Instr.Or | Instr.Xor -> add 22 1.0);
              match (a, b') with
              | _, Value.IConst (_, k) | Value.IConst (_, k), _ ->
                  add 23 1.0;
                  if Int64.equal k 0L then add 24 1.0;
                  if Int64.equal k 1L then add 25 1.0
              | _ -> ())
          | Instr.Fbin _ | Instr.Fneg _ -> add 26 1.0
          | Instr.Icmp _ -> add 27 1.0
          | Instr.Fcmp _ -> add 28 1.0
          | Instr.Load _ -> add 29 1.0
          | Instr.Store _ -> add 30 1.0
          | Instr.Alloca _ -> add 31 1.0
          | Instr.Gep _ -> add 32 1.0
          | Instr.Call (callee, args) ->
              add 33 1.0;
              add 34 (float_of_int (List.length args));
              if Verify.(List.mem callee intrinsics) then add 35 1.0;
              if i.ty = Types.Void then add 36 1.0
          | Instr.Select _ -> add 37 1.0
          | Instr.Cast _ -> add 38 1.0
          | Instr.Freeze _ -> add 39 1.0)
        b.instrs;
      match b.term with
      | Instr.Ret _ -> add 40 1.0
      | Instr.Br _ -> add 41 1.0
      | Instr.CondBr _ -> add 42 1.0
      | Instr.Switch (_, _, cases) ->
          add 43 1.0;
          add 44 (float_of_int (List.length cases))
      | Instr.Unreachable -> add 45 1.0)
    blocks;
  (* 46-49: whole-function statistics *)
  add 46 (float_of_int (Func.instr_count f));
  add 47 (float_of_int (Cfg.edge_count cfg));
  add 48 (if Cfg.has_cycle cfg then 1.0 else 0.0);
  add 49 (float_of_int (List.length f.params));
  (* 50-55: dominance / structure statistics *)
  (try
     let dom = Dominance.compute cfg in
     let depth l =
       let rec go l acc =
         match Dominance.idom dom l with
         | Some p when p <> l -> go p (acc + 1)
         | _ -> acc
       in
       go l 0
     in
     let depths = List.map (fun (b : Block.t) -> depth b.label) blocks in
     add 50 (float_of_int (List.fold_left max 0 depths));
     add 51
       (float_of_int (List.fold_left ( + ) 0 depths)
       /. float_of_int (max 1 n_blocks))
   with _ -> ());
  add 52 (float_of_int n_blocks /. float_of_int (max 1 (Func.instr_count f)));
  add 53
    (float_of_int (Cfg.edge_count cfg) /. float_of_int (max 1 n_blocks));
  add 54 (float_of_int (List.length (Cfg.reverse_postorder cfg)));
  add 55 (if f.ret = Types.Void then 1.0 else 0.0);
  v

let of_module (m : Irmod.t) : float array =
  let v = Array.make dim 0.0 in
  List.iter
    (fun f ->
      let fv = of_func f in
      Array.iteri (fun i x -> v.(i) <- v.(i) +. x) fv)
    m.funcs;
  v
