(** A MILEPOST-GCC-style static feature vector (Namolaru et al.): 56
    hand-designed counters over the IR — CFG shape statistics, instruction
    class counts, dominance and structure statistics. *)

val dim : int
val of_func : Yali_ir.Func.t -> float array
val of_module : Yali_ir.Irmod.t -> float array
