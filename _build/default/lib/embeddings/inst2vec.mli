(** An INST2VEC-style statement embedding (Ben-Nun et al.) — an *extension*:
    the paper attempted to include inst2vec but its artifact ran out of
    memory (§3.1 fn. 1).  This variant keeps the statement-shape vocabulary
    and control-flow context smoothing while deriving bounded deterministic
    seed vectors.  Not part of {!Embedding.all} (the paper's Figure 5 has
    exactly nine rows). *)

val dim : int

(** Weight of neighbouring statements in the context window. *)
val w_context : float

val token_of_instr : Yali_ir.Instr.t -> string
val of_func : Yali_ir.Func.t -> float array
val of_module : Yali_ir.Irmod.t -> float array

(** Registry entry for use with the {!Embedding} API. *)
val embedding : Embedding.t
