(** An IR2Vec-style distributed embedding (VenkataKeerthy et al.):
    instruction vectors composed from seed vectors for opcode, type and
    argument kinds ([w_o·opcode + w_t·type + w_a·args]), summed into
    function and program vectors.  Seed vectors are derived deterministically
    from token hashes rather than learned — similar instruction mixes still
    land close together, which is the property the experiments use. *)

val dim : int

val w_opcode : float
val w_type : float
val w_arg : float

val instr_vec : Yali_ir.Instr.t -> float array
val of_func : Yali_ir.Func.t -> float array
val of_module : Yali_ir.Irmod.t -> float array
