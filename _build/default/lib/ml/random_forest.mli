(** Random forests: bagged CART trees with per-split feature subsampling and
    majority voting — the paper's consistently best model (§4.2). *)

type t

type params = { n_trees : int; max_depth : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  float array array ->
  int array ->
  t

val predict : t -> float array -> int

(** Approximate heap footprint. *)
val size_bytes : t -> int
