(** Linear support-vector machine: one-vs-rest hinge loss trained with an
    averaged Pegasos-style stochastic subgradient method — SciKit's [svm]
    counterpart at laptop scale.

    The bias is folded in as a constant feature; the returned predictor uses
    the *average* of the weight iterates, which stabilises the one-vs-rest
    scores when the number of classes is large (the 104-class grids of the
    paper's Figures 7–12). *)

module Rng = Yali_util.Rng

type t = {
  scaler : Features.scaler;
  weights : Matrix.t;  (** n_classes x (d+1); last column is the bias *)
  n_classes : int;
}

type params = { epochs : int; lambda : float; step_offset : float }

let default_params = { epochs = 30; lambda = 1e-4; step_offset = 100.0 }

let augment (x : float array) : float array =
  let d = Array.length x in
  Array.init (d + 1) (fun j -> if j < d then x.(j) else 1.0)

let score_row (w : Matrix.t) (c : int) (x : float array) : float =
  let acc = ref 0.0 in
  for j = 0 to Array.length x - 1 do
    acc := !acc +. (Matrix.get w c j *. x.(j))
  done;
  !acc

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (xs : float array array) (ys : int array) : t =
  let scaler, xs = Features.fit_transform xs in
  let xs = Array.map augment xs in
  let n = Array.length xs in
  let d = if n = 0 then 1 else Array.length xs.(0) in
  let w = Matrix.create n_classes d in
  let w_sum = Matrix.create n_classes d in
  let t_step = ref 0 in
  let n_avg = ref 0 in
  for _epoch = 0 to params.epochs - 1 do
    for _ = 0 to n - 1 do
      let i = Rng.int rng n in
      incr t_step;
      let eta =
        1.0 /. (params.lambda *. (float_of_int !t_step +. params.step_offset))
      in
      let x = xs.(i) in
      for c = 0 to n_classes - 1 do
        let y = if ys.(i) = c then 1.0 else -1.0 in
        let margin = y *. score_row w c x in
        let shrink = 1.0 -. (eta *. params.lambda) in
        if margin < 1.0 then
          for j = 0 to d - 1 do
            Matrix.set w c j ((Matrix.get w c j *. shrink) +. (eta *. y *. x.(j)))
          done
        else
          for j = 0 to d - 1 do
            Matrix.set w c j (Matrix.get w c j *. shrink)
          done
      done;
      (* tail averaging: accumulate the second half of the trajectory *)
      if 2 * !t_step > params.epochs * n then begin
        incr n_avg;
        Matrix.axpy ~a:1.0 w w_sum
      end
    done
  done;
  let weights =
    if !n_avg > 0 then Matrix.scale (1.0 /. float_of_int !n_avg) w_sum else w
  in
  { scaler; weights; n_classes }

let predict (t : t) (x : float array) : int =
  let x = augment (Features.transform t.scaler x) in
  let best = ref 0 and best_score = ref neg_infinity in
  for c = 0 to t.n_classes - 1 do
    let s = score_row t.weights c x in
    if s > !best_score then begin
      best_score := s;
      best := c
    end
  done;
  !best

let size_bytes (t : t) : int = 8 * t.weights.rows * t.weights.cols
