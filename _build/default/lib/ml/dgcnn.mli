(** Zhang et al.'s Deep Graph Convolutional Neural Network (AAAI'18): four
    graph-convolution layers with tanh activation, sort pooling on the last
    (1-wide) channel, a 1-D convolutional head, and dense classification,
    trained end-to-end with hand-written backpropagation.  Channel widths
    are scaled down (32 → 16) so the model trains in seconds; see [params]
    for the knobs. *)

type params = {
  gc_channels : int list;  (** graph-conv widths; last must be 1 *)
  sortpool_k : int;
  epochs : int;
  lr : float;
  max_nodes : int;
      (** larger graphs are truncated to a prefix subgraph (scaling cap) *)
}

val default_params : params

type t

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  feat_dim:int ->
  Yali_embeddings.Graph.t array ->
  int array ->
  t

val predict : t -> Yali_embeddings.Graph.t -> int
val size_bytes : t -> int
