(** Dense row-major matrices.  The only numeric kernel the framework needs;
    deliberately simple and allocation-conscious. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let of_rows (rows : float array array) : t =
  match Array.length rows with
  | 0 -> create 0 0
  | n ->
      let cols = Array.length rows.(0) in
      init n cols (fun i j -> rows.(i).(j))

let row (m : t) (i : int) : float array =
  Array.sub m.data (i * m.cols) m.cols

let copy (m : t) : t = { m with data = Array.copy m.data }

let matmul (a : t) (b : t) : t =
  if a.cols <> b.rows then invalid_arg "Matrix.matmul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let transpose (m : t) : t = init m.cols m.rows (fun i j -> get m j i)

let map f (m : t) : t = { m with data = Array.map f m.data }

let add (a : t) (b : t) : t =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale (k : float) (m : t) : t = map (fun x -> k *. x) m

(** In-place y += a * x. *)
let axpy ~(a : float) (x : t) (y : t) : unit =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg "Matrix.axpy: dimension mismatch";
  Array.iteri (fun i xi -> y.data.(i) <- y.data.(i) +. (a *. xi)) x.data

(** Matrix–vector product. *)
let mv (m : t) (v : float array) : float array =
  if m.cols <> Array.length v then invalid_arg "Matrix.mv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

(** v^T M (vector–matrix product). *)
let vm (v : float array) (m : t) : float array =
  if m.rows <> Array.length v then invalid_arg "Matrix.vm: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0.0 in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (v.(i) *. m.data.((i * m.cols) + j))
      done;
      !acc)

let random (rng : Yali_util.Rng.t) rows cols ~scale:s =
  init rows cols (fun _ _ -> Yali_util.Rng.gaussian rng *. s)

let frobenius (m : t) : float =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp fmt (m : t) =
  Fmt.pf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf fmt "[";
    for j = 0 to m.cols - 1 do
      Fmt.pf fmt "%8.3f " (get m i j)
    done;
    Fmt.pf fmt "]@,"
  done;
  Fmt.pf fmt "@]"
