lib/ml/nn.ml: Array List Matrix Option Yali_util
