lib/ml/cnn.ml: Array Features Fun Nn Yali_util
