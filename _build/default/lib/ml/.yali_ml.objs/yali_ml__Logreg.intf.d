lib/ml/logreg.mli: Yali_util
