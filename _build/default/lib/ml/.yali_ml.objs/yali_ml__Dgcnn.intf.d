lib/ml/dgcnn.mli: Yali_embeddings Yali_util
