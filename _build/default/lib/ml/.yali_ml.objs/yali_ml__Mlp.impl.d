lib/ml/mlp.ml: Array Features Fun Nn Yali_util
