lib/ml/features.ml: Array
