lib/ml/model.mli: Yali_embeddings Yali_util
