lib/ml/knn.ml: Array Features
