lib/ml/nn.mli: Yali_util
