lib/ml/features.mli:
