lib/ml/random_forest.mli: Yali_util
