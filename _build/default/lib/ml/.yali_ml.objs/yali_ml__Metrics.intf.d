lib/ml/metrics.mli:
