lib/ml/decision_tree.mli: Yali_util
