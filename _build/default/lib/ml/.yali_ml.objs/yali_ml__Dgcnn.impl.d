lib/ml/dgcnn.ml: Array Float Fun List Matrix Nn Yali_embeddings Yali_util
