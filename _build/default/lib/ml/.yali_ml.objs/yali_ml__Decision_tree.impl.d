lib/ml/decision_tree.ml: Array Fun List Seq Yali_util
