lib/ml/svm.mli: Yali_util
