lib/ml/model.ml: Cnn Dgcnn Features Knn List Logreg Mlp Random_forest Svm Yali_embeddings Yali_util
