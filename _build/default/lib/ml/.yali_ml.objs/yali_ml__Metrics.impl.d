lib/ml/metrics.ml: Array List
