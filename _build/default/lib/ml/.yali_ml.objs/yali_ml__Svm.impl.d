lib/ml/svm.ml: Array Features Matrix Yali_util
