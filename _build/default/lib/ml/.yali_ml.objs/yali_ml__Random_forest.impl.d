lib/ml/random_forest.ml: Array Decision_tree Yali_util
