lib/ml/knn.mli:
