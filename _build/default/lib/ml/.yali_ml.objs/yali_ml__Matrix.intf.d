lib/ml/matrix.mli: Format Yali_util
