lib/ml/mlp.mli: Yali_util
