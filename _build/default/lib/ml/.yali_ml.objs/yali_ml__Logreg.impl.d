lib/ml/logreg.ml: Array Features Fun Matrix Yali_util
