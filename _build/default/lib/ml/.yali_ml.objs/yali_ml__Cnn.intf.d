lib/ml/cnn.mli: Yali_util
