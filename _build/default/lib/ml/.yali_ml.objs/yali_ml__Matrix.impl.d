lib/ml/matrix.ml: Array Fmt Yali_util
