(** Feature preprocessing shared by the distance- and gradient-based models:
    per-feature standardisation (zero mean, unit variance) fitted on the
    training set and replayed on challenges. *)

type scaler = { means : float array; stds : float array }

let fit (xs : float array array) : scaler =
  match Array.length xs with
  | 0 -> { means = [||]; stds = [||] }
  | n ->
      let d = Array.length xs.(0) in
      let means = Array.make d 0.0 and stds = Array.make d 0.0 in
      Array.iter (fun x -> Array.iteri (fun j v -> means.(j) <- means.(j) +. v) x) xs;
      for j = 0 to d - 1 do
        means.(j) <- means.(j) /. float_of_int n
      done;
      Array.iter
        (fun x ->
          Array.iteri
            (fun j v -> stds.(j) <- stds.(j) +. ((v -. means.(j)) ** 2.0))
            x)
        xs;
      for j = 0 to d - 1 do
        stds.(j) <- sqrt (stds.(j) /. float_of_int n);
        if stds.(j) < 1e-9 then stds.(j) <- 1.0
      done;
      { means; stds }

let transform (s : scaler) (x : float array) : float array =
  Array.mapi (fun j v -> (v -. s.means.(j)) /. s.stds.(j)) x

let fit_transform (xs : float array array) : scaler * float array array =
  let s = fit xs in
  (s, Array.map (transform s) xs)

(** Memory footprint of a float-array-of-arrays, in bytes (8 bytes per
    element plus header overhead); used for the paper's Figure 7 memory
    comparison. *)
let bytes_of_rows (xs : float array array) : int =
  Array.fold_left (fun acc r -> acc + (8 * Array.length r) + 24) 24 xs
