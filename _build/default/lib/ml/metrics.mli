(** Evaluation metrics.  On the perfectly balanced datasets the paper uses,
    accuracy and macro F1 coincide (its Figure 12 demonstrates this). *)

type confusion = { n_classes : int; counts : int array array }

(** [confusion ~n_classes truth pred]; rows are truth, columns predictions.
    @raise Invalid_argument on length mismatch *)
val confusion : n_classes:int -> int array -> int array -> confusion

val accuracy : int array -> int array -> float

(** Precision, recall and F1 of one class. *)
val precision_recall_f1 : confusion -> int -> float * float * float

val macro_f1 : confusion -> float

val mean : float list -> float

(** Sample standard deviation. *)
val stddev : float list -> float

type boxplot = {
  bp_min : float;
  q1 : float;
  median : float;
  q3 : float;
  bp_max : float;
  bp_mean : float;
}

(** Five-number summary plus mean, as in the paper's box plots. *)
val boxplot : float list -> boxplot

(** Welch's t-statistic for the difference of two sample means (the paper's
    significance claims, §4.2). *)
val welch_t : float list -> float list -> float
