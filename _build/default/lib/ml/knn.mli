(** k-nearest-neighbour classification over standardised features — the one
    model in the arena with no randomly initialised parameters. *)

type t

val train :
  ?k:int -> n_classes:int -> float array array -> int array -> t

val predict : t -> float array -> int
val size_bytes : t -> int
