(** Multinomial logistic regression (softmax), trained with mini-batch
    gradient descent and L2 regularisation — SciKit's [lr] counterpart. *)

module Rng = Yali_util.Rng

type t = {
  scaler : Features.scaler;
  weights : Matrix.t;  (** n_classes x d *)
  bias : float array;
  n_classes : int;
}

type params = { epochs : int; lr : float; l2 : float; batch : int }

let default_params = { epochs = 60; lr = 0.1; l2 = 1e-4; batch = 32 }

let softmax (z : float array) : float array =
  let m = Array.fold_left max neg_infinity z in
  let e = Array.map (fun x -> exp (x -. m)) z in
  let s = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. s) e

let logits (w : Matrix.t) (bias : float array) (x : float array) : float array
    =
  Array.init (Array.length bias) (fun c ->
      let acc = ref bias.(c) in
      for j = 0 to Array.length x - 1 do
        acc := !acc +. (Matrix.get w c j *. x.(j))
      done;
      !acc)

let argmax (v : float array) : int =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > v.(!best) then best := i) v;
  !best

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (xs : float array array) (ys : int array) : t =
  let scaler, xs = Features.fit_transform xs in
  let n = Array.length xs in
  let d = if n = 0 then 0 else Array.length xs.(0) in
  let w = Matrix.random rng n_classes d ~scale:0.01 in
  let bias = Array.make n_classes 0.0 in
  let order = Array.init n Fun.id in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    (* shuffle *)
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let b = ref 0 in
    while !b < n do
      let hi = min n (!b + params.batch) in
      let gw = Matrix.create n_classes d and gb = Array.make n_classes 0.0 in
      for k = !b to hi - 1 do
        let i = order.(k) in
        let p = softmax (logits w bias xs.(i)) in
        for c = 0 to n_classes - 1 do
          let err = p.(c) -. (if c = ys.(i) then 1.0 else 0.0) in
          gb.(c) <- gb.(c) +. err;
          for j = 0 to d - 1 do
            Matrix.set gw c j (Matrix.get gw c j +. (err *. xs.(i).(j)))
          done
        done
      done;
      let bs = float_of_int (hi - !b) in
      for c = 0 to n_classes - 1 do
        bias.(c) <- bias.(c) -. (lr *. gb.(c) /. bs);
        for j = 0 to d - 1 do
          let wij = Matrix.get w c j in
          Matrix.set w c j
            (wij -. (lr *. ((Matrix.get gw c j /. bs) +. (params.l2 *. wij))))
        done
      done;
      b := hi
    done
  done;
  { scaler; weights = w; bias; n_classes }

let predict (t : t) (x : float array) : int =
  let x = Features.transform t.scaler x in
  argmax (logits t.weights t.bias x)

let size_bytes (t : t) : int =
  (8 * t.weights.rows * t.weights.cols) + (8 * Array.length t.bias)
