(** Evaluation metrics: accuracy, confusion matrices, per-class and macro
    F1.  On the perfectly balanced datasets the paper uses, accuracy and F1
    coincide (Figure 12 demonstrates this); both are available. *)

type confusion = { n_classes : int; counts : int array array }

let confusion ~(n_classes : int) (truth : int array) (pred : int array) :
    confusion =
  if Array.length truth <> Array.length pred then
    invalid_arg "Metrics.confusion: length mismatch";
  let counts = Array.make_matrix n_classes n_classes 0 in
  Array.iteri
    (fun i t ->
      let p = pred.(i) in
      if t >= 0 && t < n_classes && p >= 0 && p < n_classes then
        counts.(t).(p) <- counts.(t).(p) + 1)
    truth;
  { n_classes; counts }

let accuracy (truth : int array) (pred : int array) : float =
  if Array.length truth = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iteri (fun i t -> if pred.(i) = t then incr hits) truth;
    float_of_int !hits /. float_of_int (Array.length truth)
  end

let precision_recall_f1 (c : confusion) (cls : int) : float * float * float =
  let tp = c.counts.(cls).(cls) in
  let fp = ref 0 and fn = ref 0 in
  for i = 0 to c.n_classes - 1 do
    if i <> cls then begin
      fp := !fp + c.counts.(i).(cls);
      fn := !fn + c.counts.(cls).(i)
    end
  done;
  let p =
    if tp + !fp = 0 then 0.0 else float_of_int tp /. float_of_int (tp + !fp)
  in
  let r =
    if tp + !fn = 0 then 0.0 else float_of_int tp /. float_of_int (tp + !fn)
  in
  let f1 = if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r) in
  (p, r, f1)

let macro_f1 (c : confusion) : float =
  let sum = ref 0.0 in
  for cls = 0 to c.n_classes - 1 do
    let _, _, f1 = precision_recall_f1 c cls in
    sum := !sum +. f1
  done;
  !sum /. float_of_int (max 1 c.n_classes)

(* -- sample statistics ---------------------------------------------------- *)

let mean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev (xs : float list) : float =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      sqrt
        (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs - 1))

type boxplot = {
  bp_min : float;
  q1 : float;
  median : float;
  q3 : float;
  bp_max : float;
  bp_mean : float;
}

(** Five-number summary + mean, as used by the paper's box plots. *)
let boxplot (xs : float list) : boxplot =
  match List.sort compare xs with
  | [] -> { bp_min = 0.; q1 = 0.; median = 0.; q3 = 0.; bp_max = 0.; bp_mean = 0. }
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let q p =
        let idx = p *. float_of_int (n - 1) in
        let lo = int_of_float (floor idx) and hi = int_of_float (ceil idx) in
        let frac = idx -. floor idx in
        (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
      in
      {
        bp_min = a.(0);
        q1 = q 0.25;
        median = q 0.5;
        q3 = q 0.75;
        bp_max = a.(n - 1);
        bp_mean = mean xs;
      }

(** Welch's t-statistic for the difference of two sample means; used for the
    paper's statistical-significance claims (§4.2). *)
let welch_t (a : float list) (b : float list) : float =
  let na = float_of_int (List.length a) and nb = float_of_int (List.length b) in
  if na < 2.0 || nb < 2.0 then 0.0
  else
    let va = stddev a ** 2.0 and vb = stddev b ** 2.0 in
    let denom = sqrt ((va /. na) +. (vb /. nb)) in
    if denom = 0.0 then 0.0 else (mean a -. mean b) /. denom
