(** Feature preprocessing shared by the distance- and gradient-based
    models: per-feature standardisation fitted on the training set. *)

type scaler

(** Fit means and standard deviations (constant features get unit scale). *)
val fit : float array array -> scaler

val transform : scaler -> float array -> float array
val fit_transform : float array array -> scaler * float array array

(** Approximate heap footprint of a row matrix, in bytes (for the paper's
    Figure 7 memory comparison). *)
val bytes_of_rows : float array array -> int
