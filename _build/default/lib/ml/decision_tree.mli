(** CART decision trees with Gini impurity and optional per-split random
    feature subsampling ({!Random_forest}'s building block). *)

type node =
  | Leaf of int  (** predicted class *)
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_classes : int }

type params = {
  max_depth : int;
  min_samples_split : int;
  features_per_split : int option;  (** [None] = all features *)
}

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  float array array ->
  int array ->
  t

val predict : t -> float array -> int
val node_count : node -> int
val size_bytes : t -> int
