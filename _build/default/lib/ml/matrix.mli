(** Dense row-major matrices: the only numeric kernel the framework needs. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_rows : float array array -> t

(** Copy of row [i]. *)
val row : t -> int -> float array

val copy : t -> t

(** @raise Invalid_argument on dimension mismatch *)
val matmul : t -> t -> t

val transpose : t -> t
val map : (float -> float) -> t -> t

(** @raise Invalid_argument on dimension mismatch *)
val add : t -> t -> t

val scale : float -> t -> t

(** In-place [y += a * x].  @raise Invalid_argument on dimension mismatch *)
val axpy : a:float -> t -> t -> unit

(** Matrix–vector product.  @raise Invalid_argument on dimension mismatch *)
val mv : t -> float array -> float array

(** Vector–matrix product [v^T M]. *)
val vm : float array -> t -> float array

(** Gaussian random matrix with the given standard deviation. *)
val random : Yali_util.Rng.t -> int -> int -> scale:float -> t

val frobenius : t -> float
val pp : Format.formatter -> t -> unit
