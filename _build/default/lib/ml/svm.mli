(** Linear support-vector machine: one-vs-rest hinge loss trained with an
    averaged Pegasos-style stochastic subgradient method. *)

type t

type params = { epochs : int; lambda : float; step_offset : float }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  float array array ->
  int array ->
  t

val predict : t -> float array -> int
val size_bytes : t -> int
