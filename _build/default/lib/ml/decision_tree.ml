(** CART decision trees with Gini impurity.  Supports per-split random
    feature subsampling, which {!Random_forest} uses. *)

module Rng = Yali_util.Rng

type node =
  | Leaf of int  (** predicted class *)
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; n_classes : int }

type params = {
  max_depth : int;
  min_samples_split : int;
  features_per_split : int option;  (** [None] = all features *)
}

let default_params =
  { max_depth = 18; min_samples_split = 2; features_per_split = None }

let majority ~(n_classes : int) (ys : int array) (idx : int array) : int =
  let counts = Array.make n_classes 0 in
  Array.iter (fun i -> counts.(ys.(i)) <- counts.(ys.(i)) + 1) idx;
  let best = ref 0 in
  Array.iteri (fun c k -> if k > counts.(!best) then best := c) counts;
  !best

let gini_of_counts (counts : int array) (total : int) : float =
  if total = 0 then 0.0
  else begin
    let acc = ref 1.0 in
    Array.iter
      (fun k ->
        let p = float_of_int k /. float_of_int total in
        acc := !acc -. (p *. p))
      counts;
    !acc
  end

(* Best (feature, threshold) for the sample subset [idx], scanning candidate
   features with a sort-based sweep. *)
let best_split ~(n_classes : int) (xs : float array array) (ys : int array)
    (idx : int array) (features : int list) : (int * float * float) option =
  let n = Array.length idx in
  let parent_counts = Array.make n_classes 0 in
  Array.iter (fun i -> parent_counts.(ys.(i)) <- parent_counts.(ys.(i)) + 1) idx;
  let parent_gini = gini_of_counts parent_counts n in
  let best = ref None in
  List.iter
    (fun f ->
      (* sort indices by feature value *)
      let sorted = Array.copy idx in
      Array.sort (fun a b -> compare xs.(a).(f) xs.(b).(f)) sorted;
      let left_counts = Array.make n_classes 0 in
      let right_counts = Array.copy parent_counts in
      for k = 0 to n - 2 do
        let i = sorted.(k) in
        left_counts.(ys.(i)) <- left_counts.(ys.(i)) + 1;
        right_counts.(ys.(i)) <- right_counts.(ys.(i)) - 1;
        let v = xs.(i).(f) and v' = xs.(sorted.(k + 1)).(f) in
        if v < v' then begin
          let nl = k + 1 and nr = n - k - 1 in
          let g =
            (float_of_int nl *. gini_of_counts left_counts nl
            +. float_of_int nr *. gini_of_counts right_counts nr)
            /. float_of_int n
          in
          let gain = parent_gini -. g in
          let thr = (v +. v') /. 2.0 in
          match !best with
          | Some (_, _, best_gain) when best_gain >= gain -> ()
          | _ -> best := Some (f, thr, gain)
        end
      done)
    features;
  match !best with
  | Some (f, thr, gain) when gain > 1e-12 -> Some (f, thr, gain)
  | _ -> None

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    (xs : float array array) (ys : int array) : t =
  let d = if Array.length xs = 0 then 0 else Array.length xs.(0) in
  let all_features = List.init d Fun.id in
  let pick_features () =
    match params.features_per_split with
    | None -> all_features
    | Some k -> Rng.sample rng (min k d) all_features
  in
  let rec grow (idx : int array) (depth : int) : node =
    let pure =
      Array.length idx > 0
      && Array.for_all (fun i -> ys.(i) = ys.(idx.(0))) idx
    in
    if
      pure || depth >= params.max_depth
      || Array.length idx < params.min_samples_split
    then Leaf (majority ~n_classes ys idx)
    else
      match best_split ~n_classes xs ys idx (pick_features ()) with
      | None -> Leaf (majority ~n_classes ys idx)
      | Some (feature, threshold, _) ->
          let left_idx =
            Array.of_seq
              (Seq.filter (fun i -> xs.(i).(feature) <= threshold)
                 (Array.to_seq idx))
          in
          let right_idx =
            Array.of_seq
              (Seq.filter (fun i -> xs.(i).(feature) > threshold)
                 (Array.to_seq idx))
          in
          if Array.length left_idx = 0 || Array.length right_idx = 0 then
            Leaf (majority ~n_classes ys idx)
          else
            Split
              {
                feature;
                threshold;
                left = grow left_idx (depth + 1);
                right = grow right_idx (depth + 1);
              }
  in
  let idx = Array.init (Array.length xs) Fun.id in
  { root = grow idx 0; n_classes }

let predict (t : t) (x : float array) : int =
  let rec go = function
    | Leaf c -> c
    | Split { feature; threshold; left; right } ->
        if x.(feature) <= threshold then go left else go right
  in
  go t.root

let rec node_count = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> 1 + node_count left + node_count right

let size_bytes (t : t) : int = node_count t.root * 40
