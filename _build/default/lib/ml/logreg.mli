(** Multinomial logistic regression (softmax) trained with mini-batch
    gradient descent and L2 regularisation — SciKit's [lr] counterpart. *)

type t

type params = { epochs : int; lr : float; l2 : float; batch : int }

val default_params : params

val train :
  ?params:params ->
  Yali_util.Rng.t ->
  n_classes:int ->
  float array array ->
  int array ->
  t

val predict : t -> float array -> int
val size_bytes : t -> int
