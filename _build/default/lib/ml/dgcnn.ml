(** Zhang et al.'s Deep Graph Convolutional Neural Network (AAAI'18), the
    [dgcnn] model of the paper (§3.2):

    1. four graph-convolution layers (channel widths 32, 32, 32 and 1) with
       hyperbolic-tangent activation: Z_l = tanh(D⁻¹ Â Z_(l-1) W_l);
    2. sort pooling on the last (1-wide) channel, keeping the top-k nodes;
    3. a one-dimensional convolution;
    4. max pooling;
    5. a second one-dimensional convolution;
    6. a dense layer with dropout; and
    7. a final dense classification layer.

    Backpropagation runs end-to-end, through the convolutional head, the
    (fixed-permutation) sort pooling, and the graph convolutions.  Channel
    widths are scaled down from the original (32 → 16) so that the model
    trains in seconds on synthetic corpora; the architecture is otherwise as
    published. *)

module Rng = Yali_util.Rng
module Graph = Yali_embeddings.Graph

type params = {
  gc_channels : int list;  (** graph-conv widths; last must be 1 *)
  sortpool_k : int;
  epochs : int;
  lr : float;
  max_nodes : int;
      (** graphs larger than this are truncated to a prefix subgraph — a
          sampling cap that bounds the per-graph cost on heavily obfuscated
          inputs (flattened/bogus code can be 5x the original size) *)
}

let default_params =
  {
    gc_channels = [ 16; 16; 16; 1 ];
    sortpool_k = 16;
    epochs = 24;
    lr = 0.02;
    max_nodes = 384;
  }

type t = {
  params : params;
  gc_weights : Matrix.t list;  (** one per graph-conv layer *)
  head : Nn.t;
  feat_dim : int;
  n_classes : int;
}

(* Propagation: Y = D^-1 (A + I) X, computed over adjacency lists. *)
let propagate (adj : int list array) (x : Matrix.t) : Matrix.t =
  let n = x.Matrix.rows and d = x.Matrix.cols in
  let y = Matrix.create n d in
  for i = 0 to n - 1 do
    let neigh = i :: adj.(i) in
    let deg = float_of_int (List.length neigh) in
    List.iter
      (fun j ->
        for c = 0 to d - 1 do
          Matrix.set y i c (Matrix.get y i c +. (Matrix.get x j c /. deg))
        done)
      neigh
  done;
  y

(* Transposed propagation for the backward pass: given dY, returns dX where
   Y = P X and P_(i,j) = 1/deg(i) for j in N(i) u {i}. *)
let propagate_t (adj : int list array) (dy : Matrix.t) : Matrix.t =
  let n = dy.Matrix.rows and d = dy.Matrix.cols in
  let dx = Matrix.create n d in
  for i = 0 to n - 1 do
    let neigh = i :: adj.(i) in
    let deg = float_of_int (List.length neigh) in
    List.iter
      (fun j ->
        for c = 0 to d - 1 do
          Matrix.set dx j c (Matrix.get dx j c +. (Matrix.get dy i c /. deg))
        done)
      neigh
  done;
  dx

type forward_state = {
  adj : int list array;
  px_list : Matrix.t list;  (** P·Z_(l-1) per layer, pre-weights *)
  z_list : Matrix.t list;  (** post-tanh activations per layer *)
  concat : Matrix.t;  (** n x total_channels *)
  order : int array;  (** node permutation chosen by sort pooling *)
  flat : float array;  (** pooled, flattened input to the head *)
}

let total_channels (p : params) = List.fold_left ( + ) 0 p.gc_channels

let forward_graph (t_params : params) (gc_weights : Matrix.t list)
    (g : Graph.t) : forward_state =
  (* an empty graph is treated as a single zero-feature node *)
  let g =
    if Graph.node_count g = 0 then
      { g with Graph.node_feats = [| Array.make g.feat_dim 0.0 |]; edges = [] }
    else g
  in
  (* cap the graph size: keep a prefix subgraph *)
  let g =
    let cap = t_params.max_nodes in
    if Graph.node_count g <= cap then g
    else
      {
        g with
        Graph.node_feats = Array.sub g.node_feats 0 cap;
        edges = List.filter (fun (s, d, _) -> s < cap && d < cap) g.edges;
      }
  in
  let adj = Graph.undirected_adjacency g in
  (* squash count-valued node features (e.g. per-block histograms of the
     compact embeddings): raw counts saturate the tanh units *)
  let x0 =
    Matrix.map (fun v -> Float.copy_sign (log1p (Float.abs v)) v)
      (Matrix.of_rows g.node_feats)
  in
  let n = Matrix.(x0.rows) in
  let rec go z ws px_acc z_acc =
    match ws with
    | [] -> (List.rev px_acc, List.rev z_acc)
    | w :: rest ->
        let px = propagate adj z in
        let zl = Matrix.map tanh (Matrix.matmul px w) in
        go zl rest (px :: px_acc) (zl :: z_acc)
  in
  let px_list, z_list = go x0 gc_weights [] [] in
  (* concatenate channels of every layer *)
  let tc = total_channels t_params in
  let concat = Matrix.create n tc in
  let off = ref 0 in
  List.iter
    (fun (z : Matrix.t) ->
      for i = 0 to n - 1 do
        for c = 0 to z.Matrix.cols - 1 do
          Matrix.set concat i (!off + c) (Matrix.get z i c)
        done
      done;
      off := !off + z.Matrix.cols)
    z_list;
  (* sort pooling on the last channel *)
  let k = t_params.sortpool_k in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Matrix.get concat b (tc - 1)) (Matrix.get concat a (tc - 1)))
    order;
  let flat = Array.make (k * tc) 0.0 in
  for r = 0 to min k n - 1 do
    let i = order.(r) in
    for c = 0 to tc - 1 do
      flat.((r * tc) + c) <- Matrix.get concat i c
    done
  done;
  { adj; px_list; z_list; concat; order; flat }

let build_head (rng : Rng.t) (p : params) ~(n_classes : int) : Nn.t =
  let tc = total_channels p in
  let k = p.sortpool_k in
  (* conv over the flattened k*tc signal with kernel = tc, stride = tc: one
     filter application per node slot (the DGCNN trick) *)
  let c1 = 16 in
  let l1 = k in
  let l1p = l1 / 2 in
  let c2 = 16 and k2 = min 3 l1p in
  let l2 = l1p - k2 + 1 in
  {
    Nn.layers =
      [
        Nn.conv1d rng ~c_in:1 ~c_out:c1 ~kernel:tc ~stride:tc;
        Nn.relu ();
        Nn.maxpool 2;
        Nn.conv1d rng ~c_in:c1 ~c_out:c2 ~kernel:k2 ~stride:1;
        Nn.relu ();
        Nn.dense rng ~d_in:(c2 * l2) ~d_out:48;
        Nn.relu ();
        Nn.dropout 0.2;
        Nn.dense rng ~d_in:48 ~d_out:n_classes;
      ];
    n_classes;
  }

let train ?(params = default_params) (rng : Rng.t) ~(n_classes : int)
    ~(feat_dim : int) (graphs : Graph.t array) (ys : int array) : t =
  let dims =
    let rec widths d = function
      | [] -> []
      | c :: rest -> (d, c) :: widths c rest
    in
    widths feat_dim params.gc_channels
  in
  let gc_weights =
    List.map
      (fun (d_in, d_out) ->
        Matrix.random rng d_in d_out ~scale:(sqrt (1.0 /. float_of_int d_in)))
      dims
  in
  let head = build_head rng params ~n_classes in
  let n = Array.length graphs in
  let order = Array.init n Fun.id in
  let tc = total_channels params in
  for epoch = 0 to params.epochs - 1 do
    let lr = params.lr /. (1.0 +. (0.05 *. float_of_int epoch)) in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    Array.iter
      (fun i ->
        let g = graphs.(i) in
        let st = forward_graph params gc_weights g in
        let _loss, dflat = Nn.train_step ~lr ~rng head st.flat ys.(i) in
        (* scatter the gradient back through sort pooling *)
        let nn = st.concat.Matrix.rows in
        let dconcat = Matrix.create nn tc in
        for r = 0 to min params.sortpool_k nn - 1 do
          let node = st.order.(r) in
          for c = 0 to tc - 1 do
            Matrix.set dconcat node c (dflat.((r * tc) + c))
          done
        done;
        (* un-concatenate into per-layer gradients, then backprop through the
           graph convolutions in reverse *)
        let layer_grads =
          let off = ref 0 in
          List.map
            (fun (z : Matrix.t) ->
              let dz = Matrix.create nn z.Matrix.cols in
              for i' = 0 to nn - 1 do
                for c = 0 to z.Matrix.cols - 1 do
                  Matrix.set dz i' c (Matrix.get dconcat i' (!off + c))
                done
              done;
              off := !off + z.Matrix.cols;
              dz)
            st.z_list
        in
        (* process layers from last to first, accumulating the gradient that
           flows down from upper layers *)
        let rev_w = List.rev gc_weights in
        let rev_z = List.rev st.z_list in
        let rev_px = List.rev st.px_list in
        let rev_dz = List.rev layer_grads in
        let rec back ws zs pxs dzs (carry : Matrix.t option) (new_ws : Matrix.t list) =
          match (ws, zs, pxs, dzs) with
          | [], [], [], [] -> new_ws
          | w :: ws', z :: zs', px :: pxs', dz :: dzs' ->
              let dz_total =
                match carry with Some c -> Matrix.add dz c | None -> dz
              in
              (* through tanh *)
              let dpre =
                Matrix.init nn z.Matrix.cols (fun i' c ->
                    let zv = Matrix.get z i' c in
                    Matrix.get dz_total i' c *. (1.0 -. (zv *. zv)))
              in
              (* dW = (P Z_(l-1))^T dpre *)
              let dw = Matrix.matmul (Matrix.transpose px) dpre in
              (* gradient to previous layer: P^T (dpre W^T) *)
              let dprev = propagate_t st.adj (Matrix.matmul dpre (Matrix.transpose w)) in
              (* SGD update *)
              Matrix.axpy ~a:(-.lr) dw w;
              back ws' zs' pxs' dzs' (Some dprev) (w :: new_ws)
          | _ -> assert false
        in
        ignore (back rev_w rev_z rev_px rev_dz None []))
      order
  done;
  { params; gc_weights; head; feat_dim; n_classes }

let predict (t : t) (g : Graph.t) : int =
  let st = forward_graph t.params t.gc_weights g in
  Nn.predict t.head st.flat

let size_bytes (t : t) : int =
  Nn.size_bytes t.head
  + List.fold_left
      (fun acc (w : Matrix.t) -> acc + (8 * w.rows * w.cols))
      0 t.gc_weights
