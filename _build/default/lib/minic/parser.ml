(** Recursive-descent parser for mini-C with precedence-climbing expression
    parsing.  Grammar mirrors what {!Pp} prints, so pretty-printed programs
    round-trip. *)

open Ast
open Lexer

exception Parse_error of string

type st = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = advance st in
  if got <> t then
    raise
      (Parse_error
         (Printf.sprintf "expected %s, got %s" (token_to_string t)
            (token_to_string got)))

let parse_ty st =
  match advance st with
  | KW_INT -> TInt
  | KW_DOUBLE -> TFloat
  | KW_VOID -> TVoid
  | t -> raise (Parse_error ("expected type, got " ^ token_to_string t))

let binop_of_token = function
  | PLUS -> Some Add | MINUS -> Some Sub | STAR -> Some Mul
  | SLASH -> Some Div | PERCENT -> Some Mod
  | LT -> Some Lt | LE -> Some Le | GT -> Some Gt | GE -> Some Ge
  | EQ -> Some Eq | NE -> Some Ne
  | AMPAMP -> Some LAnd | BARBAR -> Some LOr
  | AMP -> Some BAnd | BAR -> Some BOr | CARET -> Some BXor
  | SHL -> Some Shl | SHR -> Some Shr
  | _ -> None

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binary st 1 in
  match peek st with
  | QUESTION ->
      ignore (advance st);
      let a = parse_expr st in
      expect st COLON;
      let b = parse_expr st in
      Ternary (c, a, b)
  | _ -> c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st) with
    | Some op when Pp.prec_of op >= min_prec ->
        ignore (advance st);
        let rhs = parse_binary st (Pp.prec_of op + 1) in
        lhs := Bin (op, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | MINUS ->
      ignore (advance st);
      Un (Neg, parse_unary st)
  | BANG ->
      ignore (advance st);
      Un (LNot, parse_unary st)
  | TILDE ->
      ignore (advance st);
      Un (BNot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match advance st with
  | INT n -> IntLit n
  | FLOAT f -> FloatLit f
  | LPAREN ->
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT name -> (
      match peek st with
      | LPAREN ->
          ignore (advance st);
          let args = parse_args st in
          Call (name, args)
      | LBRACKET ->
          ignore (advance st);
          let i = parse_expr st in
          expect st RBRACKET;
          Index (name, i)
      | _ -> Var name)
  | t -> raise (Parse_error ("unexpected token in expression: " ^ token_to_string t))

and parse_args st =
  match peek st with
  | RPAREN ->
      ignore (advance st);
      []
  | _ ->
      let rec go acc =
        let e = parse_expr st in
        match advance st with
        | COMMA -> go (e :: acc)
        | RPAREN -> List.rev (e :: acc)
        | t -> raise (Parse_error ("in arguments: " ^ token_to_string t))
      in
      go []

let rec parse_stmt st : stmt =
  match peek st with
  | KW_INT | KW_DOUBLE -> parse_decl st
  | KW_IF ->
      ignore (advance st);
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      let t = parse_block st in
      let e =
        match peek st with
        | KW_ELSE ->
            ignore (advance st);
            parse_block st
        | _ -> []
      in
      If (c, t, e)
  | KW_WHILE ->
      ignore (advance st);
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      While (c, parse_block st)
  | KW_DO ->
      ignore (advance st);
      let b = parse_block st in
      expect st KW_WHILE;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      expect st SEMI;
      DoWhile (b, c)
  | KW_FOR ->
      ignore (advance st);
      expect st LPAREN;
      let init =
        match peek st with
        | SEMI -> None
        | KW_INT | KW_DOUBLE ->
            let t = parse_ty st in
            let n = parse_ident st in
            expect st ASSIGN;
            Some (Decl (t, n, Some (parse_expr st)))
        | _ ->
            let n = parse_ident st in
            expect st ASSIGN;
            Some (Assign (n, parse_expr st))
      in
      expect st SEMI;
      let cond = match peek st with SEMI -> None | _ -> Some (parse_expr st) in
      expect st SEMI;
      let step =
        match peek st with
        | RPAREN -> None
        | _ ->
            let n = parse_ident st in
            expect st ASSIGN;
            Some (Assign (n, parse_expr st))
      in
      expect st RPAREN;
      For (init, cond, step, parse_block st)
  | KW_SWITCH ->
      ignore (advance st);
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      expect st LBRACE;
      let cases = ref [] in
      let default = ref [] in
      let fin = ref false in
      while not !fin do
        match advance st with
        | KW_CASE ->
            let k =
              match advance st with
              | INT n -> n
              | MINUS -> (
                  match advance st with
                  | INT n -> -n
                  | t -> raise (Parse_error ("case label: " ^ token_to_string t)))
              | t -> raise (Parse_error ("case label: " ^ token_to_string t))
            in
            expect st COLON;
            let body = parse_block st in
            (* the pretty-printer emits an explicit break at the end of a
               case block; strip it back out *)
            let body =
              match List.rev body with Break :: r -> List.rev r | _ -> body
            in
            cases := (k, body) :: !cases
        | KW_DEFAULT ->
            expect st COLON;
            default := parse_block st
        | RBRACE -> fin := true
        | t -> raise (Parse_error ("in switch: " ^ token_to_string t))
      done;
      Switch (e, List.rev !cases, !default)
  | KW_BREAK ->
      ignore (advance st);
      expect st SEMI;
      Break
  | KW_CONTINUE ->
      ignore (advance st);
      expect st SEMI;
      Continue
  | KW_RETURN ->
      ignore (advance st);
      let e = match peek st with SEMI -> None | _ -> Some (parse_expr st) in
      expect st SEMI;
      Return e
  | LBRACE -> Block (parse_block st)
  | IDENT name -> (
      ignore (advance st);
      match peek st with
      | ASSIGN ->
          ignore (advance st);
          let e = parse_expr st in
          expect st SEMI;
          Assign (name, e)
      | LBRACKET ->
          ignore (advance st);
          let i = parse_expr st in
          expect st RBRACKET;
          (match peek st with
          | ASSIGN ->
              ignore (advance st);
              let e = parse_expr st in
              expect st SEMI;
              AssignIdx (name, i, e)
          | _ ->
              (* expression statement starting with an index read *)
              expect st SEMI;
              Expr (Index (name, i)))
      | LPAREN ->
          ignore (advance st);
          let args = parse_args st in
          expect st SEMI;
          Expr (Call (name, args))
      | _ ->
          expect st SEMI;
          Expr (Var name))
  | _ ->
      let e = parse_expr st in
      expect st SEMI;
      Expr e

and parse_decl st : stmt =
  let t = parse_ty st in
  let n = parse_ident st in
  match peek st with
  | LBRACKET ->
      ignore (advance st);
      let sz =
        match advance st with
        | INT k -> k
        | tk -> raise (Parse_error ("array size: " ^ token_to_string tk))
      in
      expect st RBRACKET;
      expect st SEMI;
      DeclArr (n, sz)
  | ASSIGN ->
      ignore (advance st);
      let e = parse_expr st in
      expect st SEMI;
      Decl (t, n, Some e)
  | _ ->
      expect st SEMI;
      Decl (t, n, None)

and parse_ident st =
  match advance st with
  | IDENT n -> n
  | t -> raise (Parse_error ("expected identifier, got " ^ token_to_string t))

and parse_block st : stmt list =
  expect st LBRACE;
  let rec go acc =
    match peek st with
    | RBRACE ->
        ignore (advance st);
        List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_func st : func =
  let fret = parse_ty st in
  let fname = parse_ident st in
  expect st LPAREN;
  let fparams =
    match peek st with
    | RPAREN ->
        ignore (advance st);
        []
    | _ ->
        let rec go acc =
          let t = parse_ty st in
          let n = parse_ident st in
          match advance st with
          | COMMA -> go ((t, n) :: acc)
          | RPAREN -> List.rev ((t, n) :: acc)
          | tk -> raise (Parse_error ("in parameters: " ^ token_to_string tk))
        in
        go []
  in
  let fbody = parse_block st in
  { fname; fparams; fret; fbody }

let parse_program (src : string) : program =
  let st = { toks = tokenize src } in
  let rec go acc =
    match peek st with
    | EOF -> { pfuncs = List.rev acc }
    | _ -> go (parse_func st :: acc)
  in
  go []
