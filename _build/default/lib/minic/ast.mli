(** Abstract syntax of mini-C: the subset of C the synthetic corpus and the
    Zhang-style source transformations need — scalar ints and doubles,
    one-dimensional arrays, the full statement zoo, and calls. *)

type ty = TInt | TFloat | TVoid

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr
  | BAnd | BOr | BXor | Shl | Shr

type unop = Neg | LNot | BNot

type expr =
  | IntLit of int
  | FloatLit of float
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Index of string * expr  (** a[e] *)
  | Ternary of expr * expr * expr

type stmt =
  | Decl of ty * string * expr option
  | DeclArr of string * int  (** [int name\[n\]] *)
  | Assign of string * expr
  | AssignIdx of string * expr * expr  (** a[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
      (** scrutinee, cases (implicitly breaking), default *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr
  | Block of stmt list

type func = {
  fname : string;
  fparams : (ty * string) list;
  fret : ty;
  fbody : stmt list;
}

type program = { pfuncs : func list }

val func_names : program -> string list
val find_func : program -> string -> func option

(** Bottom-up rewriting of every sub-expression. *)
val map_expr_in_expr : (expr -> expr) -> expr -> expr

(** Bottom-up rewriting of every statement (recursing into bodies). *)
val map_stmts : (stmt -> stmt) -> stmt list -> stmt list

val map_stmt : (stmt -> stmt) -> stmt -> stmt

(** Rewrite every expression in a statement list (conditions, initialisers,
    indices included). *)
val map_exprs : (expr -> expr) -> stmt list -> stmt list

val map_exprs_stmt : (expr -> expr) -> stmt -> stmt

(** Recursive statement count. *)
val stmt_count : stmt list -> int

(** Names declared anywhere in a function, parameters first. *)
val declared_vars : func -> string list
