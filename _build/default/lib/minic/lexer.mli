(** Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_INT | KW_DOUBLE | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_SWITCH | KW_CASE
  | KW_DEFAULT | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | AMP | BAR | CARET | TILDE | BANG | SHL | SHR
  | EOF

exception Lex_error of string * int  (** message, byte position *)

val is_digit : char -> bool
val is_ident_start : char -> bool
val is_ident_char : char -> bool

(** Tokenize a full source text (comments skipped); ends with [EOF].
    @raise Lex_error on unlexable input *)
val tokenize : string -> token list

val token_to_string : token -> string
