(** Recursive-descent parser for mini-C, with precedence-climbing expression
    parsing.  The grammar mirrors what {!Pp} prints, so pretty-printed
    programs round-trip. *)

exception Parse_error of string

(** @raise Parse_error on malformed input
    @raise Lexer.Lex_error on unlexable input *)
val parse_program : string -> Ast.program
