(** Pretty-printer for mini-C.  Output is valid mini-C (round-trips through
    {!Parser}) and close enough to C to be read as such. *)

val ty_to_string : Ast.ty -> string
val binop_to_string : Ast.binop -> string
val unop_to_string : Ast.unop -> string

(** Binding strength of a binary operator (used by the parser too). *)
val prec_of : Ast.binop -> int

val pp_expr : ?prec:int -> Format.formatter -> Ast.expr -> unit
val pp_stmt : indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
