(** Lowering from mini-C to the miniature IR.

    The translation is deliberately in the style of clang at [-O0]: every
    local variable lives in an [alloca] slot, every read is a [load], every
    write a [store].  Short-circuit operators and ternaries lower to control
    flow through a result slot.  Like clang's frontend, literal constant
    expressions are folded during lowering — this is what makes naive
    source-level "constant unfolding" obfuscations dissolve before they ever
    reach the IR. *)

open Ast
module I = Yali_ir.Instr
module T = Yali_ir.Types
module V = Yali_ir.Value
module B = Yali_ir.Builder

exception Lower_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let lower_ty = function TInt -> T.I32 | TFloat -> T.F64 | TVoid -> T.Void

(* Intrinsic signatures known to the interpreter. *)
let intrinsic_sig = function
  | "read_int" -> Some ([], T.I32)
  | "read_float" -> Some ([], T.F64)
  | "print_int" -> Some ([ T.I32 ], T.Void)
  | "print_float" -> Some ([ T.F64 ], T.Void)
  | "abs" -> Some ([ T.I32 ], T.I32)
  | "min" | "max" -> Some ([ T.I32; T.I32 ], T.I32)
  | _ -> None

type env = {
  prog : program;
  b : B.t;
  (* variable name -> (slot pointer value, scalar type) *)
  slots : (string, V.t * T.t) Hashtbl.t;
  (* array name -> (base pointer value, length) *)
  arrays : (string, V.t * int) Hashtbl.t;
  (* (continue target, break target) stack *)
  mutable loop_stack : (string * string) list;
  fret : T.t;
}

(* ---- frontend constant folding ---------------------------------------- *)

let rec fold_expr (e : expr) : expr =
  match e with
  | IntLit _ | FloatLit _ | Var _ | Index _ -> (
      match e with
      | Index (a, i) -> Index (a, fold_expr i)
      | _ -> e)
  | Call (n, args) -> Call (n, List.map fold_expr args)
  | Un (op, a) -> (
      match (op, fold_expr a) with
      | Neg, IntLit n -> IntLit (-n)
      | Neg, FloatLit f -> FloatLit (-.f)
      | LNot, IntLit n -> IntLit (if n = 0 then 1 else 0)
      | BNot, IntLit n -> IntLit (lnot n)
      | op, a' -> Un (op, a'))
  | Ternary (c, x, y) -> (
      match fold_expr c with
      | IntLit n -> if n <> 0 then fold_expr x else fold_expr y
      | c' -> Ternary (c', fold_expr x, fold_expr y))
  | Bin (op, x, y) -> (
      let x = fold_expr x and y = fold_expr y in
      match (op, x, y) with
      | Add, IntLit a, IntLit b -> IntLit (a + b)
      | Sub, IntLit a, IntLit b -> IntLit (a - b)
      | Mul, IntLit a, IntLit b -> IntLit (a * b)
      | Div, IntLit a, IntLit b when b <> 0 -> IntLit (a / b)
      | Mod, IntLit a, IntLit b when b <> 0 -> IntLit (a mod b)
      | BAnd, IntLit a, IntLit b -> IntLit (a land b)
      | BOr, IntLit a, IntLit b -> IntLit (a lor b)
      | BXor, IntLit a, IntLit b -> IntLit (a lxor b)
      | Shl, IntLit a, IntLit b when b >= 0 && b < 32 -> IntLit (a lsl b)
      | Shr, IntLit a, IntLit b when b >= 0 && b < 32 -> IntLit (a asr b)
      | Lt, IntLit a, IntLit b -> IntLit (if a < b then 1 else 0)
      | Le, IntLit a, IntLit b -> IntLit (if a <= b then 1 else 0)
      | Gt, IntLit a, IntLit b -> IntLit (if a > b then 1 else 0)
      | Ge, IntLit a, IntLit b -> IntLit (if a >= b then 1 else 0)
      | Eq, IntLit a, IntLit b -> IntLit (if a = b then 1 else 0)
      | Ne, IntLit a, IntLit b -> IntLit (if a <> b then 1 else 0)
      | LAnd, IntLit a, IntLit b -> IntLit (if a <> 0 && b <> 0 then 1 else 0)
      | LOr, IntLit a, IntLit b -> IntLit (if a <> 0 || b <> 0 then 1 else 0)
      | Add, FloatLit a, FloatLit b -> FloatLit (a +. b)
      | Sub, FloatLit a, FloatLit b -> FloatLit (a -. b)
      | Mul, FloatLit a, FloatLit b -> FloatLit (a *. b)
      | Div, FloatLit a, FloatLit b when b <> 0. -> FloatLit (a /. b)
      | op, x, y -> Bin (op, x, y))

(* ---- typing ------------------------------------------------------------ *)

let rec expr_ty (env : env) (e : expr) : T.t =
  match e with
  | IntLit _ -> T.I32
  | FloatLit _ -> T.F64
  | Var v -> (
      match Hashtbl.find_opt env.slots v with
      | Some (_, t) -> t
      | None ->
          if Hashtbl.mem env.arrays v then T.Ptr T.I32
          else err "unbound variable %s" v)
  | Index _ -> T.I32
  | Un (Neg, a) -> expr_ty env a
  | Un (_, _) -> T.I32
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr), _, _) -> T.I32
  | Bin ((Mod | BAnd | BOr | BXor | Shl | Shr), _, _) -> T.I32
  | Bin (_, a, b) ->
      if expr_ty env a = T.F64 || expr_ty env b = T.F64 then T.F64 else T.I32
  | Ternary (_, a, _) -> expr_ty env a
  | Call (n, _) -> (
      match intrinsic_sig n with
      | Some (_, ret) -> ret
      | None -> (
          match find_func env.prog n with
          | Some f -> lower_ty f.fret
          | None -> err "call to undeclared function %s" n))

(* ---- expression lowering ----------------------------------------------- *)

let rec lower_expr (env : env) (e : expr) : V.t * T.t =
  let b = env.b in
  match e with
  | IntLit n -> (V.i32 n, T.I32)
  | FloatLit f -> (V.f64 f, T.F64)
  | Var v -> (
      match Hashtbl.find_opt env.slots v with
      | Some (slot, t) -> (B.load b ~ty:t slot, t)
      | None -> (
          match Hashtbl.find_opt env.arrays v with
          | Some (base, _) -> (base, T.Ptr T.I32)
          | None -> err "unbound variable %s" v))
  | Index (a, i) ->
      let ptr = lower_index_addr env a i in
      (B.load b ~ty:T.I32 ptr, T.I32)
  | Un (Neg, a) -> (
      let v, t = lower_expr env a in
      match t with
      | T.F64 -> (B.emit b ~ty:T.F64 (I.Fneg v), T.F64)
      | _ -> (B.ibin b I.Sub (V.i32 0) v ~ty:T.I32, T.I32))
  | Un (LNot, a) ->
      let v = lower_cond env a in
      let inv = B.icmp b I.Eq v (V.i1 false) in
      (B.cast b I.ZExt inv ~ty:T.I32, T.I32)
  | Un (BNot, a) ->
      let v, _ = lower_int env a in
      (B.ibin b I.Xor v (V.i32 (-1)) ~ty:T.I32, T.I32)
  | Bin ((LAnd | LOr) as op, x, y) -> lower_shortcircuit env op x y
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne) as op, x, y) ->
      let vx, tx = lower_expr env x in
      let vy, ty = lower_expr env y in
      let c =
        if tx = T.F64 || ty = T.F64 then
          let fx = to_float env vx tx and fy = to_float env vy ty in
          let p =
            match op with
            | Lt -> I.Olt | Le -> I.Ole | Gt -> I.Ogt | Ge -> I.Oge
            | Eq -> I.Oeq | Ne -> I.One
            | _ -> assert false
          in
          B.fcmp b p fx fy
        else
          let p =
            match op with
            | Lt -> I.Slt | Le -> I.Sle | Gt -> I.Sgt | Ge -> I.Sge
            | Eq -> I.Eq | Ne -> I.Ne
            | _ -> assert false
          in
          B.icmp b p vx vy
      in
      (B.cast b I.ZExt c ~ty:T.I32, T.I32)
  | Bin ((Mod | BAnd | BOr | BXor | Shl | Shr) as op, x, y) ->
      let vx, _ = lower_int env x in
      let vy, _ = lower_int env y in
      let iop =
        match op with
        | Mod -> I.SRem | BAnd -> I.And | BOr -> I.Or | BXor -> I.Xor
        | Shl -> I.Shl | Shr -> I.AShr
        | _ -> assert false
      in
      (B.ibin b iop vx vy ~ty:T.I32, T.I32)
  | Bin ((Add | Sub | Mul | Div) as op, x, y) ->
      let vx, tx = lower_expr env x in
      let vy, ty = lower_expr env y in
      if tx = T.F64 || ty = T.F64 then
        let fx = to_float env vx tx and fy = to_float env vy ty in
        let fop =
          match op with
          | Add -> I.FAdd | Sub -> I.FSub | Mul -> I.FMul | Div -> I.FDiv
          | _ -> assert false
        in
        (B.fbin b fop fx fy, T.F64)
      else
        let iop =
          match op with
          | Add -> I.Add | Sub -> I.Sub | Mul -> I.Mul | Div -> I.SDiv
          | _ -> assert false
        in
        (B.ibin b iop vx vy ~ty:T.I32, T.I32)
  | Ternary (c, x, y) ->
      let tres = expr_ty env e in
      let slot = B.alloca b tres in
      let lt = B.new_block ~hint:"tern.t" b in
      let lf = B.new_block ~hint:"tern.f" b in
      let lj = B.new_block ~hint:"tern.end" b in
      let cv = lower_cond env c in
      B.condbr b cv lt lf;
      B.switch_to b lt;
      let vx, tx = lower_expr env x in
      let vx = coerce env vx tx tres in
      B.store b vx slot;
      B.br b lj;
      B.switch_to b lf;
      let vy, ty2 = lower_expr env y in
      let vy = coerce env vy ty2 tres in
      B.store b vy slot;
      B.br b lj;
      B.switch_to b lj;
      (B.load b ~ty:tres slot, tres)
  | Call (n, args) ->
      let psig, ret =
        match intrinsic_sig n with
        | Some (ps, r) -> (Some ps, r)
        | None -> (
            match find_func env.prog n with
            | Some f -> (Some (List.map (fun (t, _) -> lower_ty t) f.fparams), lower_ty f.fret)
            | None -> err "call to undeclared function %s" n)
      in
      let vals =
        match psig with
        | Some ps when List.length ps = List.length args ->
            List.map2
              (fun pt a ->
                let v, t = lower_expr env a in
                coerce env v t pt)
              ps args
        | _ -> err "arity mismatch calling %s" n
      in
      (B.call b ~ty:ret n vals, ret)

and lower_int (env : env) (e : expr) : V.t * T.t =
  let v, t = lower_expr env e in
  match t with
  | T.F64 -> (B.cast env.b I.FPToSI v ~ty:T.I32, T.I32)
  | _ -> (v, t)

and to_float (env : env) (v : V.t) (t : T.t) : V.t =
  if t = T.F64 then v else B.cast env.b I.SIToFP v ~ty:T.F64

and coerce (env : env) (v : V.t) (from_t : T.t) (to_t : T.t) : V.t =
  if from_t = to_t then v
  else
    match (from_t, to_t) with
    | T.I32, T.F64 -> B.cast env.b I.SIToFP v ~ty:T.F64
    | T.F64, T.I32 -> B.cast env.b I.FPToSI v ~ty:T.I32
    | _ -> v

(** Lower an expression as an [i1] branch condition. *)
and lower_cond (env : env) (e : expr) : V.t =
  match e with
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne) as op, x, y) ->
      (* avoid the zext/icmp-ne round-trip for plain comparisons *)
      let vx, tx = lower_expr env x in
      let vy, ty = lower_expr env y in
      if tx = T.F64 || ty = T.F64 then
        let fx = to_float env vx tx and fy = to_float env vy ty in
        let p =
          match op with
          | Lt -> I.Olt | Le -> I.Ole | Gt -> I.Ogt | Ge -> I.Oge
          | Eq -> I.Oeq | Ne -> I.One
          | _ -> assert false
        in
        B.fcmp env.b p fx fy
      else
        let p =
          match op with
          | Lt -> I.Slt | Le -> I.Sle | Gt -> I.Sgt | Ge -> I.Sge
          | Eq -> I.Eq | Ne -> I.Ne
          | _ -> assert false
        in
        B.icmp env.b p vx vy
  | _ ->
      let v, t = lower_expr env e in
      if t = T.F64 then B.fcmp env.b I.One v (V.f64 0.)
      else B.icmp env.b I.Ne v (V.i32 0)

and lower_shortcircuit (env : env) (op : binop) (x : expr) (y : expr) :
    V.t * T.t =
  let b = env.b in
  let slot = B.alloca b T.I32 in
  let leval = B.new_block ~hint:"sc.rhs" b in
  let lshort = B.new_block ~hint:"sc.short" b in
  let lj = B.new_block ~hint:"sc.end" b in
  let cx = lower_cond env x in
  (match op with
  | LAnd -> B.condbr b cx leval lshort
  | LOr -> B.condbr b cx lshort leval
  | _ -> assert false);
  B.switch_to b lshort;
  B.store b (V.i32 (match op with LAnd -> 0 | _ -> 1)) slot;
  B.br b lj;
  B.switch_to b leval;
  let cy = lower_cond env y in
  let as_int = B.cast b I.ZExt cy ~ty:T.I32 in
  B.store b as_int slot;
  B.br b lj;
  B.switch_to b lj;
  (B.load b ~ty:T.I32 slot, T.I32)

and lower_index_addr (env : env) (a : string) (i : expr) : V.t =
  let base, len =
    match Hashtbl.find_opt env.arrays a with
    | Some (base, len) -> (base, len)
    | None -> (
        match Hashtbl.find_opt env.slots a with
        | Some _ -> err "%s is scalar, not an array" a
        | None -> err "unbound array %s" a)
  in
  ignore len;
  let vi, _ = lower_int env i in
  B.gep env.b ~ty:(T.Ptr T.I32) base [ vi ]

(* ---- statement lowering ------------------------------------------------ *)

let rec lower_stmts (env : env) (ss : stmt list) : unit =
  List.iter (lower_stmt env) ss

and lower_stmt (env : env) (s : stmt) : unit =
  let b = env.b in
  if B.is_terminated b then ()
  else
    match s with
    | Decl (t, n, init) ->
        let ty = lower_ty t in
        let slot = B.alloca b ty in
        Hashtbl.replace env.slots n (slot, ty);
        (match init with
        | Some e ->
            let v, et = lower_expr env (fold_expr e) in
            B.store b (coerce env v et ty) slot
        | None -> B.store b (match ty with T.F64 -> V.f64 0. | _ -> V.i32 0) slot)
    | DeclArr (n, sz) ->
        let raw = B.alloca b (T.Arr (T.I32, max 1 sz)) in
        (* decay to an element pointer so that geps step by element *)
        let base = B.cast b I.Bitcast raw ~ty:(T.Ptr T.I32) in
        Hashtbl.replace env.arrays n (base, sz)
    | Assign (n, e) -> (
        match Hashtbl.find_opt env.slots n with
        | Some (slot, ty) ->
            let v, et = lower_expr env (fold_expr e) in
            B.store b (coerce env v et ty) slot
        | None -> err "assignment to unbound variable %s" n)
    | AssignIdx (a, i, e) ->
        let ptr = lower_index_addr env a (fold_expr i) in
        let v, et = lower_expr env (fold_expr e) in
        B.store b (coerce env v et T.I32) ptr
    | If (c, t, e) ->
        let lt = B.new_block ~hint:"if.then" b in
        let le = B.new_block ~hint:"if.else" b in
        let lj = B.new_block ~hint:"if.end" b in
        let cv = lower_cond env (fold_expr c) in
        B.condbr b cv lt le;
        B.switch_to b lt;
        lower_stmts env t;
        if not (B.is_terminated b) then B.br b lj;
        B.switch_to b le;
        lower_stmts env e;
        if not (B.is_terminated b) then B.br b lj;
        B.switch_to b lj
    | While (c, body) ->
        let lc = B.new_block ~hint:"while.cond" b in
        let lb = B.new_block ~hint:"while.body" b in
        let lx = B.new_block ~hint:"while.end" b in
        B.br b lc;
        B.switch_to b lc;
        let cv = lower_cond env (fold_expr c) in
        B.condbr b cv lb lx;
        B.switch_to b lb;
        env.loop_stack <- (lc, lx) :: env.loop_stack;
        lower_stmts env body;
        env.loop_stack <- List.tl env.loop_stack;
        if not (B.is_terminated b) then B.br b lc;
        B.switch_to b lx
    | DoWhile (body, c) ->
        let lb = B.new_block ~hint:"do.body" b in
        let lc = B.new_block ~hint:"do.cond" b in
        let lx = B.new_block ~hint:"do.end" b in
        B.br b lb;
        B.switch_to b lb;
        env.loop_stack <- (lc, lx) :: env.loop_stack;
        lower_stmts env body;
        env.loop_stack <- List.tl env.loop_stack;
        if not (B.is_terminated b) then B.br b lc;
        B.switch_to b lc;
        let cv = lower_cond env (fold_expr c) in
        B.condbr b cv lb lx;
        B.switch_to b lx
    | For (init, cond, step, body) ->
        Option.iter (lower_stmt env) init;
        let lc = B.new_block ~hint:"for.cond" b in
        let lb = B.new_block ~hint:"for.body" b in
        let ls = B.new_block ~hint:"for.step" b in
        let lx = B.new_block ~hint:"for.end" b in
        B.br b lc;
        B.switch_to b lc;
        (match cond with
        | Some c ->
            let cv = lower_cond env (fold_expr c) in
            B.condbr b cv lb lx
        | None -> B.br b lb);
        B.switch_to b lb;
        env.loop_stack <- (ls, lx) :: env.loop_stack;
        lower_stmts env body;
        env.loop_stack <- List.tl env.loop_stack;
        if not (B.is_terminated b) then B.br b ls;
        B.switch_to b ls;
        Option.iter (lower_stmt env) step;
        if not (B.is_terminated b) then B.br b lc;
        B.switch_to b lx
    | Switch (e, cases, default) ->
        let v, _ = lower_int env (fold_expr e) in
        let lx = B.new_block ~hint:"sw.end" b in
        let ld = B.new_block ~hint:"sw.default" b in
        let case_labels =
          List.map (fun (k, _) -> (k, B.new_block ~hint:"sw.case" b)) cases
        in
        B.switch b v ~default:ld
          (List.map (fun (k, l) -> (Int64.of_int k, l)) case_labels);
        (* cases break implicitly in mini-C *)
        env.loop_stack <- env.loop_stack;
        List.iter2
          (fun (_, body) (_, l) ->
            B.switch_to b l;
            env.loop_stack <- ("<invalid-continue>", lx) :: env.loop_stack;
            lower_stmts env body;
            env.loop_stack <- List.tl env.loop_stack;
            if not (B.is_terminated b) then B.br b lx)
          cases case_labels;
        B.switch_to b ld;
        env.loop_stack <- ("<invalid-continue>", lx) :: env.loop_stack;
        lower_stmts env default;
        env.loop_stack <- List.tl env.loop_stack;
        if not (B.is_terminated b) then B.br b lx;
        B.switch_to b lx
    | Break -> (
        match env.loop_stack with
        | (_, lx) :: _ -> B.br b lx
        | [] -> err "break outside loop/switch")
    | Continue -> (
        match env.loop_stack with
        | (lc, _) :: _ ->
            if lc = "<invalid-continue>" then err "continue inside switch only"
            else B.br b lc
        | [] -> err "continue outside loop")
    | Return None ->
        if env.fret = T.Void then B.ret b None
        else B.ret b (Some (V.i32 0))
    | Return (Some e) ->
        let v, t = lower_expr env (fold_expr e) in
        if env.fret = T.Void then B.ret b None
        else B.ret b (Some (coerce env v t env.fret))
    | Expr e -> ignore (lower_expr env (fold_expr e))
    | Block ss -> lower_stmts env ss

let lower_func (prog : program) (f : func) : Yali_ir.Func.t =
  let param_tys = List.map (fun (t, _) -> lower_ty t) f.fparams in
  let b = B.create ~name:f.fname ~param_tys ~ret:(lower_ty f.fret) in
  let entry = B.new_block ~hint:"entry" b in
  B.switch_to b entry;
  let env =
    {
      prog;
      b;
      slots = Hashtbl.create 16;
      arrays = Hashtbl.create 4;
      loop_stack = [];
      fret = lower_ty f.fret;
    }
  in
  (* spill parameters into slots, clang -O0 style *)
  List.iteri
    (fun i (t, n) ->
      let ty = lower_ty t in
      let slot = B.alloca b ty in
      B.store b (B.param b i) slot;
      Hashtbl.replace env.slots n (slot, ty))
    f.fparams;
  lower_stmts env f.fbody;
  (if not (B.is_terminated b) then
     match env.fret with
     | T.Void -> B.ret b None
     | T.F64 -> B.ret b (Some (V.f64 0.))
     | _ -> B.ret b (Some (V.i32 0)));
  (* seal any other unterminated blocks with a return, mirroring C's
     fall-off-the-end behaviour *)
  let fn = B.finish b in
  let fn =
    Yali_ir.Func.map_blocks
      (fun blk ->
        match blk.Yali_ir.Block.term with
        | Yali_ir.Instr.Unreachable when blk.Yali_ir.Block.label <> entry ->
            {
              blk with
              term =
                (match env.fret with
                | T.Void -> Yali_ir.Instr.Ret None
                | T.F64 -> Yali_ir.Instr.Ret (Some (V.f64 0.))
                | _ -> Yali_ir.Instr.Ret (Some (V.i32 0)));
            }
        | _ -> blk)
      fn
  in
  fn

(** Lower a full program to an IR module. *)
let lower_program ?(name = "m") (p : program) : Yali_ir.Irmod.t =
  let funcs = List.map (lower_func p) p.pfuncs in
  Yali_ir.Irmod.make ~name funcs
