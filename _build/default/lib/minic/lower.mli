(** Lowering from mini-C to the miniature IR, in the style of clang at
    [-O0]: every local variable lives in an alloca slot, short-circuit
    operators and ternaries lower to control flow through result slots, and
    literal constant expressions are folded during lowering (which is what
    dissolves naive source-level constant unfolding before it reaches the
    IR). *)

exception Lower_error of string

(** Frontend constant folding over literal expressions. *)
val fold_expr : Ast.expr -> Ast.expr

(** Lower one function.
    @raise Lower_error on unbound names or arity mismatches *)
val lower_func : Ast.program -> Ast.func -> Yali_ir.Func.t

(** Lower a full program to an IR module. *)
val lower_program : ?name:string -> Ast.program -> Yali_ir.Irmod.t
