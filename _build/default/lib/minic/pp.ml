(** Pretty-printer for mini-C.  Output is valid mini-C (round-trips through
    {!Parser}) and close enough to C to be read as such. *)

open Ast

let ty_to_string = function TInt -> "int" | TFloat -> "double" | TVoid -> "void"

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | LAnd -> "&&" | LOr -> "||"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_to_string = function Neg -> "-" | LNot -> "!" | BNot -> "~"

(* Precedence levels, higher binds tighter. *)
let prec_of = function
  | LOr -> 1
  | LAnd -> 2
  | BOr -> 3
  | BXor -> 4
  | BAnd -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let rec pp_expr ?(prec = 0) fmt (e : expr) =
  match e with
  | IntLit n ->
      (* negative literals print as the unary-negation form the parser
         produces, so that pp/parse round-trips are stable *)
      if n < 0 then Fmt.pf fmt "-(%d)" (-n) else Fmt.int fmt n
  | FloatLit x ->
      if Float.is_integer x && Float.abs x < 1e15 then Fmt.pf fmt "%.1f" x
      else Fmt.pf fmt "%.17g" x
  | Var v -> Fmt.string fmt v
  | Bin (op, a, b) ->
      let p = prec_of op in
      let body fmt () =
        Fmt.pf fmt "%a %s %a"
          (fun fmt -> pp_expr ~prec:p fmt)
          a (binop_to_string op)
          (fun fmt -> pp_expr ~prec:(p + 1) fmt)
          b
      in
      if p < prec then Fmt.pf fmt "(%a)" body () else body fmt ()
  | Un (op, a) -> Fmt.pf fmt "%s(%a)" (unop_to_string op) (pp_expr ~prec:0) a
  | Call (n, args) ->
      Fmt.pf fmt "%s(%a)" n Fmt.(list ~sep:(any ", ") (pp_expr ~prec:0)) args
  | Index (a, i) -> Fmt.pf fmt "%s[%a]" a (pp_expr ~prec:0) i
  | Ternary (c, a, b) ->
      Fmt.pf fmt "(%a ? %a : %a)" (pp_expr ~prec:0) c (pp_expr ~prec:0) a
        (pp_expr ~prec:0) b

let rec pp_stmt ~indent fmt (s : stmt) =
  let pad = String.make indent ' ' in
  let pp_body fmt body =
    List.iter (fun s -> Fmt.pf fmt "%a" (pp_stmt ~indent:(indent + 2)) s) body
  in
  match s with
  | Decl (t, n, None) -> Fmt.pf fmt "%s%s %s;@." pad (ty_to_string t) n
  | Decl (t, n, Some e) ->
      Fmt.pf fmt "%s%s %s = %a;@." pad (ty_to_string t) n (pp_expr ~prec:0) e
  | DeclArr (n, sz) -> Fmt.pf fmt "%sint %s[%d];@." pad n sz
  | Assign (n, e) -> Fmt.pf fmt "%s%s = %a;@." pad n (pp_expr ~prec:0) e
  | AssignIdx (a, i, e) ->
      Fmt.pf fmt "%s%s[%a] = %a;@." pad a (pp_expr ~prec:0) i (pp_expr ~prec:0) e
  | If (c, t, []) ->
      Fmt.pf fmt "%sif (%a) {@.%a%s}@." pad (pp_expr ~prec:0) c pp_body t pad
  | If (c, t, e) ->
      Fmt.pf fmt "%sif (%a) {@.%a%s} else {@.%a%s}@." pad (pp_expr ~prec:0) c
        pp_body t pad pp_body e pad
  | While (c, b) ->
      Fmt.pf fmt "%swhile (%a) {@.%a%s}@." pad (pp_expr ~prec:0) c pp_body b pad
  | DoWhile (b, c) ->
      Fmt.pf fmt "%sdo {@.%a%s} while (%a);@." pad pp_body b pad
        (pp_expr ~prec:0) c
  | For (i, c, st, b) ->
      let pp_opt_stmt fmt = function
        | None -> ()
        | Some (Assign (n, e)) -> Fmt.pf fmt "%s = %a" n (pp_expr ~prec:0) e
        | Some (Decl (t, n, Some e)) ->
            Fmt.pf fmt "%s %s = %a" (ty_to_string t) n (pp_expr ~prec:0) e
        | Some (Expr e) -> pp_expr ~prec:0 fmt e
        | Some _ -> Fmt.string fmt "/* ? */"
      in
      Fmt.pf fmt "%sfor (%a; %a; %a) {@.%a%s}@." pad pp_opt_stmt i
        (Fmt.option (pp_expr ~prec:0))
        c pp_opt_stmt st pp_body b pad
  | Switch (e, cases, d) ->
      Fmt.pf fmt "%sswitch (%a) {@." pad (pp_expr ~prec:0) e;
      List.iter
        (fun (k, b) ->
          Fmt.pf fmt "%scase %d: {@.%a%s  break; }@." pad k pp_body b pad)
        cases;
      Fmt.pf fmt "%sdefault: {@.%a%s}@." pad pp_body d pad;
      Fmt.pf fmt "%s}@." pad
  | Break -> Fmt.pf fmt "%sbreak;@." pad
  | Continue -> Fmt.pf fmt "%scontinue;@." pad
  | Return None -> Fmt.pf fmt "%sreturn;@." pad
  | Return (Some e) -> Fmt.pf fmt "%sreturn %a;@." pad (pp_expr ~prec:0) e
  | Expr e -> Fmt.pf fmt "%s%a;@." pad (pp_expr ~prec:0) e
  | Block b ->
      Fmt.pf fmt "%s{@.%a%s}@." pad
        (fun fmt -> List.iter (fun s -> pp_stmt ~indent:(indent + 2) fmt s))
        b pad

let pp_func fmt (f : func) =
  Fmt.pf fmt "%s %s(%a) {@.%a}@." (ty_to_string f.fret) f.fname
    Fmt.(
      list ~sep:(any ", ") (fun fmt (t, n) ->
          Fmt.pf fmt "%s %s" (ty_to_string t) n))
    f.fparams
    (fun fmt body -> List.iter (pp_stmt ~indent:2 fmt) body)
    f.fbody

let pp_program fmt (p : program) =
  List.iter (fun f -> Fmt.pf fmt "%a@." pp_func f) p.pfuncs

let expr_to_string e = Fmt.str "%a" (pp_expr ~prec:0) e
let func_to_string f = Fmt.str "%a" pp_func f
let program_to_string p = Fmt.str "%a" pp_program p
