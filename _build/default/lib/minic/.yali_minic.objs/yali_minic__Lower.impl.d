lib/minic/lower.ml: Ast Hashtbl Int64 List Option Printf Yali_ir
