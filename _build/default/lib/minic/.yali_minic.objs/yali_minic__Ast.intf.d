lib/minic/ast.mli:
