lib/minic/pp.ml: Ast Float Fmt List String
