lib/minic/lower.mli: Ast Yali_ir
