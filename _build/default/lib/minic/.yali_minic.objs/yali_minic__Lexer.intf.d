lib/minic/lexer.mli:
