lib/minic/parser.ml: Ast Lexer List Pp Printf
