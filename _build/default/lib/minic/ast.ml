(** Abstract syntax of mini-C, the source language of the framework.

    Mini-C covers the subset of C that the synthetic POJ-style dataset and
    Zhang et al.'s source-level transformations need: scalar ints and floats,
    one-dimensional arrays, the full statement zoo (if / while / do-while /
    for / switch / break / continue), and calls. *)

type ty = TInt | TFloat | TVoid

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr
  | BAnd | BOr | BXor | Shl | Shr

type unop = Neg | LNot | BNot

type expr =
  | IntLit of int
  | FloatLit of float
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list
  | Index of string * expr  (** a[e] *)
  | Ternary of expr * expr * expr

type stmt =
  | Decl of ty * string * expr option
  | DeclArr of string * int  (** [int name\[n\]] *)
  | Assign of string * expr
  | AssignIdx of string * expr * expr  (** a[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of stmt option * expr option * stmt option * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
      (** scrutinee, cases (each implicitly breaking), default *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr
  | Block of stmt list

type func = {
  fname : string;
  fparams : (ty * string) list;
  fret : ty;
  fbody : stmt list;
}

type program = { pfuncs : func list }

let func_names (p : program) = List.map (fun f -> f.fname) p.pfuncs

let find_func (p : program) name =
  List.find_opt (fun f -> f.fname = name) p.pfuncs

(* -- traversals ---------------------------------------------------------- *)

let rec map_expr_in_expr (f : expr -> expr) (e : expr) : expr =
  let r = map_expr_in_expr f in
  let e' =
    match e with
    | IntLit _ | FloatLit _ | Var _ -> e
    | Bin (op, a, b) -> Bin (op, r a, r b)
    | Un (op, a) -> Un (op, r a)
    | Call (n, args) -> Call (n, List.map r args)
    | Index (a, i) -> Index (a, r i)
    | Ternary (c, a, b) -> Ternary (r c, r a, r b)
  in
  f e'

let rec map_stmts (f : stmt -> stmt) (ss : stmt list) : stmt list =
  List.map (map_stmt f) ss

and map_stmt (f : stmt -> stmt) (s : stmt) : stmt =
  let s' =
    match s with
    | Decl _ | DeclArr _ | Assign _ | AssignIdx _ | Break | Continue
    | Return _ | Expr _ ->
        s
    | If (c, t, e) -> If (c, map_stmts f t, map_stmts f e)
    | While (c, b) -> While (c, map_stmts f b)
    | DoWhile (b, c) -> DoWhile (map_stmts f b, c)
    | For (i, c, st, b) ->
        For
          ( Option.map (map_stmt f) i,
            c,
            Option.map (map_stmt f) st,
            map_stmts f b )
    | Switch (e, cases, d) ->
        Switch
          ( e,
            List.map (fun (k, b) -> (k, map_stmts f b)) cases,
            map_stmts f d )
    | Block b -> Block (map_stmts f b)
  in
  f s'

(** Map every expression in a statement list (including conditions,
    initialisers, indices). *)
let rec map_exprs (f : expr -> expr) (ss : stmt list) : stmt list =
  List.map (map_exprs_stmt f) ss

and map_exprs_stmt (f : expr -> expr) (s : stmt) : stmt =
  let fe = map_expr_in_expr f in
  match s with
  | Decl (t, n, e) -> Decl (t, n, Option.map fe e)
  | DeclArr _ -> s
  | Assign (n, e) -> Assign (n, fe e)
  | AssignIdx (a, i, e) -> AssignIdx (a, fe i, fe e)
  | If (c, t, e) -> If (fe c, map_exprs f t, map_exprs f e)
  | While (c, b) -> While (fe c, map_exprs f b)
  | DoWhile (b, c) -> DoWhile (map_exprs f b, fe c)
  | For (i, c, st, b) ->
      For
        ( Option.map (map_exprs_stmt f) i,
          Option.map fe c,
          Option.map (map_exprs_stmt f) st,
          map_exprs f b )
  | Switch (e, cases, d) ->
      Switch (fe e, List.map (fun (k, b) -> (k, map_exprs f b)) cases, map_exprs f d)
  | Break | Continue -> s
  | Return e -> Return (Option.map fe e)
  | Expr e -> Expr (fe e)
  | Block b -> Block (map_exprs f b)

(** Count statements, recursively. *)
let rec stmt_count (ss : stmt list) : int =
  List.fold_left
    (fun acc s ->
      acc + 1
      +
      match s with
      | If (_, t, e) -> stmt_count t + stmt_count e
      | While (_, b) | DoWhile (b, _) -> stmt_count b
      | For (i, _, st, b) ->
          stmt_count (Option.to_list i) + stmt_count (Option.to_list st)
          + stmt_count b
      | Switch (_, cases, d) ->
          List.fold_left (fun a (_, b) -> a + stmt_count b) (stmt_count d) cases
      | Block b -> stmt_count b
      | _ -> 0)
    0 ss

(** Variable names declared anywhere in the function, parameters included. *)
let declared_vars (fn : func) : string list =
  let acc = ref (List.map snd fn.fparams) in
  let rec go ss =
    List.iter
      (fun s ->
        match s with
        | Decl (_, n, _) | DeclArr (n, _) -> acc := n :: !acc
        | If (_, t, e) -> go t; go e
        | While (_, b) | DoWhile (b, _) -> go b
        | For (i, _, st, b) ->
            go (Option.to_list i); go (Option.to_list st); go b
        | Switch (_, cases, d) ->
            List.iter (fun (_, b) -> go b) cases;
            go d
        | Block b -> go b
        | _ -> ())
      ss
  in
  go fn.fbody;
  List.rev !acc
