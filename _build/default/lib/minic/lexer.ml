(** Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_INT | KW_DOUBLE | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR | KW_SWITCH | KW_CASE
  | KW_DEFAULT | KW_BREAK | KW_CONTINUE | KW_RETURN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | COLON | QUESTION
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AMPAMP | BARBAR | AMP | BAR | CARET | TILDE | BANG | SHL | SHR
  | EOF

exception Lex_error of string * int  (** message, position *)

let keyword_of = function
  | "int" -> Some KW_INT
  | "double" -> Some KW_DOUBLE
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "return" -> Some KW_RETURN
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then (
      while !i < n && src.[!i] <> '\n' do incr i done)
    else if c = '/' && peek 1 = Some '*' then (
      i := !i + 2;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then (
          i := !i + 2;
          fin := true)
        else incr i
      done;
      if not !fin then raise (Lex_error ("unterminated comment", !i)))
    else if is_digit c then (
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' then (
        incr i;
        while !i < n && is_digit src.[!i] do incr i done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start)))))
      else emit (INT (int_of_string (String.sub src start (!i - start)))))
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      match keyword_of word with
      | Some kw -> emit kw
      | None -> emit (IDENT word))
    else (
      let two t = emit t; i := !i + 2 in
      let one t = emit t; incr i in
      match (c, peek 1) with
      | '&', Some '&' -> two AMPAMP
      | '|', Some '|' -> two BARBAR
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | ':', _ -> one COLON
      | '?', _ -> one QUESTION
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '&', _ -> one AMP
      | '|', _ -> one BAR
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, !i)))
  done;
  emit EOF;
  List.rev !toks

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int" | KW_DOUBLE -> "double" | KW_VOID -> "void"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_DO -> "do"
  | KW_FOR -> "for" | KW_SWITCH -> "switch" | KW_CASE -> "case"
  | KW_DEFAULT -> "default" | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue" | KW_RETURN -> "return"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | COLON -> ":" | QUESTION -> "?" | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | AMPAMP -> "&&" | BARBAR -> "||" | AMP -> "&" | BAR -> "|" | CARET -> "^"
  | TILDE -> "~" | BANG -> "!" | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"
