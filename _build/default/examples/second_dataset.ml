(** External validity: re-run the headline games on a second corpus.

    The paper's own limitations section notes that nearly all of its
    conclusions come from a single dataset (POJ-104).  This example replays
    the core comparisons on a structurally different corpus — sixteen
    recursion-heavy problem classes ([lib/dataset/genprog2.ml]) whose opcode
    mixes are call-dominated rather than loop-dominated — and checks whether
    the findings transfer:

    1. Game0: is rf still ≥ the neural model?  Do histograms still work?
    2. Game1 vs Game2: does knowing the obfuscator still restore accuracy?
    3. Game3: does O3 normalization still strip the source-level evader?

    Run with: [dune exec examples/second_dataset.exe] *)

module Rng = Yali.Rng
module G = Yali.Games
module E = Yali.Embeddings

let n_classes = Yali.Dataset.Genprog2.count

let split seed =
  Yali.Dataset.Genprog2.make_split (Rng.make seed) ~train_per_class:14
    ~test_per_class:5

let run model setup seed =
  let r =
    G.Arena.run_flat (Rng.make (seed + 9)) ~n_classes E.Embedding.histogram
      model setup (split seed)
  in
  r.accuracy

let () =
  Printf.printf
    "Second corpus: %d recursion-heavy classes (external validity check)\n\n"
    n_classes;

  Printf.printf "1. Game0, histogram embedding:\n";
  List.iter
    (fun (m : Yali.Ml.Model.flat) ->
      Printf.printf "   %-4s %.2f\n%!" m.fname (run m G.Game.game0 1))
    [ Yali.Ml.Model.rf; Yali.Ml.Model.knn; Yali.Ml.Model.cnn ];

  Printf.printf "\n2. The arms race against ollvm:\n";
  let g0 = run Yali.Ml.Model.rf G.Game.game0 2 in
  let g1 = run Yali.Ml.Model.rf (G.Game.game1 Yali.Obfuscation.Evader.ollvm) 2 in
  let g2 = run Yali.Ml.Model.rf (G.Game.game2 Yali.Obfuscation.Evader.ollvm) 2 in
  Printf.printf "   game0 %.2f | game1 %.2f | game2 %.2f  (drop then recovery)\n"
    g0 g1 g2;

  Printf.printf "\n3. Normalization against the drlsg source evader:\n";
  let g1 = run Yali.Ml.Model.rf (G.Game.game1 Yali.Obfuscation.Evader.drlsg) 3 in
  let g3 = run Yali.Ml.Model.rf (G.Game.game3 Yali.Obfuscation.Evader.drlsg) 3 in
  Printf.printf "   game1 %.2f -> game3 %.2f  (the normalizer's recovery)\n" g1 g3;

  Printf.printf
    "\nIf the shapes above match the POJ-style corpus (README / EXPERIMENTS.md),\n\
     the paper's conclusions transfer to this corner of program space too.\n"
