(** Quickstart: the full pipeline in one file.

    Compile a mini-C program, run it, optimize it, obfuscate it, embed it,
    and finally play a tiny adversarial game.

    Run with: [dune exec examples/quickstart.exe] *)

module Rng = Yali.Rng

let src =
  {|
int gcd(int a, int b) {
  while (b != 0) {
    int t = b;
    b = a % b;
    a = t;
  }
  return a;
}
int main() {
  int x = read_int();
  int y = read_int();
  print_int(gcd(x, y));
  return 0;
}
|}

let () =
  (* 1. compile and run *)
  let m = Yali.compile src in
  let out = Yali.run m [ 48L; 36L ] in
  Printf.printf "gcd(48, 36) = %Ld   (%d instructions executed, cost %d)\n\n"
    (List.hd out.output) out.steps out.cost;

  (* 2. optimize: -O3 shrinks the code and the runtime *)
  let m3 = Yali.Transforms.Pipeline.o3 m in
  let out3 = Yali.run m3 [ 48L; 36L ] in
  Printf.printf "-O0: %3d static instructions, dynamic cost %d\n"
    (Yali.Ir.Irmod.instr_count m) out.cost;
  Printf.printf "-O3: %3d static instructions, dynamic cost %d\n\n"
    (Yali.Ir.Irmod.instr_count m3) out3.cost;

  (* 3. obfuscate: O-LLVM-style control-flow flattening *)
  let rng = Rng.make 2023 in
  let mf = Yali.Obfuscation.Fla.run rng m in
  let outf = Yali.run mf [ 48L; 36L ] in
  Printf.printf "fla: %3d static instructions, dynamic cost %d — same answer: %Ld\n\n"
    (Yali.Ir.Irmod.instr_count mf) outf.cost (List.hd outf.output);

  (* 4. embed: the 63-dimensional opcode histogram *)
  let h = Yali.Embeddings.Histogram.of_module m in
  let hf = Yali.Embeddings.Histogram.of_module mf in
  Printf.printf "histogram distance plain→flattened: %.2f\n\n"
    (Yali.Embeddings.Histogram.euclidean h hf);

  (* 5. play a game: classifier vs. the fla evader, 6 problem classes *)
  let split =
    Yali.Dataset.Poj.make (Rng.make 7) ~n_classes:6 ~train_per_class:15
      ~test_per_class:5
  in
  let game1 = Yali.Games.Game.game1 Yali.Obfuscation.Evader.fla in
  let r =
    Yali.Games.Arena.run_flat (Rng.make 8) ~n_classes:6
      Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf game1 split
  in
  Printf.printf
    "Game1 (histogram + random forest vs. fla): accuracy %.2f on %d challenges\n"
    r.accuracy r.n_test;
  let verdict = if r.accuracy > 0.5 then "classifier wins" else "evader wins" in
  Printf.printf "with threshold K = 0.5: %s\n" verdict
