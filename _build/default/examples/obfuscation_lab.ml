(** Obfuscation lab: take one program and put every evader under the
    microscope — size, runtime cost, histogram displacement, and what a
    normalizing optimizer does to each.

    This is the paper's Figures 10 and 13 for a single program, as an
    interactive tour.

    Run with: [dune exec examples/obfuscation_lab.exe] *)

module Rng = Yali.Rng
module E = Yali.Embeddings

let subject =
  {|
int classify(int x) {
  if (x < 10) { return 0; }
  if (x < 100) { return 1; }
  return 2;
}
int main() {
  int n = abs(read_int()) % 24 + 4;
  int counts[3];
  for (int k = 0; k < 3; k = k + 1) { counts[k] = 0; }
  int acc = 0;
  for (int k = 0; k < n; k = k + 1) {
    int x = abs(read_int()) % 500;
    int c = classify(x);
    counts[c] = counts[c] + 1;
    acc = acc + x * (c + 1);
  }
  for (int k = 0; k < 3; k = k + 1) { print_int(counts[k]); }
  print_int(acc % 10007);
  return 0;
}
|}

let input = List.init 32 (fun k -> Int64.of_int ((k * 131) mod 700))

let () =
  let prog = Yali.parse subject in
  let m0 = Yali.lower prog in
  let base = Yali.run m0 input in
  let h0 = E.Histogram.of_module m0 in
  Printf.printf "subject: %d instructions, dynamic cost %d, output %s...\n\n"
    (Yali.Ir.Irmod.instr_count m0) base.cost
    (String.concat ","
       (List.map Int64.to_string (List.filteri (fun i _ -> i < 4) base.output)));

  Printf.printf "%-8s %9s %9s %10s %10s %12s  %s\n" "evader" "instrs"
    "cost" "slowdown" "distance" "dist-postO3" "behaviour";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (e : Yali.Obfuscation.Evader.t) ->
      let m = e.apply (Rng.make 2023) prog in
      let o = Yali.Ir.Interp.run ~fuel:100_000_000 m input in
      let same = Yali.Ir.Interp.equal_behaviour base o in
      let d = E.Histogram.euclidean h0 (E.Histogram.of_module m) in
      (* what the classifier's normalizer sees *)
      let m3 = Yali.Transforms.Pipeline.o3 m in
      let h3 = E.Histogram.of_module (Yali.Transforms.Pipeline.o3 m0) in
      let d3 = E.Histogram.euclidean h3 (E.Histogram.of_module m3) in
      Printf.printf "%-8s %9d %9d %9.2fx %10.2f %12.2f  %s\n" e.ename
        (Yali.Ir.Irmod.instr_count m)
        o.cost
        (float_of_int o.cost /. float_of_int base.cost)
        d d3
        (if same then "preserved" else "BROKEN!"))
    Yali.Obfuscation.Evader.all;

  Printf.printf
    "\nReadings:\n\
     - 'distance' is the Euclidean gap between opcode histograms (paper Fig. 10):\n\
    \  the evader's power against a histogram classifier.\n\
     - 'dist-postO3' is the same gap after the classifier normalizes both sides\n\
    \  with -O3 (paper §4.4): source-level tricks collapse, bcf survives.\n\
     - 'slowdown' is the price the evader pays at runtime (paper Fig. 13).\n"
