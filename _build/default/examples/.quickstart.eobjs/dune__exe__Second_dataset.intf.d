examples/second_dataset.mli:
