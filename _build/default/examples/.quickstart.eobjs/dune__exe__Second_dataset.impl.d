examples/second_dataset.ml: List Printf Yali
