examples/quickstart.mli:
