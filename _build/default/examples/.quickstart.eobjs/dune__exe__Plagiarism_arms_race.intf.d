examples/plagiarism_arms_race.mli:
