examples/quickstart.ml: List Printf Yali
