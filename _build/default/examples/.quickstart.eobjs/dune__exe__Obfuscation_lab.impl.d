examples/obfuscation_lab.ml: Int64 List Printf String Yali
