examples/game_tournament.ml: List Printf String Yali
