examples/game_tournament.mli:
