examples/obfuscation_lab.mli:
