examples/plagiarism_arms_race.ml: List Printf String Yali
