(** The plagiarism arms race: a clone-detection scenario from the paper's
    introduction.

    A student copies a reference solution and disguises it with Zhang-style
    source transformations (the [drlsg] strategy).  The instructor's
    detector compares opcode histograms.  We watch three rounds:

    1. naive detector vs. plain copy — caught;
    2. naive detector vs. disguised copy — evaded (Game1);
    3. normalizing detector (clang -O3 first) vs. disguised copy — caught
       again (Game3, the paper's normalization hypothesis).

    Run with: [dune exec examples/plagiarism_arms_race.exe] *)

module Rng = Yali.Rng
module E = Yali.Embeddings

let reference_solution =
  {|
int main() {
  int n = abs(read_int()) % 16 + 1;
  int best = 0 - 1;
  int pos = 0 - 1;
  int arr[16];
  for (int k = 0; k < n; k = k + 1) {
    arr[k] = abs(read_int()) % 100;
  }
  for (int k = 0; k < n; k = k + 1) {
    if (arr[k] > best) {
      best = arr[k];
      pos = k;
    }
  }
  print_int(pos);
  print_int(best);
  return 0;
}
|}

(* a genuinely different submission, for contrast: same problem, different
   algorithm shape (scan from the right with while) *)
let independent_solution =
  {|
int main() {
  int n = abs(read_int()) % 16 + 1;
  int data[16];
  int k = 0;
  while (k < n) { data[k] = abs(read_int()) % 100; k = k + 1; }
  int idx = n - 1;
  int where = n - 1;
  int top = data[n - 1];
  while (idx >= 0) {
    if (data[idx] >= top) { top = data[idx]; where = idx; }
    idx = idx - 1;
  }
  print_int(where);
  print_int(top);
  return 0;
}
|}

let distance a b = E.Histogram.euclidean a b

let hist ?(normalize = false) (p : Yali.Minic.Ast.program) =
  let m = Yali.lower p in
  let m = if normalize then Yali.Transforms.Pipeline.o3 m else m in
  E.Histogram.of_module m

let () =
  let reference = Yali.parse reference_solution in
  let independent = Yali.parse independent_solution in

  (* the student's disguised copy *)
  let disguised =
    Yali.Obfuscation.Strategies.drlsg (Rng.make 99) reference
  in
  Printf.printf "Disguised copy (excerpt):\n%s\n"
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 12)
          (String.split_on_char '\n'
             (Yali.Minic.Pp.program_to_string disguised))));

  Printf.printf "\n=== Round 1: naive histogram detector ===\n";
  let h_ref = hist reference in
  let d_plain = distance h_ref (hist reference) in
  let d_indep = distance h_ref (hist independent) in
  let d_disg = distance h_ref (hist disguised) in
  Printf.printf "distance to verbatim copy:      %.2f\n" d_plain;
  Printf.printf "distance to independent work:   %.2f\n" d_indep;
  Printf.printf "distance to disguised copy:     %.2f\n" d_disg;
  Printf.printf "verdict: disguised copy %s\n"
    (if d_disg < d_indep then "CAUGHT (closer than independent work)"
     else "EVADES (hides behind legitimate variation)");

  Printf.printf "\n=== Round 2: normalizing detector (clang -O3 first) ===\n";
  let h_ref3 = hist ~normalize:true reference in
  let d_indep3 = distance h_ref3 (hist ~normalize:true independent) in
  let d_disg3 = distance h_ref3 (hist ~normalize:true disguised) in
  Printf.printf "distance to independent work:   %.2f\n" d_indep3;
  Printf.printf "distance to disguised copy:     %.2f\n" d_disg3;
  Printf.printf "verdict: disguised copy %s\n"
    (if d_disg3 < d_indep3 then "CAUGHT — normalization reverted the disguise"
     else "still evades");

  Printf.printf "\n=== Round 3: what if the student uses bogus control flow? ===\n";
  let m_bcf =
    Yali.Obfuscation.Bcf.run ~probability:1.0 (Rng.make 5) (Yali.lower reference)
  in
  let h_bcf3 = E.Histogram.of_module (Yali.Transforms.Pipeline.o3 m_bcf) in
  let d_bcf3 = distance h_ref3 h_bcf3 in
  Printf.printf "distance to bcf'd copy after -O3 normalization: %.2f\n" d_bcf3;
  Printf.printf
    "(bcf resists normalization — the paper's §4.4 caveat: opaque predicates\n\
     cannot be folded, so some distance always remains: %.2f vs %.2f for drlsg)\n"
    d_bcf3 d_disg3
