(** Tournament: every evader against the classifier in all four games.

    One compact league table answers the paper's headline question — *where
    do we stand in this arms race?* — on a small synthetic bracket:
    per evader, the classifier's accuracy in Game1 (blind), Game2 (informed)
    and Game3 (normalizing), against the shared Game0 baseline, with a
    win/loss verdict at threshold K.

    Run with: [dune exec examples/game_tournament.exe] *)

module Rng = Yali.Rng
module G = Yali.Games

let n_classes = 10
let threshold = 0.5

let run setup seed =
  let split =
    Yali.Dataset.Poj.make (Rng.make seed) ~n_classes ~train_per_class:14
      ~test_per_class:4
  in
  (G.Arena.run_flat (Rng.make (seed + 1)) ~n_classes
     Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf setup split)
    .accuracy

let () =
  Printf.printf
    "Tournament: histogram + random forest vs. every evader (%d classes, K=%.2f)\n\n"
    n_classes threshold;
  let baseline = run G.Game.game0 7 in
  Printf.printf "Game0 baseline accuracy: %.2f\n\n" baseline;
  Printf.printf "%-8s %8s %8s %8s   %s\n" "evader" "game1" "game2" "game3"
    "verdicts (1/2/3)";
  Printf.printf "%s\n" (String.make 64 '-');
  let classifier_points = ref 0 and evader_points = ref 0 in
  List.iter
    (fun (e : Yali.Obfuscation.Evader.t) ->
      let g1 = run (G.Game.game1 e) 7 in
      let g2 = run (G.Game.game2 e) 7 in
      let g3 = run (G.Game.game3 e) 7 in
      let verdict acc =
        if acc > threshold then begin
          incr classifier_points;
          "C"
        end
        else begin
          incr evader_points;
          "E"
        end
      in
      let v1 = verdict g1 and v2 = verdict g2 and v3 = verdict g3 in
      Printf.printf "%-8s %8.2f %8.2f %8.2f   %s/%s/%s\n%!" e.ename g1 g2 g3
        v1 v2 v3)
    Yali.Obfuscation.Evader.active;
  Printf.printf "%s\n" (String.make 64 '-');
  Printf.printf "final score — classifier %d : %d evaders\n" !classifier_points
    !evader_points;
  Printf.printf
    "\n(Expected shape, per the paper: evaders take their points in Game1;\n\
     Game2 goes to the classifier across the board; Game3 splits — the\n\
     normalizer recovers the source-level tricks but not bcf/ollvm.)\n"
