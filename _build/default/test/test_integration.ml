(** End-to-end integration tests: miniature versions of the paper's headline
    experiments, asserting the qualitative findings rather than point
    estimates. *)

open Helpers
module G = Yali.Games
module Rng = Yali.Rng
module E = Yali.Embeddings

let n_classes = 8

let split seed =
  Yali.Dataset.Poj.make (Rng.make seed) ~n_classes ~train_per_class:14
    ~test_per_class:5

let run_game setup seed =
  (G.Arena.run_flat (Rng.make (seed + 100)) ~n_classes
     E.Embedding.histogram Yali.Ml.Model.rf setup (split seed))
    .accuracy

let test_game1_ollvm_hurts () =
  (* §4.3: the combined O-LLVM evader must hurt an unaware classifier *)
  let base = run_game G.Game.game0 1 in
  let evaded = run_game (G.Game.game1 Yali.Obfuscation.Evader.ollvm) 1 in
  Alcotest.(check bool)
    (Printf.sprintf "game1-ollvm (%.2f) < game0 (%.2f)" evaded base)
    true (evaded < base)

let test_game2_restores () =
  (* §4.3: knowledge of the obfuscator restores near-game0 accuracy *)
  let g1 = run_game (G.Game.game1 Yali.Obfuscation.Evader.ollvm) 2 in
  let g2 = run_game (G.Game.game2 Yali.Obfuscation.Evader.ollvm) 2 in
  Alcotest.(check bool)
    (Printf.sprintf "game2 (%.2f) > game1 (%.2f)" g2 g1)
    true (g2 > g1)

let test_game3_normalization_kills_source_tricks () =
  (* §4.4: O3 normalization reverts Zhang-style source obfuscation *)
  let g1 = run_game (G.Game.game1 Yali.Obfuscation.Evader.rs) 3 in
  let g3 = run_game (G.Game.game3 Yali.Obfuscation.Evader.rs) 3 in
  Alcotest.(check bool)
    (Printf.sprintf "game3-rs (%.2f) ≥ game1-rs (%.2f) - 0.05" g3 g1)
    true
    (g3 >= g1 -. 0.05)

let test_bcf_resists_normalization () =
  (* §4.4: bogus control flow survives the O3 normalizer — the normalized
     challenge still carries the opaque-predicate machinery *)
  let p = dataset_program 42 in
  let m_plain = Yali.Transforms.Pipeline.o3 (lower p) in
  let m_bcf =
    Yali.Transforms.Pipeline.o3
      (Yali.Obfuscation.Bcf.run ~probability:1.0 (Rng.make 1) (lower p))
  in
  Alcotest.(check bool) "bcf code stays bigger after O3" true
    (Yali.Ir.Irmod.instr_count m_bcf > Yali.Ir.Irmod.instr_count m_plain)

let test_drlsg_dissolves_under_ssa () =
  (* §4.3/§4.4: SSA conversion plus optimization reverts most of drlsg's
     effect — the O3-normalized evaded program sits far closer (in histogram
     space) to the O3'd original than the un-normalized one does *)
  let p = dataset_program 55 in
  let h_plain = E.Histogram.of_module (Yali.Transforms.Pipeline.o3 (lower p)) in
  let evaded = lower (Yali.Obfuscation.Strategies.drlsg (Rng.make 5) p) in
  let d_raw =
    E.Histogram.euclidean
      (E.Histogram.of_module (lower p))
      (E.Histogram.of_module evaded)
  in
  let d_norm =
    E.Histogram.euclidean h_plain
      (E.Histogram.of_module (Yali.Transforms.Pipeline.o3 evaded))
  in
  Alcotest.(check bool)
    (Printf.sprintf "normalized distance %.1f < raw distance %.1f" d_norm d_raw)
    true (d_norm < d_raw)

let test_histogram_distance_ranking () =
  (* Figure 10: ollvm and O3 move histograms further than fla/sub do *)
  let avg_distance (e : Yali.Obfuscation.Evader.t) =
    let ds =
      List.init 10 (fun k ->
          let p = dataset_program (k * 13) in
          let h0 = E.Histogram.of_module (lower p) in
          let h1 = E.Histogram.of_module (e.apply (Rng.make k) p) in
          E.Histogram.euclidean h0 h1)
    in
    List.fold_left ( +. ) 0.0 ds /. 10.0
  in
  let d_ollvm = avg_distance Yali.Obfuscation.Evader.ollvm in
  let d_fla = avg_distance Yali.Obfuscation.Evader.fla in
  Alcotest.(check bool)
    (Printf.sprintf "ollvm (%.1f) moves further than fla (%.1f)" d_ollvm d_fla)
    true (d_ollvm > d_fla)

let test_optimizer_vs_obfuscator_speed () =
  (* §4.6: optimized code is faster than obfuscated code, always *)
  let name, prog = List.nth Yali.Dataset.Benchgame.all 2 in
  ignore name;
  let m0 = lower prog in
  let o0 = Yali.Ir.Interp.run ~fuel:40_000_000 m0 [] in
  let o3 = Yali.Ir.Interp.run ~fuel:40_000_000 (Yali.Transforms.Pipeline.o3 m0) [] in
  let obf =
    Yali.Ir.Interp.run ~fuel:200_000_000
      (Yali.Obfuscation.Ollvm.run (Rng.make 1) m0)
      []
  in
  Alcotest.(check bool) "O3 faster than O0" true (o3.cost < o0.cost);
  Alcotest.(check bool) "ollvm slower than O0" true (obf.cost > o0.cost)

let test_full_cli_style_pipeline () =
  (* parse → obfuscate → optimize → classify smoke chain via the umbrella
     API, as a user of the library would write it *)
  let src = "int main() { int n = read_int(); int s = 0; for (int k = 0; k < n; k = k + 1) { s = s + k * k; } print_int(s); return s; }" in
  let m = Yali.compile ~optimize:Yali.Transforms.Pipeline.O2 src in
  let out = Yali.run m [ 5L ] in
  Alcotest.(check bool) "0+1+4+9+16 = 30" true
    (out.output = [ 30L ])

let suite =
  [
    Alcotest.test_case "game1: ollvm hurts" `Slow test_game1_ollvm_hurts;
    Alcotest.test_case "game2: knowledge restores" `Slow test_game2_restores;
    Alcotest.test_case "game3: normalization beats source tricks" `Slow
      test_game3_normalization_kills_source_tricks;
    Alcotest.test_case "bcf resists O3" `Quick test_bcf_resists_normalization;
    Alcotest.test_case "drlsg dissolves under SSA" `Slow
      test_drlsg_dissolves_under_ssa;
    Alcotest.test_case "fig10 distance ranking" `Slow test_histogram_distance_ranking;
    Alcotest.test_case "optimizer vs obfuscator speed" `Slow
      test_optimizer_vs_obfuscator_speed;
    Alcotest.test_case "umbrella API pipeline" `Quick test_full_cli_style_pipeline;
  ]
