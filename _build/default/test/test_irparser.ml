(** Tests for the textual-IR parser: the printer/parser round-trip contract,
    plus targeted syntax cases. *)

open Helpers
module Ir = Yali.Ir

let roundtrip (m : Ir.Irmod.t) =
  let txt = Ir.Pp.module_to_string m in
  let m2 = Ir.Parser.parse_module txt in
  (txt, Ir.Pp.module_to_string m2, m2)

let test_roundtrip_simple () =
  let m = lower (parse "int main() { int a = read_int(); return a * 3 + 1; }") in
  let txt, txt2, m2 = roundtrip m in
  Alcotest.(check string) "printed form identical" txt txt2;
  Alcotest.(check int) "no verifier complaints" 0
    (List.length (Ir.Verify.check_module m2))

let test_roundtrip_behaviour =
  qtest ~count:40 "parsed module behaves identically" (fun seed ->
      let m = lower (dataset_program seed) in
      let _, _, m2 = roundtrip m in
      let input = fuzz_input seed in
      Ir.Interp.equal_behaviour
        (Ir.Interp.run ~fuel:4_000_000 m input)
        (Ir.Interp.run ~fuel:4_000_000 m2 input))

let test_roundtrip_optimized =
  qtest ~count:30 "round-trip of SSA-form (O3) modules" (fun seed ->
      let m = Yali.Transforms.Pipeline.o3 (lower (dataset_program seed)) in
      let txt, txt2, _ = roundtrip m in
      txt = txt2)

let test_roundtrip_obfuscated =
  qtest ~count:20 "round-trip of ollvm'd modules (switch, globals)" (fun seed ->
      let m =
        Yali.Obfuscation.Ollvm.run (Yali.Rng.make seed)
          (lower (dataset_program seed))
      in
      let txt, txt2, _ = roundtrip m in
      txt = txt2)

let test_parse_phi () =
  let m =
    Ir.Parser.parse_module
      {|
define i32 @main() {
a:
  br label %c
c:
  %1 = phi i32 [ 0, %a ], [ %2, %c ]
  %2 = add i32 %1, 1
  %3 = icmp slt %2, 5
  br %3, label %c, label %d
d:
  ret %1
}
|}
  in
  Alcotest.(check int) "verifies" 0 (List.length (Ir.Verify.check_module m));
  let o = Ir.Interp.run m [] in
  Alcotest.(check bool) "loop counts to 4" true (o.exit_value = Ir.Interp.RInt 4L)

let test_parse_switch_and_global () =
  let m =
    Ir.Parser.parse_module
      {|
@g = global i32
define i32 @main() {
entry:
  %0 = load i32, @g
  switch %0, label %d [0: %z 1: %o]
z:
  ret 10
o:
  ret 11
d:
  ret 12
}
|}
  in
  Alcotest.(check bool) "global parsed" true (Ir.Irmod.find_global m "g" <> None);
  let o = Ir.Interp.run m [] in
  (* global starts at 0 -> case 0 *)
  Alcotest.(check bool) "dispatches on 0" true (o.exit_value = Ir.Interp.RInt 10L)

let test_parse_rejects_garbage () =
  Alcotest.(check bool) "unknown mnemonic rejected" true
    (match
       Ir.Parser.parse_module
         "define i32 @main() {\nentry:\n  %0 = frobnicate i32 1, 2\n  ret 0\n}"
     with
    | exception Ir.Parser.Parse_error _ -> true
    | _ -> false)

let test_parse_types () =
  Alcotest.(check bool) "ptr" true (Ir.Parser.parse_type "i32*" = Ir.Types.Ptr Ir.Types.I32);
  Alcotest.(check bool) "arr" true
    (Ir.Parser.parse_type "[4 x i64]" = Ir.Types.Arr (Ir.Types.I64, 4));
  Alcotest.(check bool) "ptr to arr" true
    (Ir.Parser.parse_type "[2 x i8]*" = Ir.Types.Ptr (Ir.Types.Arr (Ir.Types.I8, 2)))

let suite =
  [
    Alcotest.test_case "round-trip simple" `Quick test_roundtrip_simple;
    test_roundtrip_behaviour;
    test_roundtrip_optimized;
    test_roundtrip_obfuscated;
    Alcotest.test_case "parse phi loop" `Quick test_parse_phi;
    Alcotest.test_case "parse switch + global" `Quick test_parse_switch_and_global;
    Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "parse types" `Quick test_parse_types;
  ]
