(** Differential semantics tests: mini-C programs whose expected results are
    computed independently in OCaml, exercising evaluation order, coercions
    and corner cases of the C-like semantics. *)

open Helpers

let run_exit ?(input = []) src = exit_int (run_src ~input src)
let run_out ?(input = []) src = outputs (run_src ~input src)

let test_ternary_evaluates_once () =
  (* only one arm's side effect fires *)
  let src =
    "int main() { int c = read_int(); int x = c > 0 ? read_int() : read_int() * 10; print_int(x); return 0; }"
  in
  Alcotest.(check (list int)) "true arm" [ 7 ] (run_out ~input:[ 1L; 7L ] src);
  Alcotest.(check (list int)) "false arm" [ 70 ] (run_out ~input:[ 0L; 7L ] src)

let test_nested_short_circuit () =
  (* (a && b) || c : b's read must be skipped when a = 0, c's read skipped
     when a && b holds *)
  let src =
    "int main() { int a = read_int(); \
     if ((a > 0 && read_int() > 0) || read_int() > 5) { print_int(1); } else { print_int(0); } \
     return 0; }"
  in
  (* a=0: skip b, read c=9 > 5 -> 1, and only two reads consumed *)
  Alcotest.(check (list int)) "skip b" [ 1 ] (run_out ~input:[ 0L; 9L ] src);
  (* a=1, b=1: c never read -> 1 *)
  Alcotest.(check (list int)) "skip c" [ 1 ] (run_out ~input:[ 1L; 1L; 99L ] src);
  (* a=1, b=0, c=0: -> 0 *)
  Alcotest.(check (list int)) "all read" [ 0 ] (run_out ~input:[ 1L; 0L; 0L ] src)

let test_argument_coercion () =
  (* int argument to a double parameter, and back *)
  let src =
    "double half(double x) { return x / 2.0; }\n\
     int main() { int n = 9; double h = half(n); print_float(h); return 0; }"
  in
  let o = run_src src in
  Alcotest.(check bool) "9 / 2.0 = 4.5" true (approx (List.hd o.foutput) 4.5)

let test_float_to_int_truncation () =
  Alcotest.(check int) "3.9 truncates to 3" 3
    (run_exit "int main() { double x = 3.9; int y = x; return y; }");
  Alcotest.(check int) "-3.9 truncates toward zero" (-3)
    (run_exit "int main() { double x = 0.0 - 3.9; int y = x; return y; }")

let test_mixed_comparison () =
  Alcotest.(check int) "int < double promotes" 1
    (run_exit "int main() { int a = 3; double b = 3.5; return a < b; }")

let test_modulo_chain () =
  (* evaluation is left-to-right, same as C *)
  let expected = 1000 mod 7 * 3 mod 11 in
  Alcotest.(check int) "1000 % 7 * 3 % 11" expected
    (run_exit "int main() { return 1000 % 7 * 3 % 11; }")

let test_shift_precedence () =
  (* << binds looser than + in C: 1 << 2 + 1 = 1 << 3 = 8 *)
  Alcotest.(check int) "1 << 2 + 1" 8 (run_exit "int main() { return 1 << 2 + 1; }")

let test_deep_recursion () =
  Alcotest.(check int) "sum 1..300 recursively" 45150
    (run_exit
       "int s(int n) { if (n == 0) { return 0; } return n + s(n - 1); }\n\
        int main() { return s(300); }")

let test_mutual_recursion () =
  (* no forward declarations needed: call resolution is whole-program *)
  Alcotest.(check int) "is_even via mutual recursion" 1
    (run_exit
       "int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n\
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }\n\
        int main() { return is_even(10); }")

let test_array_aliasing_through_loop () =
  (* in-place reversal touching every cell twice *)
  let src =
    "int main() { int a[6]; for (int k = 0; k < 6; k = k + 1) { a[k] = k * k; }\n\
     int lo = 0; int hi = 5;\n\
     while (lo < hi) { int t = a[lo]; a[lo] = a[hi]; a[hi] = t; lo = lo + 1; hi = hi - 1; }\n\
     for (int k = 0; k < 6; k = k + 1) { print_int(a[k]); } return 0; }"
  in
  Alcotest.(check (list int)) "reversed squares" [ 25; 16; 9; 4; 1; 0 ]
    (run_out src)

let test_switch_on_negative () =
  let src k =
    Printf.sprintf
      "int main() { int x = %d; switch (x) { case -1: { return 10; } case 0: { return 20; } default: { return 30; } } return 0; }"
      k
  in
  Alcotest.(check int) "case -1" 10 (run_exit (src (-1)));
  Alcotest.(check int) "case 0" 20 (run_exit (src 0));
  Alcotest.(check int) "default" 30 (run_exit (src 5))

let test_do_while_runs_once () =
  Alcotest.(check (list int)) "body executes before test" [ 42 ]
    (run_out "int main() { int x = 42; do { print_int(x); } while (0 > 1); return 0; }")

let test_continue_in_while () =
  Alcotest.(check (list int)) "odd values skipped" [ 0; 2; 4 ]
    (run_out
       "int main() { int k = 0 - 1; while (k < 4) { k = k + 1; if (k % 2 == 1) { continue; } print_int(k); } return 0; }")

let test_break_only_inner_loop () =
  Alcotest.(check (list int)) "outer loop continues" [ 0; 1; 2 ]
    (run_out
       "int main() { for (int i = 0; i < 3; i = i + 1) { for (int j = 0; j < 10; j = j + 1) { if (j > i) { break; } } print_int(i); } return 0; }")

(* differential check against an OCaml oracle on a family of arithmetic
   expressions *)
let test_arith_oracle =
  qtest ~count:80 "random arithmetic agrees with an OCaml oracle" (fun seed ->
      let rng = Yali.Rng.make seed in
      let a = Yali.Rng.int_range rng (-1000) 1000 in
      let b = Yali.Rng.int_range rng 1 100 in
      let c = Yali.Rng.int_range rng (-50) 50 in
      let expected =
        let x = (a * 3) + c in
        let y = x / b in
        let z = x mod b in
        (y * 7) - (z lxor c) + (x land 255)
      in
      (* keep within i32 to avoid wrap differences with OCaml's 63-bit ints *)
      abs expected < 0x3FFFFFFF
      &&
      let src =
        Printf.sprintf
          "int main() { int a = %d; int b = %d; int c = %d;\n\
           int x = a * 3 + c; int y = x / b; int z = x %% b;\n\
           return y * 7 - (z ^ c) + (x & 255); }"
          a b c
      in
      run_exit src = expected
      || abs expected >= 0x40000000 (* skip overflowing cases *))

let suite =
  [
    Alcotest.test_case "ternary evaluates once" `Quick test_ternary_evaluates_once;
    Alcotest.test_case "nested short-circuit" `Quick test_nested_short_circuit;
    Alcotest.test_case "argument coercion" `Quick test_argument_coercion;
    Alcotest.test_case "float->int truncation" `Quick test_float_to_int_truncation;
    Alcotest.test_case "mixed comparison" `Quick test_mixed_comparison;
    Alcotest.test_case "modulo chain" `Quick test_modulo_chain;
    Alcotest.test_case "shift precedence" `Quick test_shift_precedence;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "array reversal" `Quick test_array_aliasing_through_loop;
    Alcotest.test_case "switch on negatives" `Quick test_switch_on_negative;
    Alcotest.test_case "do-while runs once" `Quick test_do_while_runs_once;
    Alcotest.test_case "continue in while" `Quick test_continue_in_while;
    Alcotest.test_case "break only inner loop" `Quick test_break_only_inner_loop;
    test_arith_oracle;
  ]
