(** Tests for natural-loop detection and loop-invariant code motion. *)

open Helpers
module Ir = Yali.Ir
module Tx = Yali.Transforms
module Op = Ir.Opcode

let loop_module () =
  Tx.Mem2reg.run
    (lower
       (parse
          "int main() { int n = read_int(); int a = read_int(); int s = 0;\n\
           for (int k = 0; k < n; k = k + 1) { s = s + (a * 3 + 7); }\n\
           print_int(s); return 0; }"))

let test_detects_loop () =
  let m = loop_module () in
  let f = Ir.Irmod.find_func_exn m "main" in
  let loops = Ir.Loops.of_func f in
  Alcotest.(check int) "one loop" 1 (Ir.Loops.loop_count loops);
  let l = List.hd loops.loops in
  Alcotest.(check bool) "header is the for-cond block" true
    (contains_substring l.header "for.cond");
  Alcotest.(check bool) "body has >= 2 blocks" true
    (Ir.Loops.SSet.cardinal l.body >= 2)

let test_no_loops_in_straightline () =
  let m = lower (parse "int main() { return 1 + read_int(); }") in
  let f = Ir.Irmod.find_func_exn m "main" in
  Alcotest.(check int) "no loops" 0 (Ir.Loops.loop_count (Ir.Loops.of_func f))

let test_nested_loops () =
  let m =
    lower
      (parse
         "int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) { for (int j = 0; j < 3; j = j + 1) { s = s + 1; } } return s; }")
  in
  let f = Ir.Irmod.find_func_exn m "main" in
  let loops = Ir.Loops.of_func f in
  Alcotest.(check int) "two loops" 2 (Ir.Loops.loop_count loops);
  (* innermost-first puts the smaller body first *)
  match Ir.Loops.innermost_first loops with
  | [ a; b ] ->
      Alcotest.(check bool) "inner smaller" true
        (Ir.Loops.SSet.cardinal a.body < Ir.Loops.SSet.cardinal b.body)
  | _ -> Alcotest.fail "expected two loops"

let test_depth_map () =
  let m =
    lower
      (parse
         "int main() { int s = 0; for (int i = 0; i < 2; i = i + 1) { for (int j = 0; j < 2; j = j + 1) { s = s + 1; } } return s; }")
  in
  let f = Ir.Irmod.find_func_exn m "main" in
  let loops = Ir.Loops.of_func f in
  let depths = Ir.Loops.depth_map loops in
  let max_depth = Ir.Loops.SMap.fold (fun _ d acc -> max d acc) depths 0 in
  Alcotest.(check int) "max nesting 2" 2 max_depth

(* -- licm ------------------------------------------------------------------ *)

let test_licm_hoists_invariant () =
  let m = loop_module () in
  let m' = Tx.Licm.run m in
  Yali.Ir.Verify.assert_ok m';
  (* a*3+7 is loop-invariant; after licm the dynamic cost must drop *)
  let input = [ 50L; 9L ] in
  let before = Ir.Interp.run m input in
  let after = Ir.Interp.run m' input in
  Alcotest.(check bool) "same behaviour" true
    (Ir.Interp.equal_behaviour before after);
  Alcotest.(check bool)
    (Printf.sprintf "cost drops (%d -> %d)" before.cost after.cost)
    true (after.cost < before.cost);
  (* the multiply now executes once, not 50 times *)
  let dyn_mul (o : Ir.Interp.outcome) = o.steps in
  Alcotest.(check bool) "fewer steps" true (dyn_mul after < dyn_mul before)

let test_licm_does_not_hoist_division () =
  (* division may trap; it must stay inside the guard *)
  let m =
    Tx.Mem2reg.run
      (lower
         (parse
            "int main() { int n = read_int(); int d = read_int(); int s = 0;\n\
             for (int k = 0; k < n; k = k + 1) { s = s + 100 / d; }\n\
             return s; }"))
  in
  let m' = Tx.Licm.run m in
  (* with n = 0 and d = 0 the division never runs: must not trap *)
  let o = Ir.Interp.run m' [ 0L; 0L ] in
  Alcotest.(check bool) "no trap on zero-trip loop" true
    (o.exit_value = Ir.Interp.RInt 0L)

let test_licm_preserves =
  qtest ~count:60 "licm preserves behaviour"
    (preserves_behaviour (fun m -> Tx.Licm.run (Tx.Mem2reg.run m)))

let test_licm_after_obfuscation =
  qtest ~count:20 "licm is sound on flattened code" (fun seed ->
      preserves_behaviour
        (fun m ->
          m
          |> Yali.Obfuscation.Fla.run (Yali.Rng.make seed)
          |> Tx.Mem2reg.run |> Tx.Licm.run)
        seed)

let suite =
  [
    Alcotest.test_case "detects a loop" `Quick test_detects_loop;
    Alcotest.test_case "no loops in straight-line" `Quick
      test_no_loops_in_straightline;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "depth map" `Quick test_depth_map;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "licm keeps division guarded" `Quick
      test_licm_does_not_hoist_division;
    test_licm_preserves;
    test_licm_after_obfuscation;
  ]


