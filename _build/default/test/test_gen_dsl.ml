(** Tests for the generator DSL underlying the synthetic corpus: input
    clamping, loop-shape equivalence, junk harmlessness. *)

open Helpers
module Rng = Yali.Rng
module Ast = Yali.Minic.Ast

(* read_clamped must keep any input in range *)
let test_read_clamped_bounds =
  qtest ~count:60 "read_clamped stays within [lo,hi]" (fun seed ->
      let lo = seed mod 5 and width = 1 + (seed mod 40) in
      let hi = lo + width in
      let prog : Ast.program =
        {
          pfuncs =
            [
              {
                fname = "main";
                fparams = [];
                fret = Ast.TInt;
                fbody =
                  [
                    Ast.Decl
                      (Ast.TInt, "x", Some (Yali.Dataset.Gen_dsl.read_clamped lo hi));
                    Ast.Expr (Ast.Call ("print_int", [ Ast.Var "x" ]));
                    Ast.Return (Some (Ast.IntLit 0));
                  ];
              };
            ];
        }
      in
      let m = lower prog in
      List.for_all
        (fun input ->
          match outputs (Yali.Ir.Interp.run m [ input ]) with
          | [ x ] -> x >= lo && x <= hi
          | _ -> false)
        [ 0L; 1L; -1L; 1000L; -1000L; Int64.of_int max_int; 7L ])

(* the three rendering choices of count_loop are observably identical *)
let test_count_loop_shapes_agree () =
  let body_src var = [ Yali.Dataset.Gen_dsl.print (Ast.Var var) ] in
  let outputs_of seed =
    let c = Yali.Dataset.Gen_dsl.ctx (Rng.make seed) in
    let prog : Ast.program =
      {
        pfuncs =
          [
            {
              fname = "main";
              fparams = [];
              fret = Ast.TInt;
              fbody =
                Yali.Dataset.Gen_dsl.count_loop c ~var:"k" ~lo:(Ast.IntLit 2)
                  ~hi:(Ast.IntLit 7) (body_src "k")
                @ [ Ast.Return (Some (Ast.IntLit 0)) ];
            };
          ];
      }
    in
    outputs (Yali.Ir.Interp.run (lower prog) [])
  in
  (* different seeds choose different loop shapes; all must print 2..6 *)
  for seed = 0 to 11 do
    Alcotest.(check (list int)) "2..6" [ 2; 3; 4; 5; 6 ] (outputs_of seed)
  done

let test_count_down_loop () =
  let c = Yali.Dataset.Gen_dsl.ctx (Rng.make 3) in
  let prog : Ast.program =
    {
      pfuncs =
        [
          {
            fname = "main";
            fparams = [];
            fret = Ast.TInt;
            fbody =
              Yali.Dataset.Gen_dsl.count_down_loop c ~var:"k" ~lo:(Ast.IntLit 0)
                ~hi:(Ast.IntLit 4)
                [ Yali.Dataset.Gen_dsl.print (Ast.Var "k") ]
              @ [ Ast.Return (Some (Ast.IntLit 0)) ];
          };
        ];
    }
  in
  Alcotest.(check (list int)) "3..0" [ 3; 2; 1; 0 ]
    (outputs (Yali.Ir.Interp.run (lower prog) []))

(* junk blocks always lower, verify and execute without observable output *)
let test_junk_is_harmless =
  qtest ~count:60 "junk blocks are observably inert" (fun seed ->
      let c = Yali.Dataset.Gen_dsl.ctx (Rng.make seed) in
      let junk = Yali.Dataset.Gen_dsl.junk_block c in
      let prog : Ast.program =
        {
          pfuncs =
            [
              {
                fname = "main";
                fparams = [];
                fret = Ast.TInt;
                fbody =
                  junk
                  @ [
                      Ast.Expr (Ast.Call ("print_int", [ Ast.IntLit 7 ]));
                      Ast.Return (Some (Ast.IntLit 0));
                    ];
              };
            ];
        }
      in
      let m = lower prog in
      Yali.Ir.Verify.check_module m = []
      && outputs (Yali.Ir.Interp.run m []) = [ 7 ])

(* straight-line junk melts away under O3: the program with junk optimizes
   to exactly the program without.  (Dead *loops* survive — we implement no
   loop-deletion pass, like many production -O pipelines without LTO.) *)
let rec has_loop (ss : Ast.stmt list) =
  List.exists
    (function
      | Ast.While _ | Ast.DoWhile _ | Ast.For _ -> true
      | Ast.If (_, t, e) -> has_loop t || has_loop e
      | Ast.Block b -> has_loop b
      | _ -> false)
    ss

let test_junk_melts_under_o3 =
  qtest ~count:30 "straight-line junk is dead code to the optimizer" (fun seed ->
      let c = Yali.Dataset.Gen_dsl.ctx (Rng.make seed) in
      let base : Ast.stmt list =
        [
          Ast.Expr (Ast.Call ("print_int", [ Ast.IntLit 7 ]));
          Ast.Return (Some (Ast.IntLit 0));
        ]
      in
      let prog body : Ast.program =
        { pfuncs = [ { fname = "main"; fparams = []; fret = Ast.TInt; fbody = body } ] }
      in
      let junk = Yali.Dataset.Gen_dsl.junk_block c in
      has_loop junk
      ||
      let n_with =
        Yali.Ir.Irmod.instr_count
          (Yali.Transforms.Pipeline.o3 (lower (prog (junk @ base))))
      in
      let n_without =
        Yali.Ir.Irmod.instr_count (Yali.Transforms.Pipeline.o3 (lower (prog base)))
      in
      n_with = n_without)

let test_name_salting () =
  (* identifiers vary between contexts but stay valid C identifiers *)
  let ident_ok s =
    String.length s > 0
    && (Yali.Minic.Lexer.is_ident_start s.[0])
    && String.for_all Yali.Minic.Lexer.is_ident_char s
  in
  for seed = 0 to 30 do
    let c = Yali.Dataset.Gen_dsl.ctx (Rng.make seed) in
    let n = Yali.Dataset.Gen_dsl.name c "counter" in
    Alcotest.(check bool) ("valid identifier: " ^ n) true (ident_ok n)
  done

let test_reorder_is_permutation () =
  let c = Yali.Dataset.Gen_dsl.ctx (Rng.make 9) in
  let ss = [ Ast.Break; Ast.Continue; Ast.Return None ] in
  let ss' = Yali.Dataset.Gen_dsl.reorder c ss in
  Alcotest.(check int) "same length" 3 (List.length ss');
  List.iter
    (fun s -> Alcotest.(check bool) "member" true (List.memq s ss'))
    ss

let suite =
  [
    test_read_clamped_bounds;
    Alcotest.test_case "count_loop shapes agree" `Quick test_count_loop_shapes_agree;
    Alcotest.test_case "count_down_loop" `Quick test_count_down_loop;
    test_junk_is_harmless;
    test_junk_melts_under_o3;
    Alcotest.test_case "name salting" `Quick test_name_salting;
    Alcotest.test_case "reorder permutes" `Quick test_reorder_is_permutation;
  ]
