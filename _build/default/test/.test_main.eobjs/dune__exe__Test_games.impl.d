test/test_games.ml: Alcotest Helpers List Printf Yali
