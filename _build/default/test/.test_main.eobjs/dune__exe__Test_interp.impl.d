test/test_interp.ml: Alcotest Helpers Int64 List Printf Yali
