test/test_antivirus.ml: Alcotest Hashtbl Helpers List Yali
