test/test_ml.ml: Alcotest Array Float Helpers List Yali
