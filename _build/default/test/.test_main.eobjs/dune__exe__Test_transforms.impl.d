test/test_transforms.ml: Alcotest Helpers List Printf Yali
