test/test_irparser.ml: Alcotest Helpers List Yali
