test/test_embeddings.ml: Alcotest Array Helpers List Option Yali
