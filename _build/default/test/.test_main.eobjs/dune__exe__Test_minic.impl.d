test/test_minic.ml: Alcotest Helpers List Yali
