test/test_loops.ml: Alcotest Helpers List Printf Yali
