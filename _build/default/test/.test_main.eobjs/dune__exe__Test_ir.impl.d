test/test_ir.ml: Alcotest Helpers List Yali
