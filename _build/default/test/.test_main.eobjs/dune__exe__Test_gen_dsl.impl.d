test/test_gen_dsl.ml: Alcotest Helpers Int64 List String Yali
