test/test_dataset.ml: Alcotest Array Helpers List Option Printf Yali
