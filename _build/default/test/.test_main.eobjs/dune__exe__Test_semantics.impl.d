test/test_semantics.ml: Alcotest Helpers List Printf Yali
