test/test_integration.ml: Alcotest Helpers List Printf Yali
