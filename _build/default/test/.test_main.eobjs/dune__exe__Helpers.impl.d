test/helpers.ml: Alcotest Float Int64 List QCheck QCheck_alcotest String Yali
