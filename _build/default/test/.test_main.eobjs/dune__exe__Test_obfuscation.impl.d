test/test_obfuscation.ml: Alcotest Helpers List Option Printf Yali
