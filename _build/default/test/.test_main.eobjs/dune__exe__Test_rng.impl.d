test/test_rng.ml: Alcotest Float Fun Hashtbl Helpers List Option Yali
