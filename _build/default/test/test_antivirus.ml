(** Focused tests for the antivirus ensemble and its n-gram machinery. *)

open Helpers
module G = Yali.Games
module Rng = Yali.Rng
module Ir = Yali.Ir

let test_ngrams_count () =
  let m = lower (parse "int main() { int a = 1; return a + 2; }") in
  let total = Ir.Irmod.instr_count m in
  let grams3 = G.Antivirus.opcode_ngrams ~n:3 m in
  Alcotest.(check int) "n-k+1 ngrams" (total - 2) (List.length grams3);
  let grams_huge = G.Antivirus.opcode_ngrams ~n:(total + 1) m in
  Alcotest.(check int) "too-long n yields none" 0 (List.length grams_huge)

let test_ngrams_deterministic () =
  let m = lower (dataset_program 12) in
  Alcotest.(check bool) "stable" true
    (G.Antivirus.opcode_ngrams ~n:4 m = G.Antivirus.opcode_ngrams ~n:4 m)

let corpus seed n =
  let rng = Rng.make seed in
  ( List.init n (fun _ -> lower (Yali.Dataset.Mirai.generate_malware (Rng.split rng))),
    List.init n (fun _ -> lower (Yali.Dataset.Mirai.generate_benign (Rng.split rng))) )

let test_build_has_scanners () =
  let malware, benign = corpus 3 8 in
  let av = G.Antivirus.build (Rng.make 1) ~malware ~benign in
  Alcotest.(check bool) "several engines" true
    (List.length av.scanners >= 4);
  List.iter
    (fun (s : G.Antivirus.scanner) ->
      Alcotest.(check bool)
        (s.sname ^ " learned signatures")
        true
        (Hashtbl.length s.signatures > 0))
    av.scanners

let test_signatures_exclude_benign_grams () =
  let malware, benign = corpus 5 8 in
  let av = G.Antivirus.build (Rng.make 2) ~malware ~benign in
  (* no signature may appear in the benign corpus it was trained against *)
  let benign_grams = Hashtbl.create 1024 in
  List.iter
    (fun (s : G.Antivirus.scanner) ->
      List.iter
        (fun m ->
          List.iter
            (fun g -> Hashtbl.replace benign_grams (s.n, g) ())
            (G.Antivirus.opcode_ngrams ~n:s.n m))
        benign;
      Hashtbl.iter
        (fun g () ->
          Alcotest.(check bool) "signature not benign" false
            (Hashtbl.mem benign_grams (s.n, g)))
        s.signatures)
    av.scanners

let test_matches_monotone_in_threshold () =
  let malware, benign = corpus 7 8 in
  let av = G.Antivirus.build (Rng.make 3) ~malware ~benign in
  let sample = lower (Yali.Dataset.Mirai.generate_malware (Rng.make 424242)) in
  List.iter
    (fun (s : G.Antivirus.scanner) ->
      (* family verdict implies generic verdict whenever thresholds are
         ordered, which build guarantees *)
      Alcotest.(check bool) "thresholds ordered" true
        (s.family_threshold >= s.generic_threshold);
      if G.Antivirus.scanner_is_mirai s sample then
        Alcotest.(check bool) "family => generic" true
          (G.Antivirus.scanner_is_malware s sample))
    av.scanners

let test_detections_bounded () =
  let malware, benign = corpus 9 6 in
  let av = G.Antivirus.build (Rng.make 4) ~malware ~benign in
  let sample = lower (Yali.Dataset.Mirai.generate_malware (Rng.make 5)) in
  let g, f = G.Antivirus.detections av sample in
  let n = List.length av.scanners in
  Alcotest.(check bool) "votes within ensemble size" true
    (g >= 0 && g <= n && f >= 0 && f <= n)

let test_best_accuracy_range =
  qtest ~count:5 "best_accuracy stays in [0,1]" (fun seed ->
      let malware, benign = corpus seed 5 in
      let av = G.Antivirus.build (Rng.make seed) ~malware ~benign in
      let challenges =
        List.mapi (fun i m -> (m, if i < 5 then 1 else 0)) (malware @ benign)
      in
      let a, b = G.Antivirus.best_accuracy av challenges in
      a >= 0.0 && a <= 1.0 && b >= 0.0 && b <= 1.0)

let suite =
  [
    Alcotest.test_case "ngram counts" `Quick test_ngrams_count;
    Alcotest.test_case "ngrams deterministic" `Quick test_ngrams_deterministic;
    Alcotest.test_case "ensemble builds" `Slow test_build_has_scanners;
    Alcotest.test_case "signatures exclude benign" `Slow
      test_signatures_exclude_benign_grams;
    Alcotest.test_case "family implies generic" `Slow
      test_matches_monotone_in_threshold;
    Alcotest.test_case "votes bounded" `Slow test_detections_bounded;
    test_best_accuracy_range;
  ]
