(** Tests for the mini-C frontend: lexer, parser, printer round-trips,
    frontend constant folding, lowering. *)

open Helpers
module Minic = Yali.Minic
module Ast = Minic.Ast

let test_lexer_tokens () =
  let toks = Minic.Lexer.tokenize "int x = 42; // comment\n x == 3" in
  Alcotest.(check int) "token count" 9 (List.length toks) (* incl. EOF *)

let test_lexer_operators () =
  let toks = Minic.Lexer.tokenize "&& || == != <= >= << >>" in
  Alcotest.(check int) "8 ops + eof" 9 (List.length toks)

let test_lexer_comments () =
  let toks = Minic.Lexer.tokenize "/* block \n comment */ 1 // line\n 2" in
  Alcotest.(check int) "two ints + eof" 3 (List.length toks)

let test_lexer_float () =
  match Minic.Lexer.tokenize "3.25" with
  | [ Minic.Lexer.FLOAT f; Minic.Lexer.EOF ] ->
      Alcotest.(check bool) "float value" true (approx f 3.25)
  | _ -> Alcotest.fail "expected one float"

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "lex error" true
    (match Minic.Lexer.tokenize "int $ x" with
    | exception Minic.Lexer.Lex_error _ -> true
    | _ -> false)

let test_parser_simple () =
  let p = parse "int main() { return 1 + 2 * 3; }" in
  Alcotest.(check int) "one function" 1 (List.length p.pfuncs);
  match (List.hd p.pfuncs).fbody with
  | [ Ast.Return (Some (Ast.Bin (Ast.Add, Ast.IntLit 1, Ast.Bin (Ast.Mul, Ast.IntLit 2, Ast.IntLit 3)))) ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parser_dangling_else () =
  let p = parse "int main() { if (1 < 2) { return 1; } else { return 2; } }" in
  match (List.hd p.pfuncs).fbody with
  | [ Ast.If (_, [ Ast.Return _ ], [ Ast.Return _ ]) ] -> ()
  | _ -> Alcotest.fail "if/else shape"

let test_parser_errors () =
  Alcotest.(check bool) "parse error raised" true
    (match parse "int main() { return 1 + ; }" with
    | exception Minic.Parser.Parse_error _ -> true
    | _ -> false)

let test_roundtrip_fixed () =
  let srcs =
    [
      "int main() { return 0; }";
      "int f(int a, int b) { return a % b; }\nint main() { return f(7, 3); }";
      "int main() { int a[8]; a[0] = 1; for (int k = 1; k < 8; k = k + 1) { a[k] = a[k-1] * 2; } return a[7]; }";
      "int main() { int x = read_int(); switch (x) { case 0: { print_int(1); break; } case 5: { print_int(2); break; } default: { print_int(3); } } return 0; }";
      "int main() { int x = 3; do { x = x - 1; } while (x > 0); return x; }";
      "double area(double r) { return 3.14159 * r * r; }\nint main() { print_float(area(2.0)); return 0; }";
    ]
  in
  List.iter
    (fun src ->
      let p1 = parse src in
      let p2 = parse (Minic.Pp.program_to_string p1) in
      Alcotest.(check bool) ("roundtrip: " ^ src) true (p1 = p2))
    srcs

let test_roundtrip_dataset =
  qtest ~count:80 "dataset programs round-trip through pp/parse" (fun seed ->
      let p = dataset_program seed in
      let printed = Minic.Pp.program_to_string p in
      let p2 = Minic.Parser.parse_program printed in
      (* compare by re-printing: the AST may differ in block nesting *)
      Minic.Pp.program_to_string p2 = printed)

let test_fold_expr () =
  let open Ast in
  Alcotest.(check bool) "2+3 folds" true
    (Minic.Lower.fold_expr (Bin (Add, IntLit 2, IntLit 3)) = IntLit 5);
  Alcotest.(check bool) "ternary on const folds" true
    (Minic.Lower.fold_expr (Ternary (IntLit 1, IntLit 7, IntLit 9)) = IntLit 7);
  Alcotest.(check bool) "div by zero not folded" true
    (match Minic.Lower.fold_expr (Bin (Div, IntLit 4, IntLit 0)) with
    | Bin (Div, _, _) -> true
    | _ -> false);
  Alcotest.(check bool) "vars untouched" true
    (Minic.Lower.fold_expr (Bin (Add, Var "x", IntLit 0)) = Bin (Add, Var "x", IntLit 0))

let test_lowering_constant_unfold_dissolves () =
  (* (40-13)+13 must reach the IR as the constant 40, like clang's frontend *)
  let m1 = lower (parse "int main() { return 40; }") in
  let m2 = lower (parse "int main() { return (40 - 13) + 13; }") in
  Alcotest.(check int) "same instruction count" (Yali.Ir.Irmod.instr_count m1)
    (Yali.Ir.Irmod.instr_count m2)

let test_lowering_o0_style () =
  (* -O0 lowering keeps variables in memory: expect allocas and loads *)
  let m = lower (parse "int main() { int a = 1; int b = a + 2; return b; }") in
  let ops = Yali.Ir.Irmod.opcodes m in
  let count op = List.length (List.filter (( = ) op) ops) in
  Alcotest.(check bool) "has allocas" true (count Yali.Ir.Opcode.Alloca >= 2);
  Alcotest.(check bool) "has loads" true (count Yali.Ir.Opcode.Load >= 2);
  Alcotest.(check bool) "no phis at -O0" true (count Yali.Ir.Opcode.Phi = 0)

let test_lowering_verifies =
  qtest ~count:80 "every dataset program lowers to verified IR" (fun seed ->
      let m = lower (dataset_program seed) in
      Yali.Ir.Verify.check_module m = [])

let test_lowering_runs =
  qtest ~count:50 "every dataset program terminates on fuzz input" (fun seed ->
      let m = lower (dataset_program seed) in
      let o = Yali.Ir.Interp.run ~fuel:4_000_000 m (fuzz_input seed) in
      o.steps > 0)

let test_lower_error_on_unbound () =
  Alcotest.(check bool) "unbound variable rejected" true
    (match lower (parse "int main() { return nope; }") with
    | exception Minic.Lower.Lower_error _ -> true
    | _ -> false)

let test_stmt_count () =
  let p = parse "int main() { int a = 1; if (a > 0) { a = 2; } return a; }" in
  Alcotest.(check bool) "counts nested statements" true
    (Ast.stmt_count (List.hd p.pfuncs).fbody >= 4)

let test_declared_vars () =
  let p = parse "int f(int a) { int b = 1; int c[3]; return a; }" in
  Alcotest.(check (list string)) "params + locals" [ "a"; "b"; "c" ]
    (Ast.declared_vars (List.hd p.pfuncs))

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer float" `Quick test_lexer_float;
    Alcotest.test_case "lexer rejects garbage" `Quick test_lexer_rejects_garbage;
    Alcotest.test_case "parser precedence" `Quick test_parser_simple;
    Alcotest.test_case "parser if/else" `Quick test_parser_dangling_else;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "round-trip fixed programs" `Quick test_roundtrip_fixed;
    test_roundtrip_dataset;
    Alcotest.test_case "frontend folding" `Quick test_fold_expr;
    Alcotest.test_case "constant unfolding dissolves" `Quick
      test_lowering_constant_unfold_dissolves;
    Alcotest.test_case "-O0 lowering style" `Quick test_lowering_o0_style;
    test_lowering_verifies;
    test_lowering_runs;
    Alcotest.test_case "unbound variable rejected" `Quick test_lower_error_on_unbound;
    Alcotest.test_case "stmt_count" `Quick test_stmt_count;
    Alcotest.test_case "declared_vars" `Quick test_declared_vars;
  ]
