(** Tests for the nine program embeddings. *)

open Helpers
module E = Yali.Embeddings
module Ir = Yali.Ir

let sample_module () =
  lower
    (parse
       "int f(int a) { return a * 2; }\n\
        int main() { int s = 0; for (int k = 0; k < 5; k = k + 1) { s = s + f(k); } print_int(s); return 0; }")

(* -- histogram ------------------------------------------------------------ *)

let test_histogram_dim () =
  Alcotest.(check int) "63 dimensions" 63 E.Histogram.dim;
  Alcotest.(check int) "matches module vector" 63
    (Array.length (E.Histogram.of_module (sample_module ())))

let test_histogram_counts () =
  let m = lower (parse "int main() { int a = read_int(); return a + a; }") in
  let h = E.Histogram.of_module m in
  let n op = h.(Ir.Opcode.index op) in
  Alcotest.(check bool) "one add" true (n Ir.Opcode.Add = 1.0);
  Alcotest.(check bool) "one call" true (n Ir.Opcode.Call = 1.0);
  Alcotest.(check bool) "one ret" true (n Ir.Opcode.Ret = 1.0);
  (* total = instruction count + terminators *)
  let total = Array.fold_left ( +. ) 0.0 h in
  Alcotest.(check bool) "total matches" true
    (int_of_float total = Ir.Irmod.instr_count m)

let test_histogram_normalized () =
  let h = E.Histogram.normalized_of_module (sample_module ()) in
  let total = Array.fold_left ( +. ) 0.0 h in
  Alcotest.(check bool) "sums to 1" true (approx ~eps:1e-9 total 1.0)

let test_euclidean_metric () =
  let a = [| 0.0; 3.0 |] and b = [| 4.0; 0.0 |] in
  Alcotest.(check bool) "3-4-5" true (approx (E.Histogram.euclidean a b) 5.0);
  Alcotest.(check bool) "identity" true (approx (E.Histogram.euclidean a a) 0.0);
  Alcotest.(check bool) "symmetry" true
    (approx (E.Histogram.euclidean a b) (E.Histogram.euclidean b a))

let test_histogram_invariant_under_renaming =
  qtest ~count:30 "histogram invariant under variable renaming" (fun seed ->
      let p = dataset_program seed in
      let tx = Option.get (Yali.Obfuscation.Source_tx.find "var_rename") in
      let p' = Yali.Obfuscation.Source_tx.apply_program tx (Yali.Rng.make seed) p in
      E.Histogram.of_module (lower p) = E.Histogram.of_module (lower p'))

(* -- milepost ------------------------------------------------------------- *)

let test_milepost_dim () =
  Alcotest.(check int) "56 features" 56 E.Milepost.dim;
  Alcotest.(check int) "vector length" 56
    (Array.length (E.Milepost.of_module (sample_module ())))

let test_milepost_counts_blocks () =
  let m = sample_module () in
  let v = E.Milepost.of_module m in
  let n_blocks =
    List.fold_left (fun acc (f : Ir.Func.t) -> acc + List.length f.blocks) 0 m.funcs
  in
  Alcotest.(check bool) "feature 0 is block count" true
    (int_of_float v.(0) = n_blocks)

(* -- ir2vec --------------------------------------------------------------- *)

let test_ir2vec_deterministic () =
  let m = sample_module () in
  Alcotest.(check bool) "same module, same vector" true
    (E.Ir2vec.of_module m = E.Ir2vec.of_module m)

let test_ir2vec_dim () =
  Alcotest.(check int) "configured dimension" E.Ir2vec.dim
    (Array.length (E.Ir2vec.of_module (sample_module ())))

let test_ir2vec_additive () =
  (* program vector = sum of function vectors *)
  let m = sample_module () in
  let total = E.Ir2vec.of_module m in
  let by_func =
    List.fold_left
      (fun acc f ->
        let fv = E.Ir2vec.of_func f in
        Array.mapi (fun i x -> x +. fv.(i)) acc)
      (Array.make E.Ir2vec.dim 0.0) m.funcs
  in
  Alcotest.(check bool) "additive composition" true
    (Array.for_all2 (fun a b -> approx ~eps:1e-9 a b) total by_func)

(* -- graphs --------------------------------------------------------------- *)

let test_cfg_graph_shape () =
  let m = sample_module () in
  let g = E.Graphs.cfg m in
  Alcotest.(check int) "one node per instruction+terminator"
    (Ir.Irmod.instr_count m) (E.Graph.node_count g);
  Alcotest.(check bool) "only control edges" true
    (List.for_all (fun (_, _, t) -> t = E.Graph.Control) g.edges)

let test_cdfg_adds_data_edges () =
  let m = sample_module () in
  let cfg = E.Graphs.cfg m and cdfg = E.Graphs.cdfg m in
  Alcotest.(check bool) "cdfg has more edges" true
    (E.Graph.edge_count cdfg > E.Graph.edge_count cfg);
  Alcotest.(check bool) "data edges present" true
    (List.exists (fun (_, _, t) -> t = E.Graph.Data) cdfg.edges)

let test_cdfg_plus_adds_call_edges () =
  let m = sample_module () in
  let g = E.Graphs.cdfg_plus m in
  Alcotest.(check bool) "call edge to callee" true
    (List.exists (fun (_, _, t) -> t = E.Graph.Call) g.edges);
  Alcotest.(check bool) "memory edges present" true
    (List.exists (fun (_, _, t) -> t = E.Graph.Memory) g.edges)

let test_compact_graphs_are_smaller () =
  let m = sample_module () in
  let full = E.Graphs.cfg m and compact = E.Graphs.cfg_compact m in
  Alcotest.(check bool) "block nodes fewer than instr nodes" true
    (E.Graph.node_count compact < E.Graph.node_count full);
  (* compact node features are per-block opcode histograms *)
  Alcotest.(check int) "feature dim 63" 63 compact.feat_dim

let test_compact_features_sum_to_block_sizes () =
  let m = sample_module () in
  let g = E.Graphs.cfg_compact m in
  let feat_total =
    Array.fold_left
      (fun acc row -> acc +. Array.fold_left ( +. ) 0.0 row)
      0.0 g.node_feats
  in
  Alcotest.(check bool) "histograms cover every instruction" true
    (int_of_float feat_total = Ir.Irmod.instr_count m)

let test_programl_value_nodes () =
  let m = sample_module () in
  let instr_nodes = Ir.Irmod.instr_count m in
  let g = E.Graphs.programl m in
  Alcotest.(check bool) "extra value nodes" true
    (E.Graph.node_count g > instr_nodes);
  Alcotest.(check int) "feature dim 64 (opcodes + is-value)" 64 g.feat_dim

let test_graph_to_flat_shape () =
  let g = E.Graphs.cfg (sample_module ()) in
  let v = E.Graph.to_flat g in
  Alcotest.(check int) "2d+4 summary" ((2 * g.feat_dim) + 4) (Array.length v)

(* -- registry ------------------------------------------------------------- *)

let test_registry_has_nine () =
  Alcotest.(check int) "nine embeddings (paper fig. 3)" 9
    (List.length E.Embedding.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (E.Embedding.find name <> None))
    [ "cfg"; "cfg_compact"; "cdfg"; "cdfg_compact"; "cdfg_plus"; "programl";
      "ir2vec"; "milepost"; "histogram" ]

(* -- inst2vec (extension) -------------------------------------------------- *)

let test_inst2vec_dim_and_determinism () =
  let m = sample_module () in
  Alcotest.(check int) "dimension" E.Inst2vec.dim
    (Array.length (E.Inst2vec.of_module m));
  Alcotest.(check bool) "deterministic" true
    (E.Inst2vec.of_module m = E.Inst2vec.of_module m)

let test_inst2vec_statement_sensitivity () =
  (* unlike the opcode histogram, inst2vec distinguishes statements with the
     same opcode but different operand shapes *)
  let m1 = lower (parse "int main() { int a = read_int(); return a + a; }") in
  let m2 = lower (parse "int main() { int a = read_int(); return a + 1; }") in
  Alcotest.(check bool) "var+var differs from var+const" true
    (E.Inst2vec.of_module m1 <> E.Inst2vec.of_module m2)

let test_inst2vec_not_in_paper_nine () =
  Alcotest.(check bool) "extension is outside Embedding.all" true
    (not (List.exists (fun (e : E.Embedding.t) -> e.name = "inst2vec") E.Embedding.all));
  Alcotest.(check string) "named" "inst2vec" E.Inst2vec.embedding.name

let test_inst2vec_classifies =
  qtest ~count:2 "inst2vec supports classification" (fun seed ->
      let rng = Yali.Rng.make (seed + 60) in
      let split =
        Yali.Dataset.Poj.make rng ~n_classes:6 ~train_per_class:10
          ~test_per_class:4
      in
      let r =
        Yali.Games.Arena.run_flat (Yali.Rng.make 3) ~n_classes:6
          E.Inst2vec.embedding Yali.Ml.Model.rf Yali.Games.Game.game0 split
      in
      r.accuracy > 0.5)

let test_registry_flatten_all =
  qtest ~count:10 "every embedding flattens every program" (fun seed ->
      let m = lower (dataset_program seed) in
      List.for_all
        (fun e -> Array.length (E.Embedding.to_flat e m) > 0)
        E.Embedding.all)

let suite =
  [
    Alcotest.test_case "histogram dim" `Quick test_histogram_dim;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram normalized" `Quick test_histogram_normalized;
    Alcotest.test_case "euclidean metric" `Quick test_euclidean_metric;
    test_histogram_invariant_under_renaming;
    Alcotest.test_case "milepost dim" `Quick test_milepost_dim;
    Alcotest.test_case "milepost block count" `Quick test_milepost_counts_blocks;
    Alcotest.test_case "ir2vec deterministic" `Quick test_ir2vec_deterministic;
    Alcotest.test_case "ir2vec dim" `Quick test_ir2vec_dim;
    Alcotest.test_case "ir2vec additive" `Quick test_ir2vec_additive;
    Alcotest.test_case "cfg graph shape" `Quick test_cfg_graph_shape;
    Alcotest.test_case "cdfg data edges" `Quick test_cdfg_adds_data_edges;
    Alcotest.test_case "cdfg+ call/mem edges" `Quick test_cdfg_plus_adds_call_edges;
    Alcotest.test_case "compact graphs smaller" `Quick test_compact_graphs_are_smaller;
    Alcotest.test_case "compact features total" `Quick
      test_compact_features_sum_to_block_sizes;
    Alcotest.test_case "programl value nodes" `Quick test_programl_value_nodes;
    Alcotest.test_case "graph flatten shape" `Quick test_graph_to_flat_shape;
    Alcotest.test_case "registry of nine" `Quick test_registry_has_nine;
    Alcotest.test_case "inst2vec dim + determinism" `Quick
      test_inst2vec_dim_and_determinism;
    Alcotest.test_case "inst2vec statement sensitivity" `Quick
      test_inst2vec_statement_sensitivity;
    Alcotest.test_case "inst2vec is an extension" `Quick
      test_inst2vec_not_in_paper_nine;
    test_inst2vec_classifies;
    test_registry_flatten_all;
  ]
