(** Tests for the IR substrate: opcodes, types, builder, verifier, CFG,
    dominance. *)

open Helpers
module Ir = Yali.Ir
module I = Ir.Instr
module T = Ir.Types
module V = Ir.Value
module B = Ir.Builder

let test_opcode_count () =
  Alcotest.(check int) "63 opcodes, like the paper's histogram" 63
    Ir.Opcode.count

let test_opcode_index_bijection () =
  List.iteri
    (fun k op -> Alcotest.(check int) (Ir.Opcode.to_string op) k (Ir.Opcode.index op))
    Ir.Opcode.all

let test_opcode_string_roundtrip () =
  List.iter
    (fun op ->
      match Ir.Opcode.of_string (Ir.Opcode.to_string op) with
      | Some op' -> Alcotest.(check bool) "roundtrip" true (op = op')
      | None -> Alcotest.fail "of_string failed")
    Ir.Opcode.all

let test_opcode_costs_positive () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Ir.Opcode.to_string op)
        true
        (Ir.Opcode.cost op >= 0))
    Ir.Opcode.all

let test_type_sizes () =
  Alcotest.(check int) "i32 one cell" 1 (T.size_in_cells T.I32);
  Alcotest.(check int) "array cells" 10 (T.size_in_cells (T.Arr (T.I32, 10)));
  Alcotest.(check int) "nested array" 12 (T.size_in_cells (T.Arr (T.Arr (T.I64, 3), 4)));
  Alcotest.(check int) "void is empty" 0 (T.size_in_cells T.Void)

let test_type_predicates () =
  Alcotest.(check bool) "i1 is integer" true (T.is_integer T.I1);
  Alcotest.(check bool) "f64 is float" true (T.is_float T.F64);
  Alcotest.(check bool) "ptr is pointer" true (T.is_pointer (T.Ptr T.I32));
  Alcotest.(check int) "width i32" 32 (T.width T.I32);
  Alcotest.(check bool) "deref" true (T.deref (T.Ptr T.I8) = T.I8)

(* -- builder -------------------------------------------------------------- *)

let build_simple () =
  (* f(x) = x + 1 *)
  let b = B.create ~name:"inc" ~param_tys:[ T.I32 ] ~ret:T.I32 in
  let entry = B.new_block b in
  B.switch_to b entry;
  let r = B.ibin b I.Add (B.param b 0) (V.i32 1) ~ty:T.I32 in
  B.ret b (Some r);
  B.finish b

let test_builder_simple () =
  let f = build_simple () in
  Alcotest.(check string) "name" "inc" f.Ir.Func.name;
  Alcotest.(check int) "one block" 1 (List.length f.blocks);
  Alcotest.(check int) "instrs" 2 (Ir.Func.instr_count f)

let test_builder_rejects_double_terminate () =
  let b = B.create ~name:"f" ~param_tys:[] ~ret:T.Void in
  let entry = B.new_block b in
  B.switch_to b entry;
  B.ret b None;
  Alcotest.check_raises "double terminate"
    (Invalid_argument "Builder.terminate: already terminated") (fun () ->
      B.ret b None)

let test_instr_operands_map () =
  let i = I.mk ~id:5 ~ty:T.I32 (I.Ibin (I.Add, V.Var 1, V.Var 2)) in
  Alcotest.(check int) "two operands" 2 (List.length (I.operands i));
  let i' = I.map_operands (fun _ -> V.i32 0) i in
  Alcotest.(check bool) "rewritten" true
    (List.for_all (fun v -> v = V.i32 0) (I.operands i'))

let test_icmp_negate_involution () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "negate involutive" true
        (I.icmp_negate (I.icmp_negate p) = p);
      Alcotest.(check bool) "swap involutive" true (I.icmp_swap (I.icmp_swap p) = p))
    [ I.Eq; I.Ne; I.Slt; I.Sle; I.Sgt; I.Sge; I.Ult; I.Ule; I.Ugt; I.Uge ]

let test_terminator_successors () =
  Alcotest.(check (list string)) "condbr" [ "a"; "b" ]
    (I.successors (I.CondBr (V.i1 true, "a", "b")));
  Alcotest.(check (list string)) "switch" [ "d"; "x"; "y" ]
    (I.successors (I.Switch (V.i32 0, "d", [ (1L, "x"); (2L, "y") ])));
  Alcotest.(check (list string)) "ret" [] (I.successors (I.Ret None))

(* -- verifier ------------------------------------------------------------- *)

let test_verifier_accepts_good () =
  let m = Ir.Irmod.make ~name:"m" [ build_simple () ] in
  Alcotest.(check int) "no errors" 0 (List.length (Ir.Verify.check_module m))

let test_verifier_catches_bad_branch () =
  let blk =
    Ir.Block.make ~label:"entry" ~instrs:[] ~term:(I.Br "nowhere")
  in
  let f = Ir.Func.make ~name:"f" ~params:[] ~ret:T.Void ~blocks:[ blk ] in
  let errs = Ir.Verify.check_func f in
  Alcotest.(check bool) "error reported" true (errs <> [])

let test_verifier_catches_undefined_use () =
  let blk =
    Ir.Block.make ~label:"entry"
      ~instrs:[ I.mk ~id:0 ~ty:T.I32 (I.Ibin (I.Add, V.Var 99, V.i32 1)) ]
      ~term:(I.Ret (Some (V.Var 0)))
  in
  let f = Ir.Func.make ~name:"f" ~params:[] ~ret:T.I32 ~blocks:[ blk ] in
  Alcotest.(check bool) "undefined use caught" true (Ir.Verify.check_func f <> [])

let test_verifier_catches_double_def () =
  let blk =
    Ir.Block.make ~label:"entry"
      ~instrs:
        [
          I.mk ~id:0 ~ty:T.I32 (I.Ibin (I.Add, V.i32 1, V.i32 1));
          I.mk ~id:0 ~ty:T.I32 (I.Ibin (I.Add, V.i32 2, V.i32 2));
        ]
      ~term:(I.Ret (Some (V.Var 0)))
  in
  let f = Ir.Func.make ~name:"f" ~params:[] ~ret:T.I32 ~blocks:[ blk ] in
  Alcotest.(check bool) "double def caught" true (Ir.Verify.check_func f <> [])

let test_verifier_catches_phi_mismatch () =
  let b1 = Ir.Block.make ~label:"a" ~instrs:[] ~term:(I.Br "b") in
  let b2 =
    Ir.Block.make ~label:"b"
      ~instrs:[ I.mk ~id:0 ~ty:T.I32 (I.Phi [ (V.i32 1, "wrong") ]) ]
      ~term:(I.Ret (Some (V.Var 0)))
  in
  let f = Ir.Func.make ~name:"f" ~params:[] ~ret:T.I32 ~blocks:[ b1; b2 ] in
  Alcotest.(check bool) "phi mismatch caught" true (Ir.Verify.check_func f <> [])

(* -- CFG and dominance ---------------------------------------------------- *)

let diamond () =
  (* entry -> (l, r) -> join *)
  let b = B.create ~name:"d" ~param_tys:[ T.I32 ] ~ret:T.I32 in
  let entry = B.new_block ~hint:"entry" b in
  let l = B.new_block ~hint:"l" b in
  let r = B.new_block ~hint:"r" b in
  let j = B.new_block ~hint:"j" b in
  B.switch_to b entry;
  let c = B.icmp b I.Slt (B.param b 0) (V.i32 0) in
  B.condbr b c l r;
  B.switch_to b l;
  B.br b j;
  B.switch_to b r;
  B.br b j;
  B.switch_to b j;
  B.ret b (Some (V.i32 0));
  (B.finish b, entry, l, r, j)

let test_cfg_edges () =
  let f, entry, l, r, j = diamond () in
  let g = Ir.Cfg.of_func f in
  Alcotest.(check (list string)) "entry succs" [ l; r ] (Ir.Cfg.successors g entry);
  Alcotest.(check int) "join preds" 2 (List.length (Ir.Cfg.predecessors g j));
  Alcotest.(check int) "edges" 4 (Ir.Cfg.edge_count g);
  Alcotest.(check bool) "acyclic" false (Ir.Cfg.has_cycle g)

let test_cfg_rpo () =
  let f, entry, _, _, j = diamond () in
  let g = Ir.Cfg.of_func f in
  let rpo = Ir.Cfg.reverse_postorder g in
  Alcotest.(check string) "entry first" entry (List.hd rpo);
  Alcotest.(check string) "join last" j (List.nth rpo 3)

let test_dominance_diamond () =
  let f, entry, l, r, j = diamond () in
  let g = Ir.Cfg.of_func f in
  let dom = Ir.Dominance.compute g in
  Alcotest.(check (option string)) "idom l" (Some entry) (Ir.Dominance.idom dom l);
  Alcotest.(check (option string)) "idom r" (Some entry) (Ir.Dominance.idom dom r);
  Alcotest.(check (option string)) "idom j" (Some entry) (Ir.Dominance.idom dom j);
  Alcotest.(check bool) "entry dominates all" true
    (Ir.Dominance.dominates dom entry j);
  Alcotest.(check bool) "l does not dominate j" false
    (Ir.Dominance.dominates dom l j);
  Alcotest.(check (list string)) "frontier of l" [ j ]
    (Ir.Dominance.frontier_of dom l)

let test_dominance_loop_self_frontier () =
  (* entry -> header <-> body; header in its own dominance frontier *)
  let b = B.create ~name:"loop" ~param_tys:[ T.I32 ] ~ret:T.I32 in
  let entry = B.new_block ~hint:"entry" b in
  let header = B.new_block ~hint:"h" b in
  let exit = B.new_block ~hint:"x" b in
  B.switch_to b entry;
  B.br b header;
  B.switch_to b header;
  let c = B.icmp b I.Slt (B.param b 0) (V.i32 10) in
  B.condbr b c header exit;
  B.switch_to b exit;
  B.ret b (Some (V.i32 0));
  let f = B.finish b in
  let dom = Ir.Dominance.compute (Ir.Cfg.of_func f) in
  Alcotest.(check bool) "header in own frontier" true
    (List.mem header (Ir.Dominance.frontier_of dom header))

(* -- pretty printer ------------------------------------------------------- *)

let test_pp_contains_essentials () =
  let f = build_simple () in
  let s = Ir.Pp.func_to_string f in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (contains_substring s needle))
    [ "define"; "@inc"; "add"; "ret" ]

let suite =
  [
    Alcotest.test_case "opcode count is 63" `Quick test_opcode_count;
    Alcotest.test_case "opcode index bijection" `Quick test_opcode_index_bijection;
    Alcotest.test_case "opcode string roundtrip" `Quick test_opcode_string_roundtrip;
    Alcotest.test_case "opcode costs nonneg" `Quick test_opcode_costs_positive;
    Alcotest.test_case "type sizes" `Quick test_type_sizes;
    Alcotest.test_case "type predicates" `Quick test_type_predicates;
    Alcotest.test_case "builder simple" `Quick test_builder_simple;
    Alcotest.test_case "builder rejects double terminate" `Quick
      test_builder_rejects_double_terminate;
    Alcotest.test_case "instr operands map" `Quick test_instr_operands_map;
    Alcotest.test_case "icmp negate/swap involutions" `Quick
      test_icmp_negate_involution;
    Alcotest.test_case "terminator successors" `Quick test_terminator_successors;
    Alcotest.test_case "verifier accepts good" `Quick test_verifier_accepts_good;
    Alcotest.test_case "verifier: bad branch" `Quick test_verifier_catches_bad_branch;
    Alcotest.test_case "verifier: undefined use" `Quick
      test_verifier_catches_undefined_use;
    Alcotest.test_case "verifier: double def" `Quick test_verifier_catches_double_def;
    Alcotest.test_case "verifier: phi mismatch" `Quick
      test_verifier_catches_phi_mismatch;
    Alcotest.test_case "cfg edges" `Quick test_cfg_edges;
    Alcotest.test_case "cfg rpo" `Quick test_cfg_rpo;
    Alcotest.test_case "dominance diamond" `Quick test_dominance_diamond;
    Alcotest.test_case "dominance self frontier" `Quick
      test_dominance_loop_self_frontier;
    Alcotest.test_case "pp essentials" `Quick test_pp_contains_essentials;
  ]
