(** Tests for the reference interpreter: arithmetic semantics, memory,
    control flow, intrinsics, traps and the cost model. *)

open Helpers
module Ir = Yali.Ir
module I = Ir.Instr
module T = Ir.Types

let check_exit expected src =
  Alcotest.(check int) src expected (exit_int (run_src src))

let check_output expected ?input src =
  Alcotest.(check (list int)) src expected (outputs (run_src ?input src))

let test_arith () =
  check_exit 7 "int main() { return 3 + 4; }";
  check_exit (-1) "int main() { return 3 - 4; }";
  check_exit 12 "int main() { return 3 * 4; }";
  check_exit 2 "int main() { int a = 9; return a / 4; }";
  check_exit 1 "int main() { int a = 9; return a % 4; }";
  (* C semantics: division truncates toward zero *)
  check_exit (-2) "int main() { int a = 0 - 9; return a / 4; }";
  check_exit (-1) "int main() { int a = 0 - 9; return a % 4; }"

let test_bitwise () =
  check_exit 4 "int main() { int a = 6; return a & 12; }";
  check_exit 14 "int main() { int a = 6; return a | 12; }";
  check_exit 10 "int main() { int a = 6; return a ^ 12; }";
  check_exit 24 "int main() { int a = 6; return a << 2; }";
  check_exit 1 "int main() { int a = 6; return a >> 2; }";
  check_exit (-7) "int main() { int a = 6; return ~a; }"

let test_i32_wraparound () =
  (* 2^31 - 1 + 1 wraps to -2^31 in 32-bit arithmetic *)
  check_exit (-2147483648)
    "int main() { int a = 2147483647; return a + 1; }"

let test_comparisons () =
  check_exit 1 "int main() { int a = 3; return a < 4; }";
  check_exit 0 "int main() { int a = 4; return a < 4; }";
  check_exit 1 "int main() { int a = 4; return a <= 4; }";
  check_exit 1 "int main() { int a = 5; return a != 4; }";
  check_exit 1 "int main() { int a = 4; return a == 4; }"

let test_short_circuit_effects () =
  (* the second read must not happen when the first operand decides *)
  check_output [ 1 ]
    ~input:[ 0L; 99L ]
    "int main() { int a = read_int(); if (a != 0 && read_int() > 50) { print_int(2); } else { print_int(1); } return 0; }";
  (* both reads happen when needed *)
  check_output [ 2 ]
    ~input:[ 1L; 99L ]
    "int main() { int a = read_int(); if (a != 0 && read_int() > 50) { print_int(2); } else { print_int(1); } return 0; }"

let test_ternary () =
  check_exit 10 "int main() { int a = 1; return a ? 10 : 20; }";
  check_exit 20 "int main() { int a = 0; return a ? 10 : 20; }"

let test_control_flow () =
  check_output [ 0; 1; 2 ]
    "int main() { for (int k = 0; k < 3; k = k + 1) { print_int(k); } return 0; }";
  check_output [ 3; 2; 1 ]
    "int main() { int k = 3; while (k > 0) { print_int(k); k = k - 1; } return 0; }";
  check_output [ 0 ]
    "int main() { int k = 0; do { print_int(k); k = k + 1; } while (k < 1); return 0; }"

let test_break_continue () =
  check_output [ 0; 1; 2 ]
    "int main() { for (int k = 0; k < 10; k = k + 1) { if (k == 3) { break; } print_int(k); } return 0; }";
  check_output [ 0; 2; 4 ]
    "int main() { for (int k = 0; k < 5; k = k + 1) { if (k % 2 == 1) { continue; } print_int(k); } return 0; }"

let test_switch () =
  let src k =
    Printf.sprintf
      "int main() { int x = %d; switch (x) { case 1: { return 10; } case 2: { return 20; } default: { return 30; } } return 0; }"
      k
  in
  Alcotest.(check int) "case 1" 10 (exit_int (run_src (src 1)));
  Alcotest.(check int) "case 2" 20 (exit_int (run_src (src 2)));
  Alcotest.(check int) "default" 30 (exit_int (run_src (src 7)))

let test_arrays () =
  check_exit 55
    "int main() { int a[10]; for (int k = 0; k < 10; k = k + 1) { a[k] = k + 1; } int s = 0; for (int k = 0; k < 10; k = k + 1) { s = s + a[k]; } return s; }";
  (* arrays are zero-initialised *)
  check_exit 0 "int main() { int a[5]; return a[3]; }"

let test_functions_and_recursion () =
  check_exit 120
    "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(5); }";
  check_exit 8
    "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } int main() { return fib(6); }"

let test_floats () =
  let o = run_src "int main() { double x = 1.5; double y = 2.5; print_float(x * y); return 0; }" in
  Alcotest.(check int) "one float out" 1 (List.length o.foutput);
  Alcotest.(check bool) "value" true (approx (List.hd o.foutput) 3.75)

let test_intrinsics () =
  check_exit 5 "int main() { int a = 0 - 5; return abs(a); }";
  check_exit 3 "int main() { return min(7, 3); }";
  check_exit 7 "int main() { return max(7, 3); }"

let test_input_exhaustion () =
  (* reads past the end of input return 0 rather than trapping *)
  Alcotest.(check int) "read on empty" 0
    (exit_int (run_src ~input:[] "int main() { return read_int(); }"))

let test_div_by_zero_traps () =
  Alcotest.check_raises "sdiv 0"
    (Ir.Interp.Trap "division by zero")
    (fun () -> ignore (run_src "int main() { int z = 0; return 4 / z; }"))

let test_oob_store_traps () =
  (* the interpreter's bump allocator bounds every frame: a store past the
     allocation frontier traps rather than corrupting memory *)
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:T.I32 in
  let entry = Ir.Builder.new_block b in
  Ir.Builder.switch_to b entry;
  let p = Ir.Builder.alloca b T.I32 in
  let far = Ir.Builder.gep b ~ty:(T.Ptr T.I32) p [ Ir.Value.i32 999999 ] in
  Ir.Builder.store b (Ir.Value.i32 1) far;
  Ir.Builder.ret b (Some (Ir.Value.i32 0));
  let m = Ir.Irmod.make ~name:"m" [ Ir.Builder.finish b ] in
  Alcotest.(check bool) "traps" true
    (match Ir.Interp.run m [] with
    | exception Ir.Interp.Trap _ -> true
    | _ -> false)

let test_unknown_callee_traps () =
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:T.I32 in
  let entry = Ir.Builder.new_block b in
  Ir.Builder.switch_to b entry;
  let r = Ir.Builder.call b ~ty:T.I32 "no_such_fn" [] in
  Ir.Builder.ret b (Some r);
  let m = Ir.Irmod.make ~name:"m" [ Ir.Builder.finish b ] in
  Alcotest.(check bool) "traps" true
    (match Ir.Interp.run m [] with
    | exception Ir.Interp.Trap _ -> true
    | _ -> false)

let test_unreachable_traps () =
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:T.I32 in
  let entry = Ir.Builder.new_block b in
  Ir.Builder.switch_to b entry;
  Ir.Builder.terminate b Ir.Instr.Unreachable;
  let m = Ir.Irmod.make ~name:"m" [ Ir.Builder.finish b ] in
  Alcotest.check_raises "unreachable" (Ir.Interp.Trap "executed unreachable")
    (fun () -> ignore (Ir.Interp.run m []))

let test_out_of_fuel () =
  let m = lower (parse "int main() { while (1 == 1) { } return 0; }") in
  Alcotest.check_raises "infinite loop" Ir.Interp.Out_of_fuel (fun () ->
      ignore (Ir.Interp.run ~fuel:10_000 m []))

let test_steps_and_cost_positive () =
  let o = run_src "int main() { int s = 0; for (int k = 0; k < 10; k = k + 1) { s = s + k; } return s; }" in
  Alcotest.(check bool) "steps counted" true (o.steps > 10);
  Alcotest.(check bool) "cost counted" true (o.cost >= o.steps)

let test_globals () =
  let g = { Ir.Irmod.gname = "g"; gty = T.I32; ginit = [| 41L |] } in
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:T.I32 in
  let entry = Ir.Builder.new_block b in
  Ir.Builder.switch_to b entry;
  let x = Ir.Builder.load b ~ty:T.I32 (Ir.Value.Global "g") in
  let y = Ir.Builder.ibin b I.Add x (Ir.Value.i32 1) ~ty:T.I32 in
  Ir.Builder.store b y (Ir.Value.Global "g");
  let z = Ir.Builder.load b ~ty:T.I32 (Ir.Value.Global "g") in
  Ir.Builder.ret b (Some z);
  let m = Ir.Irmod.make ~globals:[ g ] ~name:"m" [ Ir.Builder.finish b ] in
  let o = Ir.Interp.run m [] in
  Alcotest.(check int) "global readback" 42
    (match o.exit_value with Ir.Interp.RInt n -> Int64.to_int n | _ -> -1)

let test_behaviour_equality () =
  let a = run_src "int main() { print_int(1); return 2; }" in
  let b = run_src "int main() { print_int(1); return 2; }" in
  let c = run_src "int main() { print_int(1); return 3; }" in
  Alcotest.(check bool) "equal" true (Ir.Interp.equal_behaviour a b);
  Alcotest.(check bool) "different exit" false (Ir.Interp.equal_behaviour a c)

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_arith;
    Alcotest.test_case "bitwise" `Quick test_bitwise;
    Alcotest.test_case "i32 wraparound" `Quick test_i32_wraparound;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "short-circuit effects" `Quick test_short_circuit_effects;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "switch" `Quick test_switch;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "functions and recursion" `Quick
      test_functions_and_recursion;
    Alcotest.test_case "floats" `Quick test_floats;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "input exhaustion" `Quick test_input_exhaustion;
    Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
    Alcotest.test_case "OOB store traps" `Quick test_oob_store_traps;
    Alcotest.test_case "unknown callee traps" `Quick test_unknown_callee_traps;
    Alcotest.test_case "unreachable traps" `Quick test_unreachable_traps;
    Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
    Alcotest.test_case "steps and cost" `Quick test_steps_and_cost_positive;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "behaviour equality" `Quick test_behaviour_equality;
  ]
