(** Shared helpers for the test suites. *)

module Rng = Yali.Rng
module Ir = Yali.Ir
module Minic = Yali.Minic

let parse = Yali.parse
let lower = Yali.lower

(** Compile a source snippet and run it. *)
let run_src ?(input = []) (src : string) : Ir.Interp.outcome =
  Ir.Interp.run (lower (parse src)) input

(** Integer outputs of a run. *)
let outputs (o : Ir.Interp.outcome) : int list =
  List.map Int64.to_int o.output

let exit_int (o : Ir.Interp.outcome) : int =
  match o.exit_value with
  | Ir.Interp.RInt n -> Int64.to_int n
  | _ -> Alcotest.fail "expected integer exit value"

(** A deterministic input stream for fuzz runs. *)
let fuzz_input (seed : int) : int64 list =
  let rng = Rng.make (seed * 77 + 13) in
  List.init 48 (fun _ -> Int64.of_int (Rng.int_range rng (-500) 500))

(** Draw a dataset program deterministically from a seed: problem [seed mod
    104], sample variation from the rest of the seed.  Gives qcheck
    properties a rich supply of realistic programs. *)
let dataset_program (seed : int) : Minic.Ast.program =
  let seed = abs seed in
  let problem = Yali.Dataset.Genprog.nth (seed mod Yali.Dataset.Genprog.count) in
  problem.generate (Rng.make (seed / 104))

(** Check that a module transformation preserves observable behaviour on the
    program drawn from [seed], using that seed's fuzz input. *)
let preserves_behaviour ?(fuel = 4_000_000)
    (tx : Ir.Irmod.t -> Ir.Irmod.t) (seed : int) : bool =
  let m = lower (dataset_program seed) in
  let input = fuzz_input seed in
  let base = Ir.Interp.run ~fuel m input in
  let m' = tx m in
  (match Ir.Verify.check_module m' with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "transformed module fails verification: %a"
        Ir.Verify.pp_error e);
  let o = Ir.Interp.run ~fuel:(fuel * 8) m' input in
  Ir.Interp.equal_behaviour base o

(** Same, for source-to-source transformations. *)
let source_preserves_behaviour ?(fuel = 4_000_000)
    (tx : Rng.t -> Minic.Ast.program -> Minic.Ast.program) (seed : int) : bool
    =
  let p = dataset_program seed in
  let input = fuzz_input seed in
  let base = Ir.Interp.run ~fuel (lower p) input in
  let p' = tx (Rng.make seed) p in
  let o = Ir.Interp.run ~fuel:(fuel * 8) (lower p') input in
  Ir.Interp.equal_behaviour base o

let qtest ?(count = 60) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.small_int prop)

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let contains_substring (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
