#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json files and emit a markdown report.

Usage: bench_diff.py PREVIOUS_DIR CURRENT_DIR

CI calls this from the bench-trajectory job: PREVIOUS_DIR is the cached
snapshot of the last run's numbers (may be empty on the first run or after
a cache eviction), CURRENT_DIR holds the artifacts just produced.  The
report goes to stdout; the workflow tees it into $GITHUB_STEP_SUMMARY and
into the consolidated bench-trajectory artifact.

Only the Python standard library is used.  Unknown JSON shapes are fine:
every numeric leaf is flattened to a dotted path and diffed, and a small
allowlist of suffixes marks which metrics are throughput-like (higher is
better) versus latency-like (lower is better) so the arrows point the
right way.
"""

import json
import os
import sys

# Suffix → direction. +1 means higher is better (throughput), -1 means
# lower is better (seconds, latency, memory).  Paths whose leaf matches no
# suffix are reported without a verdict arrow.
DIRECTIONS = [
    ("_per_s", +1),
    ("per_sec", +1),
    ("throughput", +1),
    ("speedup", +1),
    ("accuracy", +1),
    # fig5 per-model entries (bench fig5 --json) and the nn gate's
    # throughput/speedup fields otherwise fall through to the generic
    # suffixes above
    ("accuracy_mean", +1),
    ("accuracy_std", -1),
    ("evasion", +1),
    ("evasion_rate", +1),
    ("front_points", +1),
    ("cost_multiplier", -1),
    ("_seconds", -1),
    ("seconds", -1),
    ("_ms", -1),
    ("_us", -1),
    ("latency", -1),
    ("rss_mb", -1),
    ("_mib", -1),
    ("bytes", -1),
]

# Relative change below this is reported as "~" (noise floor for shared CI
# runners; quick-mode runs jitter well past a few percent).
NOISE = 0.05


def flatten(obj, prefix=""):
    """Yield (dotted_path, number) for every numeric leaf in a JSON value.

    List items that all carry a unique string "name" field are keyed by that
    name rather than their index, so a metric keeps its identity when a
    section gains, loses, or reorders entries between runs (quick-mode
    emitters may drop empty sections entirely)."""
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        yield prefix, float(obj)
    elif isinstance(obj, dict):
        for k in sorted(obj):
            yield from flatten(obj[k], f"{prefix}.{k}" if prefix else str(k))
    elif isinstance(obj, list):
        names = [v.get("name") if isinstance(v, dict) else None for v in obj]
        by_name = (
            len(obj) > 0
            and all(isinstance(n, str) for n in names)
            and len(set(names)) == len(names)
        )
        for i, v in enumerate(obj):
            key = names[i] if by_name else i
            yield from flatten(v, f"{prefix}[{key}]")


def load_dir(path):
    """Map 'BENCH_x.json:dotted.path' → value for every file in path."""
    out = {}
    if not os.path.isdir(path):
        return out
    for name in sorted(os.listdir(path)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(path, name)) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"<!-- skipped {name}: {e} -->", file=sys.stderr)
            continue
        stem = name[len("BENCH_") : -len(".json")]
        for key, val in flatten(data):
            out[f"{stem}:{key}"] = val
    return out


def direction(path):
    leaf = path.rsplit(".", 1)[-1].rsplit(":", 1)[-1].lower()
    for suffix, sign in DIRECTIONS:
        if leaf.endswith(suffix):
            return sign
    return 0


def fmt(v):
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.4g}"


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    prev = load_dir(sys.argv[1])
    cur = load_dir(sys.argv[2])

    print("## Bench trajectory")
    print()
    if not cur:
        print("No `BENCH_*.json` files found in the current run.")
        return 0
    if not prev:
        print(f"First recorded run ({len(cur)} metrics); no baseline to diff.")
        print()

    rows = []
    regressions = 0
    for key in sorted(cur):
        now = cur[key]
        before = prev.get(key)
        if before is None:
            rows.append((key, "—", fmt(now), "new"))
            continue
        delta = now - before
        rel = delta / abs(before) if before else (0.0 if delta == 0 else float("inf"))
        sign = direction(key)
        if abs(rel) < NOISE:
            verdict = "~"
        elif sign == 0:
            verdict = f"{rel:+.1%}"
        elif rel * sign > 0:
            verdict = f"▲ {rel:+.1%}"
        else:
            verdict = f"▼ {rel:+.1%}"
            regressions += 1
        rows.append((key, fmt(before), fmt(now), verdict))
    for key in sorted(prev):
        if key not in cur:
            rows.append((key, fmt(prev[key]), "—", "gone"))

    print("| metric | previous | current | change |")
    print("|---|---:|---:|---|")
    for key, before, now, verdict in rows:
        print(f"| `{key}` | {before} | {now} | {verdict} |")
    print()
    if prev:
        print(
            f"{regressions} metric(s) moved the wrong way beyond the "
            f"{NOISE:.0%} noise floor (informational; quick-mode CI numbers "
            "are noisy — EXPERIMENTS.md holds the reference runs)."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
