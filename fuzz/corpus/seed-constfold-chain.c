int calc0(int p1, int p2) {
  return 1 - p1;
}

int main() {
  int y11 = 0;
  y11 = abs(calc0(0, 0));
  print_int(y11);
}
