int walk4(int n5, int a6) {
  if (1) {
  }
  return a6 + (0 && a6);
}

int main() {
}
