int main() {
  int in7 = 0;
  int x8 = 0;
  in7 = (read_int() && 0) + (x8 ? 0 : 0);
  print_int(in7);
}
