(** The figure harness: regenerates every table and figure of the paper's
    evaluation (Figures 5-16) on the synthetic corpus, plus a Bechamel
    micro-benchmark suite for the framework's own moving parts.

    Usage:
      dune exec bench/main.exe                 # all figures
      dune exec bench/main.exe -- fig8 fig13   # selected figures
      dune exec bench/main.exe -- --quick all  # smaller workloads
      dune exec bench/main.exe -- micro        # bechamel suite
      dune exec bench/main.exe -- kernels      # Fmat vs pre-rewrite kernels
      dune exec bench/main.exe -- interp       # VM vs reference interpreter
      dune exec bench/main.exe -- native       # native (ocamlopt+Dynlink)
                                               #   tier vs VM: compile time,
                                               #   amortization break-even,
                                               #   MIPS -> BENCH_native.json
      dune exec bench/main.exe -- serve        # classification daemon under
                                               #   load -> BENCH_serve.json
      dune exec bench/main.exe -- corpus       # paper-scale streaming corpus
                                               #   + out-of-core training under
                                               #   an RSS cap (--rss-cap-mb N,
                                               #   default 2048); --quick drops
                                               #   104x500 to 104x50
                                               #   -> BENCH_corpus.json
      dune exec bench/main.exe -- nn           # kernelized minibatch neural
                                               #   trainers vs the frozen
                                               #   naive reference: speedup
                                               #   gate + bit-identity
                                               #   -> BENCH_nn.json

    Execution-runtime knobs (lib/exec):
      --engine vm|ref|native (or --engine=E)   # which execution engine the
                                               #   figures run on (lib/vm
                                               #   switchboard; default vm,
                                               #   outcomes are bit-identical)
      --jobs N (or --jobs=N, or YALI_JOBS)     # worker domains; default
                                               #   Domain.recommended_domain_count
      --telemetry out.json (or --telemetry=F)  # dump the runtime's JSON report:
                                               #   tasks, steals, cache hit
                                               #   rates, per-phase wall time
      --json BENCH_quick.json (or --json=F)    # machine-readable run summary
                                               #   (per-target wall seconds);
                                               #   CI uploads these as the
                                               #   perf-trajectory artifact
    Results are bit-identical at any --jobs setting: per-task RNG streams
    are pre-derived and the caches only memoise pure functions.

    Workloads are scaled down from the paper's (which take ~19 days); the
    shapes — who wins, by what factor, where the crossovers are — are the
    reproduction target.  See EXPERIMENTS.md for the recorded outputs. *)

module Rng = Yali.Rng
module E = Yali.Embeddings
module Ml = Yali.Ml
module G = Yali.Games
module Ob = Yali.Obfuscation
module Ir = Yali.Ir

let quick = ref false
let rounds_override = ref None

let scale n = if !quick then max 1 (n / 2) else n
let rounds default = Option.value !rounds_override ~default

let header fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') s (String.make 78 '='))
    fmt

let mean_std xs = (Ml.Metrics.mean xs, Ml.Metrics.stddev xs)

(* ------------------------------------------------------------------ *)
(* shared machinery                                                    *)
(* ------------------------------------------------------------------ *)

(* materialize (embedded) datasets once per setup and reuse across models;
   embeddings land directly in flat feature matrices — no intermediate
   row-array dataset is ever built *)
type prepared = {
  xs_train : Ml.Fmat.t;
  ys_train : int array;
  xs_test : Ml.Fmat.t;
  ys_test : int array;
}

let prepare (rng : Rng.t) (setup : G.Game.setup) (embedding : E.Embedding.t)
    (split : Yali.Dataset.Poj.split) : prepared =
  let train_mods, test_mods = G.Arena.build_modules rng setup split in
  let embed mods =
    Ml.Fmat.parallel_of_fn ~n:(Array.length mods) (fun i ->
        E.Embedding.to_flat embedding (fst mods.(i)))
  in
  {
    xs_train = embed train_mods;
    ys_train = Array.map snd train_mods;
    xs_test = embed test_mods;
    ys_test = Array.map snd test_mods;
  }

let eval_model (rng : Rng.t) ~(n_classes : int) (model : Ml.Model.flat)
    (p : prepared) : float * float * int =
  let trained = model.ftrain rng ~n_classes p.xs_train p.ys_train in
  let pred = trained.predict_batch p.xs_test in
  let acc = Ml.Metrics.accuracy p.ys_test pred in
  let f1 =
    Ml.Metrics.macro_f1 (Ml.Metrics.confusion ~n_classes p.ys_test pred)
  in
  (acc, f1, trained.size_bytes)

let evaders_of_fig8 () : Ob.Evader.t list =
  [ Ob.Evader.o3; Ob.Evader.ollvm; Ob.Evader.bcf; Ob.Evader.fla;
    Ob.Evader.sub; Ob.Evader.rs; Ob.Evader.mcmc; Ob.Evader.drlsg ]

(* ------------------------------------------------------------------ *)
(* Figure 5: embeddings on Game0, 32 classes, neural model             *)
(* ------------------------------------------------------------------ *)

(* per-embedding fig5 results for the --json summary: name, accuracy
   mean/std, and train throughput (training rows per wall second through
   the batched neural trainer, mean over rounds) *)
let fig5_results : (string * float * float * float) list ref = ref []

let fig5 () =
  header "Figure 5: program embeddings on Game0 (32 classes, dgcnn/cnn)";
  let n_classes = 32 in
  let r = rounds 2 in
  Printf.printf "rounds=%d, train/class=%d, test/class=%d\n\n" r (scale 10)
    (scale 4);
  Printf.printf "%-14s %8s %8s %12s\n" "embedding" "mean" "std" "train-rows/s";
  List.iter
    (fun (e : E.Embedding.t) ->
      let results =
        List.init r (fun round ->
            let rng = Rng.make (1000 + round) in
            let split =
              Yali.Dataset.Poj.make ~shuffle_classes:true rng ~n_classes
                ~train_per_class:(scale 10) ~test_per_class:(scale 4)
            in
            G.Arena.run_neural (Rng.split rng) ~n_classes e G.Game.game0 split)
      in
      let accs = List.map (fun (res : G.Arena.result) -> res.accuracy) results in
      let rows_s =
        List.map
          (fun (res : G.Arena.result) ->
            float_of_int res.n_train /. Float.max res.train_seconds 1e-9)
          results
      in
      let m, s = mean_std accs in
      let tput = Ml.Metrics.mean rows_s in
      fig5_results := (e.name, m, s, tput) :: !fig5_results;
      Printf.printf "%-14s %8.4f %8.4f %12.1f\n%!" e.name m s tput)
    E.Embedding.all

(* ------------------------------------------------------------------ *)
(* Figure 6: embeddings on Games 1-3 (ollvm evader, O3 normalizer)     *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Figure 6: embeddings on Games 1, 2, 3 (32 classes, ollvm evader)";
  let n_classes = 32 in
  let r = rounds 2 in
  let games =
    [
      ("game1", G.Game.game1 Ob.Evader.ollvm);
      ("game2", G.Game.game2 Ob.Evader.ollvm);
      ("game3", G.Game.game3 Ob.Evader.ollvm);
    ]
  in
  (* materialise the (expensively evaded) modules once per game and round,
     then share them across all nine embeddings *)
  let prepared =
    List.map
      (fun (gname, setup) ->
        ( gname,
          List.init r (fun round ->
              let rng = Rng.make (2000 + round) in
              let split =
                Yali.Dataset.Poj.make ~shuffle_classes:true rng ~n_classes
                  ~train_per_class:(scale 8) ~test_per_class:(scale 3)
              in
              let rng' = Rng.split rng in
              (G.Arena.build_modules (Rng.split rng') setup split, rng')) ))
      games
  in
  let eval_cell (e : E.Embedding.t) ((train_mods, test_mods), rng) =
    let rng = Rng.copy rng in
    if E.Embedding.is_flat e then begin
      let embed mods =
        Ml.Fmat.parallel_of_fn ~n:(Array.length mods) (fun i ->
            E.Embedding.to_flat e (fst mods.(i)))
      in
      let xs = embed train_mods in
      let ys = Array.map snd train_mods in
      let trained = Ml.Model.cnn.ftrain (Rng.split rng) ~n_classes xs ys in
      Ml.Metrics.accuracy (Array.map snd test_mods)
        (trained.predict_batch (embed test_mods))
    end
    else begin
      let embed m = E.Embedding.to_graph e m in
      let graphs = Array.map (fun (m, _) -> embed m) train_mods in
      let ys = Array.map snd train_mods in
      let feat_dim =
        if Array.length graphs = 0 then 1 else graphs.(0).E.Graph.feat_dim
      in
      let trained =
        Ml.Model.dgcnn.gtrain (Rng.split rng) ~n_classes ~feat_dim graphs ys
      in
      Ml.Metrics.accuracy (Array.map snd test_mods)
        (Array.map (fun (m, _) -> trained.gpredict (embed m)) test_mods)
    end
  in
  Printf.printf "%-14s %10s %10s %10s\n" "embedding" "game1" "game2" "game3";
  List.iter
    (fun (e : E.Embedding.t) ->
      Printf.printf "%-14s" e.name;
      List.iter
        (fun (_, per_round) ->
          let accs = List.map (eval_cell e) per_round in
          Printf.printf " %10.4f%!" (fst (mean_std accs)))
        prepared;
      print_newline ())
    E.Embedding.all

(* ------------------------------------------------------------------ *)
(* Figure 7: six models on Game0, 104 classes, histogram; + memory     *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Figure 7: models on Game0 (104 classes, histogram embedding)";
  let n_classes = 104 in
  let r = rounds 3 in
  Printf.printf "rounds=%d, train/class=%d, test/class=%d\n\n" r (scale 20)
    (scale 5);
  Printf.printf "%-6s %8s %8s %12s %10s\n" "model" "acc" "std" "memory(KB)"
    "train(s)";
  List.iter
    (fun (model : Ml.Model.flat) ->
      let results =
        List.init r (fun round ->
            let rng = Rng.make (3000 + round) in
            let split =
              Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 20)
                ~test_per_class:(scale 5)
            in
            let p = prepare (Rng.split rng) G.Game.game0 E.Embedding.histogram split in
            let t0 = Yali.Exec.Telemetry.clock () in
            let acc, _, bytes = eval_model (Rng.split rng) ~n_classes model p in
            (acc, bytes, Yali.Exec.Telemetry.clock () -. t0))
      in
      let accs = List.map (fun (a, _, _) -> a) results in
      let m, s = mean_std accs in
      let bytes = List.fold_left (fun a (_, b, _) -> max a b) 0 results in
      let time = Ml.Metrics.mean (List.map (fun (_, _, t) -> t) results) in
      Printf.printf "%-6s %8.4f %8.4f %12d %10.2f\n%!" model.fname m s
        (bytes / 1024) time)
    Ml.Model.all_flat

(* ------------------------------------------------------------------ *)
(* Figures 8, 9, 11: evaders x models on Games 1, 2, 3                 *)
(* ------------------------------------------------------------------ *)

let evader_model_grid ~(fig : string) ~(mk_setup : Ob.Evader.t -> G.Game.setup)
    ~(baseline_setup : G.Game.setup) () =
  let n_classes = scale 24 in
  let r = rounds 2 in
  let models = Ml.Model.all_flat in
  Printf.printf "rounds=%d, classes=%d, train/class=%d, test/class=%d\n\n" r
    n_classes (scale 10) (scale 4);
  Printf.printf "%-9s" "evader";
  List.iter (fun (m : Ml.Model.flat) -> Printf.printf " %8s" m.fname) models;
  print_newline ();
  let row name setup =
    Printf.printf "%-9s" name;
    (* prepare once per round, share across the six models *)
    let preps =
      List.init r (fun round ->
          let rng = Rng.make (Hashtbl.hash (fig, name, round)) in
          let split =
            Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 10)
              ~test_per_class:(scale 4)
          in
          (prepare (Rng.split rng) setup E.Embedding.histogram split, Rng.split rng))
    in
    List.iter
      (fun (model : Ml.Model.flat) ->
        let accs =
          List.map
            (fun (p, rng) ->
              let acc, _, _ = eval_model (Rng.copy rng) ~n_classes model p in
              acc)
            preps
        in
        Printf.printf " %8.4f%!" (fst (mean_std accs)))
      models;
    print_newline ()
  in
  row "baseline" baseline_setup;
  List.iter (fun (e : Ob.Evader.t) -> row e.ename (mk_setup e)) (evaders_of_fig8 ())

let fig8 () =
  header "Figure 8: Game1 — evaders vs. unaware classifiers (histogram)";
  evader_model_grid ~fig:"fig8" ~mk_setup:G.Game.game1
    ~baseline_setup:G.Game.game0 ()

let fig9 () =
  header "Figure 9: Game2 — classifier knows the transformation";
  evader_model_grid ~fig:"fig9" ~mk_setup:G.Game.game2
    ~baseline_setup:G.Game.game0 ()

let fig11 () =
  header "Figure 11: Game3 — classifier normalizes with -O3";
  evader_model_grid ~fig:"fig11" ~mk_setup:G.Game.game3
    ~baseline_setup:(G.Game.game3 Ob.Evader.none) ()

(* ------------------------------------------------------------------ *)
(* Figure 10: histogram distance original vs. transformed              *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10: Euclidean distance between original and transformed histograms";
  let n_programs = scale 40 in
  Printf.printf "programs=%d (one per class, cycling)\n\n" n_programs;
  Printf.printf "%-9s %10s %10s %10s\n" "evader" "mean" "q1" "q3";
  List.iter
    (fun (e : Ob.Evader.t) ->
      let ds =
        List.init n_programs (fun k ->
            let p = (Yali.Dataset.Genprog.nth (k mod 104)).generate (Rng.make k) in
            let h0 = E.Histogram.of_module (Yali.lower p) in
            let h1 = E.Histogram.of_module (e.apply (Rng.make (k + 7)) p) in
            E.Histogram.euclidean h0 h1)
      in
      let bp = Ml.Metrics.boxplot ds in
      Printf.printf "%-9s %10.2f %10.2f %10.2f\n%!" e.ename bp.bp_mean bp.q1
        bp.q3)
    (Ob.Evader.none :: evaders_of_fig8 ())

(* ------------------------------------------------------------------ *)
(* Figure 12: accuracy and F1 vs. number of classes                    *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "Figure 12: Game0 accuracy & F1 vs. class count (histogram)";
  let r = rounds 3 in
  Printf.printf "%-8s" "classes";
  List.iter
    (fun (m : Ml.Model.flat) -> Printf.printf " %8s-acc %8s-f1" m.fname m.fname)
    [ Ml.Model.rf; Ml.Model.knn; Ml.Model.mlp ];
  print_newline ();
  List.iter
    (fun n_classes ->
      Printf.printf "%-8d" n_classes;
      List.iter
        (fun (model : Ml.Model.flat) ->
          let accs, f1s =
            List.split
              (List.init r (fun round ->
                   let rng = Rng.make (4000 + (n_classes * 10) + round) in
                   let split =
                     Yali.Dataset.Poj.make rng ~n_classes
                       ~train_per_class:(scale 16) ~test_per_class:(scale 5)
                   in
                   let p =
                     prepare (Rng.split rng) G.Game.game0 E.Embedding.histogram
                       split
                   in
                   let acc, f1, _ = eval_model (Rng.split rng) ~n_classes model p in
                   (acc, f1)))
          in
          Printf.printf " %12.4f %11.4f%!" (fst (mean_std accs))
            (fst (mean_std f1s)))
        [ Ml.Model.rf; Ml.Model.knn; Ml.Model.mlp ];
      print_newline ())
    [ 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Figure 13: runtime of optimized and obfuscated programs             *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  header "Figure 13: relative runtime (cost model), 16 benchmark-game kernels";
  Printf.printf "%-12s %12s %10s %10s\n" "kernel" "O0-cost" "O3" "ollvm";
  let speedups = ref [] and slowdowns = ref [] in
  List.iter
    (fun (name, m0) ->
      let base = Yali.Execution.run ~fuel:100_000_000 m0 [] in
      let o3 =
        Yali.Execution.run ~fuel:100_000_000 (Yali.Transforms.Pipeline.o3 m0) []
      in
      let obf =
        Yali.Execution.run ~fuel:1_000_000_000 (Ob.Ollvm.run (Rng.make 13) m0) []
      in
      let rel c = float_of_int c /. float_of_int base.cost in
      speedups := 1.0 /. rel o3.cost :: !speedups;
      slowdowns := rel obf.cost :: !slowdowns;
      Printf.printf "%-12s %12d %9.2fx %9.2fx\n%!" name base.cost (rel o3.cost)
        (rel obf.cost))
    (Yali.Dataset.Benchgame.modules ());
  let geomean xs =
    exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
  in
  Printf.printf "\ngeomean O3 speedup: %.2fx   geomean ollvm slowdown: %.2fx\n"
    (geomean !speedups) (geomean !slowdowns)

(* ------------------------------------------------------------------ *)
(* Figure 14: detecting the obfuscator                                 *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  header "Figure 14: obfuscator detection on four dataset regimes (10 classes)";
  let r = rounds 2 in
  Printf.printf "%-10s %8s %8s\n" "dataset" "mean" "std";
  List.iter
    (fun kind ->
      let accs =
        List.init r (fun round ->
            (G.Discover.run ~per_transformer:(scale 30)
               (Rng.make (5000 + round))
               kind)
              .accuracy)
      in
      let m, s = mean_std accs in
      Printf.printf "%-10s %8.4f %8.4f\n%!" (G.Discover.dataset_name kind) m s)
    [ G.Discover.Dataset1; G.Discover.Dataset2; G.Discover.Dataset3;
      G.Discover.Dataset4 ]

(* ------------------------------------------------------------------ *)
(* Figure 15: malware identifiers vs. training-set growth              *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  header "Figure 15: MIRAI identifiers vs. growing training sets";
  List.iter
    (fun (mname, model) ->
      Printf.printf "\n%s:\n" mname;
      Printf.printf "%-8s %8s %10s\n" "suites" "n_train" "accuracy";
      let points =
        G.Malware.run ~seed_n:(scale 12) ~challenge_n:(scale 6) (Rng.make 6)
          model
      in
      List.iter
        (fun (pt : G.Malware.curve_point) ->
          Printf.printf "%-8d %8d %10.4f\n" pt.training_sets pt.n_train
            pt.total_accuracy)
        points;
      let last = List.nth points (List.length points - 1) in
      Printf.printf "full training set, per challenge transformer:\n";
      List.iter
        (fun (c : G.Malware.challenge_result) ->
          Printf.printf "  %-4s %d/%d\n" c.tname c.hits c.n_challenges)
        last.per_challenge)
    [ ("rf", Ml.Model.rf); ("cnn", Ml.Model.cnn) ]

(* ------------------------------------------------------------------ *)
(* Figure 16: signature AV vs. retrained rf                            *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  header "Figure 16: best signature AV vs. retrained rf, per transformer";
  let rng = Rng.make 16 in
  let lower = Yali.lower in
  let n_corpus = scale 16 in
  let av =
    G.Antivirus.build (Rng.split rng)
      ~malware:
        (List.init n_corpus (fun _ ->
             lower (Yali.Dataset.Mirai.generate_malware (Rng.split rng))))
      ~benign:
        (List.init n_corpus (fun _ ->
             lower (Yali.Dataset.Mirai.generate_benign (Rng.split rng))))
  in
  let curve =
    G.Malware.run ~seed_n:(scale 12) ~challenge_n:(scale 6) (Rng.make 6)
      Ml.Model.rf
  in
  let rf_full = List.nth curve (List.length curve - 1) in
  Printf.printf "%-10s" "query";
  List.iter
    (fun (t : G.Malware.transformer) -> Printf.printf " %7s" t.tname)
    G.Malware.transformers;
  print_newline ();
  let av_row title pick =
    Printf.printf "%-10s" title;
    List.iter
      (fun (t : G.Malware.transformer) ->
        let challenges =
          List.init (scale 6) (fun k ->
              ( t.tx (Rng.split rng)
                  (lower (Yali.Dataset.Mirai.generate_malware (Rng.make (700 + k)))),
                1 ))
          @ List.init (scale 6) (fun k ->
                ( t.tx (Rng.split rng)
                    (lower (Yali.Dataset.Mirai.generate_benign (Rng.make (770 + k)))),
                  0 ))
        in
        let is_malw, is_mirai = G.Antivirus.best_accuracy av challenges in
        Printf.printf " %7.2f" (pick (is_malw, is_mirai)))
      G.Malware.transformers;
    print_newline ()
  in
  av_row "is-malw" fst;
  av_row "is-mirai" snd;
  Printf.printf "%-10s" "rf(full)";
  List.iter
    (fun (c : G.Malware.challenge_result) ->
      Printf.printf " %7.2f"
        (float_of_int c.hits /. float_of_int c.n_challenges))
    rf_full.per_challenge;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel): framework building blocks";
  let open Bechamel in
  let program = (Yali.Dataset.Genprog.nth 4).generate (Rng.make 1) in
  let m0 = Yali.lower program in
  let tests =
    [
      Test.make ~name:"lower" (Staged.stage (fun () -> ignore (Yali.lower program)));
      Test.make ~name:"histogram-embed" (Staged.stage (fun () ->
           ignore (E.Histogram.of_module m0)));
      Test.make ~name:"milepost-embed" (Staged.stage (fun () ->
           ignore (E.Milepost.of_module m0)));
      Test.make ~name:"ir2vec-embed" (Staged.stage (fun () ->
           ignore (E.Ir2vec.of_module m0)));
      Test.make ~name:"cfg-embed" (Staged.stage (fun () ->
           ignore (E.Graphs.cfg m0)));
      Test.make ~name:"programl-embed" (Staged.stage (fun () ->
           ignore (E.Graphs.programl m0)));
      Test.make ~name:"O3-pipeline" (Staged.stage (fun () ->
           ignore (Yali.Transforms.Pipeline.o3 m0)));
      Test.make ~name:"ollvm-evader" (Staged.stage (fun () ->
           ignore (Ob.Ollvm.run (Rng.make 3) m0)));
      Test.make ~name:"sub-evader" (Staged.stage (fun () ->
           ignore (Ob.Sub.run (Rng.make 3) m0)));
      Test.make ~name:"fla-evader" (Staged.stage (fun () ->
           ignore (Ob.Fla.run (Rng.make 3) m0)));
      Test.make ~name:"interp-run" (Staged.stage (fun () ->
           ignore (Ir.Interp.run ~fuel:1_000_000 m0 [ 5L; 9L; 2L ])));
      Test.make ~name:"vm-compile" (Staged.stage (fun () ->
           ignore (Yali.Vm.compile m0)));
      (let p = Yali.Vm.compile m0 in
       Test.make ~name:"vm-run" (Staged.stage (fun () ->
           ignore (Yali.Vm.run_compiled ~fuel:1_000_000 p [ 5L; 9L; 2L ]))));
    ]
  in
  List.iter
    (fun t ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances t in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    tests


(* ------------------------------------------------------------------ *)
(* Kernel micro-benchmarks: the Fmat layer vs the pre-rewrite code     *)
(* ------------------------------------------------------------------ *)

(* recorded for the "kernels" section of the --json summary *)
let kernel_results :
    (string * float * float * (string * string) list) list ref =
  ref []

let best_of ~(reps : int) (f : unit -> unit) : float =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Yali.Exec.Telemetry.clock () in
    f ();
    let t = Yali.Exec.Telemetry.clock () -. t0 in
    if t < !best then best := t
  done;
  !best

let record_kernel name ref_s new_s extras =
  kernel_results := (name, ref_s, new_s, extras) :: !kernel_results;
  Printf.printf "%-16s %12.4f %12.4f %9.2fx" name ref_s new_s (ref_s /. new_s);
  List.iter (fun (k, v) -> Printf.printf "  %s=%s" k v) extras;
  Printf.printf "\n%!"

(** Before/after numbers for the numeric-kernel layer (DESIGN.md §8):
    forest/tree training (histogram vs per-node sort splits), k-NN
    prediction (blocked norms+dot vs per-row subtract-square), the raw
    distance sweep, and the tiled vs naive matmul.  "Reference" is the
    frozen pre-rewrite code in [Yali.Ml.Reference]. *)
let kernels () =
  header "Kernel benchmarks: frozen pre-rewrite reference vs Fmat kernels";
  let reps = 3 in
  let n_train = scale 1600 and n_test = scale 400 in
  let d = 64 and n_classes = 16 in
  Printf.printf "train=%d test=%d d=%d classes=%d (best of %d)\n\n" n_train
    n_test d n_classes reps;
  Printf.printf "%-16s %12s %12s %9s\n" "kernel" "ref(s)" "fmat(s)" "speedup";
  (* quantized count features — the shape of histogram embeddings, and the
     regime the tree's 256-bucket histogram path is built for *)
  let gen_counts seed n =
    let rng = Rng.make seed in
    let xs = Array.init n (fun _ -> Array.make d 0.0) in
    let ys = Array.make n 0 in
    for i = 0 to n - 1 do
      let cls = Rng.int rng n_classes in
      ys.(i) <- cls;
      for j = 0 to d - 1 do
        let bump = if j mod n_classes = cls then 20 else 0 in
        xs.(i).(j) <- float_of_int (Rng.int rng 24 + bump)
      done
    done;
    (xs, ys)
  in
  (* continuous features for the distance kernels (no exact-tie noise) *)
  let gen_gauss seed n =
    let rng = Rng.make seed in
    let xs = Array.init n (fun _ -> Array.make d 0.0) in
    let ys = Array.make n 0 in
    for i = 0 to n - 1 do
      let cls = Rng.int rng n_classes in
      ys.(i) <- cls;
      for j = 0 to d - 1 do
        xs.(i).(j) <-
          Rng.gaussian rng +. (if j mod n_classes = cls then 4.0 else 0.0)
      done
    done;
    (xs, ys)
  in
  let xs_tr, ys_tr = gen_counts 11 n_train in
  let xs_te, _ = gen_counts 12 n_test in
  let fm_tr = Ml.Fmat.of_rows xs_tr and fm_te = Ml.Fmat.of_rows xs_te in

  (* random-forest training *)
  let n_trees = scale 32 in
  let ref_forest = ref None and new_forest = ref None in
  let t_ref =
    best_of ~reps (fun () ->
        ref_forest :=
          Some
            (Ml.Reference.Random_forest.train
               ~params:{ Ml.Reference.Random_forest.n_trees; max_depth = 24 }
               (Rng.make 42) ~n_classes xs_tr ys_tr))
  in
  let t_new =
    best_of ~reps (fun () ->
        new_forest :=
          Some
            (Ml.Random_forest.train
               ~params:{ Ml.Random_forest.n_trees; max_depth = 24 }
               (Rng.make 42) ~n_classes fm_tr ys_tr))
  in
  let ref_pred =
    Array.map (Ml.Reference.Random_forest.predict (Option.get !ref_forest)) xs_te
  in
  let new_pred = Ml.Random_forest.predict_batch (Option.get !new_forest) fm_te in
  record_kernel "rf-train" t_ref t_new
    [ ("predictions_match", string_of_bool (ref_pred = new_pred)) ];

  (* single-tree split finding, all features considered *)
  let t_ref =
    best_of ~reps (fun () ->
        ignore (Ml.Reference.Decision_tree.train (Rng.make 5) ~n_classes xs_tr ys_tr))
  in
  let t_new =
    best_of ~reps (fun () ->
        ignore (Ml.Decision_tree.train (Rng.make 5) ~n_classes fm_tr ys_tr))
  in
  record_kernel "tree-splits" t_ref t_new [];

  (* k-NN prediction *)
  let kxs_tr, kys_tr = gen_gauss 21 n_train in
  let kxs_te, _ = gen_gauss 22 n_test in
  let kfm_tr = Ml.Fmat.of_rows kxs_tr and kfm_te = Ml.Fmat.of_rows kxs_te in
  let ref_knn = Ml.Reference.Knn.train ~n_classes kxs_tr kys_tr in
  let new_knn = Ml.Knn.train ~n_classes kfm_tr kys_tr in
  let rpred = ref [||] and npred = ref [||] in
  let t_ref =
    best_of ~reps (fun () ->
        rpred := Array.map (Ml.Reference.Knn.predict ref_knn) kxs_te)
  in
  let t_new =
    best_of ~reps (fun () -> npred := Ml.Knn.predict_batch new_knn kfm_te)
  in
  record_kernel "knn-predict" t_ref t_new
    [ ("predictions_match", string_of_bool (!rpred = !npred)) ];

  (* the raw distance sweep: subtract-square rows vs norms + dot over the
     contiguous matrix *)
  let q = kxs_te.(0) in
  let norms = Array.init n_train (Ml.Fmat.sq_norm_row kfm_tr) in
  let out_ref = Array.make n_train 0.0 and out_new = Array.make n_train 0.0 in
  let t_ref =
    best_of ~reps (fun () ->
        for i = 0 to n_train - 1 do
          let row = kxs_tr.(i) in
          let acc = ref 0.0 in
          for j = 0 to d - 1 do
            let dv = q.(j) -. row.(j) in
            acc := !acc +. (dv *. dv)
          done;
          out_ref.(i) <- !acc
        done)
  in
  let qn =
    let acc = ref 0.0 in
    Array.iter (fun v -> acc := !acc +. (v *. v)) q;
    !acc
  in
  let t_new =
    best_of ~reps (fun () ->
        for i = 0 to n_train - 1 do
          out_new.(i) <-
            qn -. (2.0 *. Ml.Fmat.dot_row_vec kfm_tr i q) +. norms.(i)
        done)
  in
  let max_diff = ref 0.0 in
  for i = 0 to n_train - 1 do
    max_diff := Float.max !max_diff (Float.abs (out_ref.(i) -. out_new.(i)))
  done;
  record_kernel "distance-sweep" t_ref t_new
    [ ("max_abs_diff", Printf.sprintf "%.2e" !max_diff) ];

  (* matmul: naive i-k-j vs cache-tiled *)
  let msize = scale 256 in
  let a = Ml.Matrix.random (Rng.make 1) msize msize ~scale:1.0 in
  let b = Ml.Matrix.random (Rng.make 2) msize msize ~scale:1.0 in
  let c_ref = ref (Ml.Matrix.create 0 0) and c_new = ref (Ml.Matrix.create 0 0) in
  let t_ref = best_of ~reps (fun () -> c_ref := Ml.Matrix.matmul_naive a b) in
  let t_new = best_of ~reps (fun () -> c_new := Ml.Matrix.matmul a b) in
  let flops = 2.0 *. float_of_int (msize * msize * msize) in
  record_kernel "matmul" t_ref t_new
    [
      ("gflops_ref", Printf.sprintf "%.2f" (flops /. t_ref /. 1e9));
      ("gflops_fmat", Printf.sprintf "%.2f" (flops /. t_new /. 1e9));
      ("bit_identical", string_of_bool ((!c_ref).data = (!c_new).data));
    ]

(* ------------------------------------------------------------------ *)
(* Execution-engine benchmarks: reference interpreter vs the VM        *)
(* ------------------------------------------------------------------ *)

(* recorded for the "vm" section of the --json summary *)
let vm_results : (string * float * float * (string * string) list) list ref =
  ref []

(* recorded for the "native" section of the --json summary: (workload,
   vm seconds, native seconds, extras) *)
let native_results :
    (string * float * float * (string * string) list) list ref =
  ref []

(* per-engine compile-vs-run wall-second splits, one entry per
   (workload, engine), recorded by whichever engine benchmarks ran *)
let engine_splits : (string * string * float * float) list ref = ref []

let record_split ~workload ~engine ~compile_s ~run_s =
  engine_splits := (workload, engine, compile_s, run_s) :: !engine_splits

let record_vm name ref_s vm_s extras =
  vm_results := (name, ref_s, vm_s, extras) :: !vm_results;
  Printf.printf "%-10s %12.4f %12.4f %9.2fx" name ref_s vm_s (ref_s /. vm_s);
  List.iter (fun (k, v) -> Printf.printf "  %s=%s" k v) extras;
  Printf.printf "\n%!"

(** Before/after numbers for the execution engines (DESIGN.md §10).  Two
    workloads, two regimes:
    - "kernels": raw interpretation throughput — the sixteen benchmark-game
      kernels, millions of dynamic steps each, compile amortized (the
      figure-13 / benchgame regime, reported as dynamic MIPS);
    - "corpus": the validation shape — a fixed seeded corpus of generated
      programs, each compiled once and probed on many input vectors (what
      one fuzz/check deep-tier oracle call looks like; compile time is
      inside the measured region).
    "Reference" is the frozen tree-walking interpreter. *)
(* Interleave the two engines' timed passes within each rep, so a phase of
   machine load (CI neighbours, thermal throttling) lands on both engines
   rather than skewing the ratio; each side still reports its best rep. *)
let best_pair ~(reps : int) (f : unit -> unit) (g : unit -> unit) :
    float * float =
  let bf = ref infinity in
  let bg = ref infinity in
  for _ = 1 to reps do
    f ();
    (* untimed: refill caches/branch predictor after the other engine *)
    let t0 = Yali.Exec.Telemetry.clock () in
    f ();
    let t1 = Yali.Exec.Telemetry.clock () in
    g ();
    (* untimed, same reason *)
    let t2 = Yali.Exec.Telemetry.clock () in
    g ();
    let t3 = Yali.Exec.Telemetry.clock () in
    if t1 -. t0 < !bf then bf := t1 -. t0;
    if t3 -. t2 < !bg then bg := t3 -. t2
  done;
  (!bf, !bg)

let interp () =
  header "Engine benchmarks: frozen reference interpreter vs pre-compiling VM";
  let reps = 5 in
  Printf.printf "(best of %d, interleaved)\n\n" reps;
  Printf.printf "%-10s %12s %12s %9s\n" "workload" "ref(s)" "vm(s)" "speedup";

  (* raw throughput on the benchmark-game kernels *)
  let mods = Yali.Dataset.Benchgame.modules () in
  let fuel = 100_000_000 in
  let steps =
    List.fold_left (fun a (_, m) -> a + (Ir.Interp.run ~fuel m []).steps) 0 mods
  in
  let t_compile =
    best_of ~reps (fun () ->
        List.iter (fun (_, m) -> ignore (Yali.Vm.compile m)) mods)
  in
  let compiled = List.map (fun (n, m) -> (n, Yali.Vm.compile m)) mods in
  let t_ref, t_vm =
    best_pair ~reps
      (fun () ->
        List.iter (fun (_, m) -> ignore (Ir.Interp.run ~fuel m [])) mods)
      (fun () ->
        List.iter
          (fun (_, p) -> ignore (Yali.Vm.run_compiled ~fuel p []))
          compiled)
  in
  let mips t = float_of_int steps /. t /. 1e6 in
  record_vm "kernels" t_ref t_vm
    [
      ("dynamic_steps", string_of_int steps);
      ("mips_ref", Printf.sprintf "%.1f" (mips t_ref));
      ("mips_vm", Printf.sprintf "%.1f" (mips t_vm));
      ("compile_seconds", Printf.sprintf "%.4f" t_compile);
    ];
  record_split ~workload:"kernels" ~engine:"ref" ~compile_s:0.0 ~run_s:t_ref;
  record_split ~workload:"kernels" ~engine:"vm" ~compile_s:t_compile
    ~run_s:t_vm;

  (* the validation shape: seeded corpus, compile once, many inputs *)
  let n_progs = scale 64 in
  let n_inputs = 32 in
  let corpus_fuel = 200_000 in
  let rng = Rng.make 42 in
  let corpus =
    List.init n_progs (fun k ->
        Yali.lower (Yali.Check.Gen.program (Rng.split_ix rng k)))
  in
  let inputs =
    List.init n_inputs (fun i ->
        List.init 32 (fun j ->
            Int64.of_int ((((i * 53) + (j * 17)) mod 2001) - 1000)))
  in
  let execs = n_progs * n_inputs in
  let run_all prepare =
    List.iter
      (fun m ->
        let run1 = prepare m in
        List.iter (fun input -> ignore (run1 ~fuel:corpus_fuel input)) inputs)
      corpus
  in
  let t_ref, t_vm =
    best_pair ~reps
      (fun () -> run_all (Yali.Execution.prepare ~engine:Yali.Execution.Ref))
      (fun () -> run_all (Yali.Execution.prepare ~engine:Yali.Execution.Vm))
  in
  record_vm "corpus" t_ref t_vm
    [
      ("programs", string_of_int n_progs);
      ("execs", string_of_int execs);
      ("execs_per_s_ref", Printf.sprintf "%.0f" (float_of_int execs /. t_ref));
      ("execs_per_s_vm", Printf.sprintf "%.0f" (float_of_int execs /. t_vm));
      ("programs_per_s_ref",
       Printf.sprintf "%.1f" (float_of_int n_progs /. t_ref));
      ("programs_per_s_vm",
       Printf.sprintf "%.1f" (float_of_int n_progs /. t_vm));
    ];
  Printf.printf
    "\nmemory images allocated: %d interpreter + %d vm (pooled per domain \
     and reused across every run above)\n"
    (Ir.Arena.created Ir.Interp.arena)
    (Yali.Vm.arenas_created ())

(* ------------------------------------------------------------------ *)
(* Native-tier benchmark: ocamlopt+Dynlink plugins vs the VM           *)
(* ------------------------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let native_json = "BENCH_native.json"

let record_native name vm_s nat_s extras =
  native_results := (name, vm_s, nat_s, extras) :: !native_results;
  Printf.printf "%-10s %12.4f %12.4f %9.2fx" name vm_s nat_s (vm_s /. nat_s);
  List.iter (fun (k, v) -> Printf.printf "  %s=%s" k v) extras;
  Printf.printf "\n%!"

(** The native tier (DESIGN.md §13) against the VM, on the same two
    regimes as [interp]: the benchmark-game kernels (compile amortized,
    dynamic MIPS) and the validation corpus (one batched compile, many
    inputs; compile time reported separately as an engine split).  Uses a
    private cold cache directory so compile seconds are real compiles, not
    cache hits from an earlier run.  Written to [BENCH_native.json];
    exits nonzero when the kernels land below the 3x-over-VM gate.  Where
    the toolchain is unavailable the summary says so and the gate is
    skipped. *)
let native_bench () =
  header "Native tier: IR -> OCaml -> cmxs (Dynlink) vs the pre-compiling VM";
  match Yali.Native.why_unavailable () with
  | Some why ->
      Printf.printf "native tier unavailable here: %s\nspeed gate skipped\n"
        why;
      let oc = open_out native_json in
      Printf.fprintf oc "{\n  \"available\": false,\n  \"reason\": \"%s\"\n}\n"
        (String.escaped why);
      close_out oc;
      Printf.printf "native summary written to %s\n" native_json
  | None ->
      let reps = 5 in
      Printf.printf "(best of %d, interleaved)\n\n" reps;
      Printf.printf "%-10s %12s %12s %9s\n" "workload" "vm(s)" "native(s)"
        "speedup";
      let clock = Yali.Exec.Telemetry.clock in
      (* a private cache directory: compile seconds below must be real
         ocamlopt work, not hits on artifacts from an earlier run *)
      let tmp_cache =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "yali-native-bench-%d" (Unix.getpid ()))
      in
      let old_cache =
        try Some (Sys.getenv "YALI_NATIVE_CACHE") with Not_found -> None
      in
      Unix.putenv "YALI_NATIVE_CACHE" tmp_cache;
      Fun.protect
        ~finally:(fun () ->
          (match old_cache with
          | Some v -> Unix.putenv "YALI_NATIVE_CACHE" v
          | None -> Unix.putenv "YALI_NATIVE_CACHE" "");
          rm_rf tmp_cache)
      @@ fun () ->
      (* raw throughput: the sixteen benchmark-game kernels, one plugin *)
      let mods = Yali.Dataset.Benchgame.modules () in
      let fuel = 100_000_000 in
      let steps =
        List.fold_left (fun a (_, m) -> a + (Yali.Vm.run ~fuel m []).steps) 0
          mods
      in
      let t0 = clock () in
      let prepared =
        match Yali.Native.prepare_many (Array.of_list (List.map snd mods)) with
        | Ok ps -> ps
        | Error e -> failwith ("native compile failed on kernels: " ^ e)
      in
      let t_compile = clock () -. t0 in
      let t_vm_compile =
        best_of ~reps (fun () ->
            List.iter (fun (_, m) -> ignore (Yali.Vm.compile m)) mods)
      in
      let vm_compiled = List.map (fun (_, m) -> Yali.Vm.compile m) mods in
      let t_vm, t_nat =
        best_pair ~reps
          (fun () ->
            List.iter
              (fun p -> ignore (Yali.Vm.run_compiled ~fuel p []))
              vm_compiled)
          (fun () -> Array.iter (fun p -> ignore (p ~fuel [])) prepared)
      in
      (* the full differential contract lives in test/ and the check
         oracle; here just refuse to report a speedup over different work *)
      let nat_steps =
        Array.fold_left (fun a p -> a + (p ~fuel []).Ir.Interp.steps) 0
          prepared
      in
      if nat_steps <> steps then
        failwith
          (Printf.sprintf "native/vm dynamic step totals disagree: %d vs %d"
             nat_steps steps);
      let mips t = float_of_int steps /. t /. 1e6 in
      let speedup = t_vm /. t_nat in
      let break_even =
        if t_vm > t_nat then t_compile /. (t_vm -. t_nat) else infinity
      in
      record_native "kernels" t_vm t_nat
        [
          ("dynamic_steps", string_of_int steps);
          ("mips_vm", Printf.sprintf "%.1f" (mips t_vm));
          ("mips_native", Printf.sprintf "%.1f" (mips t_nat));
          ("compile_seconds", Printf.sprintf "%.4f" t_compile);
          ("break_even_runs", Printf.sprintf "%.2f" break_even);
        ];
      record_split ~workload:"kernels" ~engine:"vm" ~compile_s:t_vm_compile
        ~run_s:t_vm;
      record_split ~workload:"kernels" ~engine:"native" ~compile_s:t_compile
        ~run_s:t_nat;

      (* the validation shape: a generated corpus compiled in one batched
         plugin, then probed on many input vectors *)
      let n_progs = scale 32 in
      let n_inputs = 32 in
      let corpus_fuel = 200_000 in
      let rng = Rng.make 42 in
      let corpus =
        Array.init n_progs (fun k ->
            Yali.lower (Yali.Check.Gen.program (Rng.split_ix rng k)))
      in
      let inputs =
        List.init n_inputs (fun i ->
            List.init 32 (fun j ->
                Int64.of_int ((((i * 53) + (j * 17)) mod 2001) - 1000)))
      in
      let execs = n_progs * n_inputs in
      let t0 = clock () in
      let nat_ps =
        match Yali.Native.prepare_many corpus with
        | Ok ps -> ps
        | Error e -> failwith ("native compile failed on corpus: " ^ e)
      in
      let t_nat_compile_c = clock () -. t0 in
      let t0 = clock () in
      let vm_ps = Array.map Yali.Vm.compile corpus in
      let t_vm_compile_c = clock () -. t0 in
      let t_vm_run, t_nat_run =
        best_pair ~reps
          (fun () ->
            Array.iter
              (fun p ->
                List.iter
                  (fun input ->
                    ignore (Yali.Vm.run_compiled ~fuel:corpus_fuel p input))
                  inputs)
              vm_ps)
          (fun () ->
            Array.iter
              (fun p ->
                List.iter
                  (fun input -> ignore (p ~fuel:corpus_fuel input))
                  inputs)
              nat_ps)
      in
      record_native "corpus" t_vm_run t_nat_run
        [
          ("programs", string_of_int n_progs);
          ("execs", string_of_int execs);
          ("compile_seconds_vm", Printf.sprintf "%.4f" t_vm_compile_c);
          ("compile_seconds_native", Printf.sprintf "%.4f" t_nat_compile_c);
          ("execs_per_s_vm",
           Printf.sprintf "%.0f" (float_of_int execs /. t_vm_run));
          ("execs_per_s_native",
           Printf.sprintf "%.0f" (float_of_int execs /. t_nat_run));
        ];
      record_split ~workload:"corpus" ~engine:"vm" ~compile_s:t_vm_compile_c
        ~run_s:t_vm_run;
      record_split ~workload:"corpus" ~engine:"native"
        ~compile_s:t_nat_compile_c ~run_s:t_nat_run;
      Printf.printf
        "\nkernels: %.1f -> %.1f MIPS (%.2fx), compile %.2fs, break-even \
         %.2f runs\n"
        (mips t_vm) (mips t_nat) speedup t_compile break_even;
      let pass = speedup >= 3.0 in
      let oc = open_out native_json in
      Printf.fprintf oc "{\n  \"available\": true,\n  \"quick\": %b,\n" !quick;
      Printf.fprintf oc
        "  \"kernels\": {\"dynamic_steps\": %d, \"vm_seconds\": %.4f, \
         \"native_seconds\": %.4f, \"speedup\": %.2f, \"mips_vm\": %.1f, \
         \"mips_native\": %.1f, \"compile_seconds\": %.4f, \
         \"break_even_runs\": %.2f},\n"
        steps t_vm t_nat speedup (mips t_vm) (mips t_nat) t_compile break_even;
      Printf.fprintf oc
        "  \"corpus\": {\"programs\": %d, \"execs\": %d, \
         \"vm_compile_seconds\": %.4f, \"vm_run_seconds\": %.4f, \
         \"native_compile_seconds\": %.4f, \"native_run_seconds\": %.4f, \
         \"run_speedup\": %.2f},\n"
        n_progs execs t_vm_compile_c t_vm_run t_nat_compile_c t_nat_run
        (t_vm_run /. t_nat_run);
      Printf.fprintf oc "  \"pass\": %b\n}\n" pass;
      close_out oc;
      Printf.printf "native summary written to %s\n" native_json;
      if not pass then begin
        Printf.eprintf "native benchmark FAILED (%.2fx < 3x over vm)\n"
          speedup;
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Serving benchmark: the classification daemon under synthetic load   *)
(* ------------------------------------------------------------------ *)

let serve_json = "BENCH_serve.json"

(* Hidden daemon mode: [serve] and [adapt_bench] below re-exec this binary
   with this flag (socket and registry dir as the two operands, plus an
   optional model spec — default rf) instead of forking. *)
let serve_daemon_flag = "--serve-daemon"

let serve_daemon () =
  let cfg =
    {
      Yali.Serve.Server.socket = Sys.argv.(2);
      registry_dir = Sys.argv.(3);
      model_spec = (if Array.length Sys.argv > 4 then Sys.argv.(4) else "rf");
      queue_cap = 256;
      max_batch = 64;
      log = ignore;
    }
  in
  match Yali.Serve.Server.run cfg with
  | Ok () -> exit 0
  | Error msg ->
      Printf.eprintf "daemon: %s\n%!" msg;
      exit 1

(** End-to-end daemon benchmark (DESIGN.md §11): train and publish a
    snapshot, launch a daemon child on a Unix socket, replay corpus
    programs from concurrent client connections, and record sustained
    throughput, latency quantiles, the batch-size histogram, reply
    determinism, and whether SIGTERM shuts the daemon down cleanly.
    Written to [BENCH_serve.json]; exits nonzero when determinism or the
    clean shutdown fails (CI's serve smoke gate). *)
let serve () =
  header "Serving: daemon throughput/latency under concurrent clients";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-serve-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let registry = Filename.concat dir "models" in
  let socket = Filename.concat dir "yali.sock" in
  let n_classes = 8 in
  let entry =
    match
      Yali.Serve.Registry.train ~seed:42 ~embedding:E.Embedding.histogram
        ~kind:"rf" ~n_classes ~per_class:(scale 10)
    with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  let version, _ =
    Yali.Serve.Registry.publish ~dir:registry ~meta:entry.meta entry.snapshot
  in
  Printf.printf "model: rf@%d (histogram, %d classes, dim %d, %d rows)\n%!"
    version n_classes entry.meta.dim entry.meta.n_train;
  (* launch the daemon as a re-exec of this binary in the hidden
     [serve_daemon_flag] mode: [Unix.fork] is forbidden once the pool has
     ever spawned a domain (training above does, at --jobs > 1), while
     [create_process] goes through [posix_spawn] and stays legal *)
  flush stdout;
  flush stderr;
  let child =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; serve_daemon_flag; socket; registry |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec await_socket tries =
    if Sys.file_exists socket then ()
    else if tries = 0 then failwith "daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      await_socket (tries - 1)
    end
  in
  await_socket 100;
  let cfg =
    {
      Yali.Serve.Traffic.socket;
      clients = 16;
      requests = scale 400;
      seed = 7;
      n_classes;
      per_class = 3;
      log = prerr_endline;
    }
  in
  let r = Yali.Serve.Traffic.run cfg in
  Printf.printf
    "classified %d requests in %.2fs: %.0f programs/s, p50 %dus, p99 %dus\n"
    r.t_classified r.t_seconds r.t_throughput r.t_p50_us r.t_p99_us;
  Printf.printf "busy replies %d, errors %d, deterministic %b\n" r.t_busy
    r.t_errors r.t_deterministic;
  Printf.printf "batch sizes:";
  List.iter (fun (s, c) -> Printf.printf " %dx%d" s c) r.t_batch_hist;
  print_newline ();
  let server_stats =
    let c = Yali.Serve.Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Yali.Serve.Client.close c)
      (fun () ->
        match Yali.Serve.Client.stats c with Ok j -> j | Error e -> failwith e)
  in
  (* clean SIGTERM shutdown is part of the contract *)
  Unix.kill child Sys.sigterm;
  let _, status = Unix.waitpid [] child in
  let clean = status = Unix.WEXITED 0 in
  Printf.printf "daemon SIGTERM shutdown: %s\n"
    (if clean then "clean (exit 0)" else "UNCLEAN");
  let oc = open_out serve_json in
  Printf.fprintf oc
    "{\n  \"model\": \"rf@%d\",\n  \"classes\": %d,\n  \"clients\": %d,\n\
    \  \"traffic\": %s,\n  \"server\": %s,\n  \"clean_shutdown\": %b\n}\n"
    version n_classes cfg.clients
    (Yali.Serve.Traffic.result_to_json r)
    server_stats clean;
  close_out oc;
  Printf.printf "serving summary written to %s\n" serve_json;
  let failed =
    (not clean) || (not r.t_deterministic) || r.t_errors > 0
    || r.t_classified < cfg.requests
  in
  if failed then begin
    Printf.eprintf "serve benchmark FAILED\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Corpus benchmark: paper-scale streaming generation and out-of-core  *)
(* training under a fixed memory cap (DESIGN.md §12)                   *)
(* ------------------------------------------------------------------ *)

let corpus_json = "BENCH_corpus.json"
let rss_cap_mb = ref 2048.0

(* Peak resident set (VmHWM) in MiB from /proc/self/status; 0.0 where the
   proc filesystem is unavailable (the gate is then skipped). *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> 0.0
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:"
                then
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d" (fun kb -> float_of_int kb /. 1024.0)
                else go ()
          in
          go ())

(** The paper-scale tier: generate the full 104-class corpus straight to a
    sharded on-disk store, embed it into an out-of-core feature file, and
    train lr + rf both streamed (minibatch over blocks) and in memory —
    the streamed models must hold accuracy within 2 points of the
    in-memory ones on a held-out corpus, and the whole run must fit the
    RSS cap (--rss-cap-mb, default 2048).  [--quick] drops to 104x50.
    Written to [BENCH_corpus.json]; exits nonzero when a gate fails (CI's
    paper-scale smoke). *)
let corpus_bench () =
  let per_class = if !quick then 50 else 500 in
  header "Corpus: paper-scale streaming pipeline (104x%d, cap %.0f MiB)"
    per_class !rss_cap_mb;
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-corpus-bench-%d" (Unix.getpid ()))
  in
  let train_dir = Filename.concat tmp "train" in
  let test_dir = Filename.concat tmp "test" in
  if not (Sys.file_exists tmp) then Sys.mkdir tmp 0o700;
  let spec =
    { Yali.Corpus.Gen.dataset = "poj"; seed = 42; n_classes = 104; per_class }
  in
  let test_spec =
    { spec with Yali.Corpus.Gen.seed = 43;
      per_class = (if !quick then 5 else 20) }
  in
  let clock = Yali.Exec.Telemetry.clock in
  Fun.protect
    ~finally:(fun () ->
      rm_rf train_dir;
      rm_rf test_dir;
      rm_rf tmp)
    (fun () ->
      let t0 = clock () in
      Yali.Corpus.Gen.generate ~dir:train_dir spec;
      let t_gen = clock () -. t0 in
      let r = Yali.Corpus.Store.open_ train_dir in
      let n = Yali.Corpus.Store.length r in
      let gen_rate = float_of_int n /. t_gen in
      let corpus_mib =
        float_of_int (Yali.Corpus.Store.total_bytes r) /. (1024.0 *. 1024.0)
      in
      Printf.printf
        "generated %d programs in %.1fs (%.0f programs/s, %d shards, %.1f MiB)\n%!"
        n t_gen gen_rate
        (Yali.Corpus.Store.shard_count r)
        corpus_mib;
      let feat = Filename.concat tmp "features.yfmb" in
      let t0 = clock () in
      let d =
        Yali.Corpus.Embed.to_file ~embedding:E.Embedding.histogram r ~out:feat
      in
      let t_embed = clock () -. t0 in
      let embed_rate = float_of_int n /. t_embed in
      Printf.printf "embedded %d rows (dim %d) in %.1fs (%.0f rows/s)\n%!" n d
        t_embed embed_rate;
      Yali.Corpus.Gen.generate ~dir:test_dir test_spec;
      let rt = Yali.Corpus.Store.open_ test_dir in
      let tx, tys = Yali.Corpus.Embed.to_fmat ~embedding:E.Embedding.histogram rt in
      Yali.Corpus.Store.close rt;
      Printf.printf "held-out corpus: %d programs at seed %d\n%!"
        (Array.length tys) test_spec.Yali.Corpus.Gen.seed;
      let ys = Yali.Corpus.Store.labels r in
      let n_classes = Yali.Corpus.Store.n_classes r in
      let accuracy snap =
        let t = Ml.Model.restore snap in
        let preds = t.Ml.Model.predict_batch tx in
        let ok = ref 0 in
        Array.iteri (fun i p -> if p = tys.(i) then incr ok) preds;
        float_of_int !ok /. float_of_int (Array.length tys)
      in
      let results =
        List.map
          (fun kind ->
            let fr = Ml.Fblock.open_reader feat in
            let t0 = clock () in
            let snap_stream =
              Option.get
                (Ml.Model.train_snapshot_stream ~block_rows:4096 kind
                   (Rng.make 7) ~n_classes (Ml.Fblock.Disk fr) ys)
            in
            let t_stream = clock () -. t0 in
            let x = Ml.Fblock.materialize (Ml.Fblock.Disk fr) in
            Ml.Fblock.close_reader fr;
            let t0 = clock () in
            let snap_mem =
              Option.get
                (Ml.Model.train_snapshot kind (Rng.make 7) ~n_classes x ys)
            in
            let t_mem = clock () -. t0 in
            let a_s = accuracy snap_stream and a_m = accuracy snap_mem in
            Printf.printf
              "%-4s stream %6.1fs acc %.3f | in-memory %6.1fs acc %.3f\n%!"
              kind t_stream a_s t_mem a_m;
            (kind, t_stream, a_s, t_mem, a_m))
          [ "lr"; "rf" ]
      in
      Yali.Corpus.Store.close r;
      Sys.remove feat;
      let rss = peak_rss_mb () in
      let acc_ok =
        List.for_all (fun (_, _, a_s, _, a_m) -> a_m -. a_s <= 0.02) results
      in
      let rss_ok = rss = 0.0 || rss <= !rss_cap_mb in
      Printf.printf "peak RSS %.0f MiB (cap %.0f): %s\n" rss !rss_cap_mb
        (if rss_ok then "ok" else "OVER CAP");
      let oc = open_out corpus_json in
      Printf.fprintf oc "{\n  \"quick\": %b,\n  \"jobs\": %d,\n" !quick
        (Yali.Exec.Pool.get_jobs ());
      Printf.fprintf oc "  \"spec\": \"%s\",\n  \"programs\": %d,\n"
        (Yali.Corpus.Gen.spec_to_string spec)
        n;
      Printf.fprintf oc "  \"corpus_mib\": %.1f,\n  \"dim\": %d,\n" corpus_mib d;
      Printf.fprintf oc
        "  \"gen_seconds\": %.2f,\n  \"gen_programs_per_s\": %.1f,\n" t_gen
        gen_rate;
      Printf.fprintf oc
        "  \"embed_seconds\": %.2f,\n  \"embed_rows_per_s\": %.1f,\n" t_embed
        embed_rate;
      Printf.fprintf oc "  \"models\": [\n";
      List.iteri
        (fun i (kind, t_s, a_s, t_m, a_m) ->
          Printf.fprintf oc
            "    {\"kind\": \"%s\", \"stream_seconds\": %.2f, \
             \"stream_accuracy\": %.4f, \"inmem_seconds\": %.2f, \
             \"inmem_accuracy\": %.4f}%s\n"
            kind t_s a_s t_m a_m
            (if i = List.length results - 1 then "" else ","))
        results;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"peak_rss_mb\": %.1f,\n  \"rss_cap_mb\": %.1f,\n  \"pass\": %b\n}\n"
        rss !rss_cap_mb (acc_ok && rss_ok);
      close_out oc;
      Printf.printf "corpus summary written to %s\n" corpus_json;
      if not (acc_ok && rss_ok) then begin
        Printf.eprintf "corpus benchmark FAILED (accuracy %s, rss %s)\n"
          (if acc_ok then "ok" else "dropped >2 points")
          (if rss_ok then "ok" else "over cap");
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Adaptive evaders: cost-priced Pareto fronts (DESIGN.md §14)         *)
(* ------------------------------------------------------------------ *)

let adapt_json = "BENCH_adapt.json"

(** Adaptive-evader benchmark: run the classifier-in-the-loop search for
    each default model kind, emit the per-classifier Pareto fronts
    (evasion rate vs cost multiplier), and prove the [--via-serve] path by
    re-running the identical searches against daemon children — the two
    reports must be bit-identical.  Written to [BENCH_adapt.json]; exits
    nonzero when a front is too thin (< 3 points on < 2 classifiers) or
    the via-serve report diverges (CI's adapt gate). *)
let adapt_bench () =
  header "Adaptive evaders: classifier-in-the-loop search, Pareto fronts";
  let module D = Yali.Adapt.Driver in
  let module Fit = Yali.Adapt.Fitness in
  let cfg =
    {
      D.default with
      a_train_per_class = scale 10;
      a_budget = (if !quick then 32 else 96);
      a_challenges_per_class = (if !quick then 2 else 3);
    }
  in
  let t0 = Yali.Exec.Telemetry.clock () in
  let prep = D.prepare ~log:print_endline cfg in
  let report = D.search_fronts ~log:print_endline cfg prep in
  let t_search = Yali.Exec.Telemetry.clock () -. t0 in
  List.iter
    (fun (f : D.model_front) ->
      Printf.printf "%-5s front:" f.mf_kind;
      List.iter
        (fun (p : Yali.Adapt.Pareto.point) ->
          Printf.printf "  (%.2fx, %.2f)" p.p_cost p.p_evasion)
        f.mf_front;
      print_newline ())
    report.r_fronts;
  (* the via-serve proof: publish the prepared snapshots, spawn one daemon
     child per kind (re-exec via the hidden flag: [fork] is forbidden once
     the pool has spawned a domain), re-run the identical searches with
     margins answered over the socket *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-adapt-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let registry = Filename.concat dir "models" in
  let dim =
    Array.length
      (E.Embedding.to_flat D.embedding prep.p_challenges.(0).Fit.ch_module)
  in
  List.iter
    (fun (kind, snapshot) ->
      let meta =
        {
          Yali.Serve.Registry.kind;
          version = 0;
          embedding = D.embedding.name;
          n_classes = cfg.a_classes;
          dim;
          n_train = prep.p_n_train;
          seed = cfg.a_seed;
          source = "adapt:prepared";
        }
      in
      ignore (Yali.Serve.Registry.publish ~dir:registry ~meta snapshot))
    prep.p_snapshots;
  flush stdout;
  flush stderr;
  let daemons =
    List.map
      (fun (kind, _) ->
        let socket = Filename.concat dir (kind ^ ".sock") in
        let pid =
          Unix.create_process Sys.executable_name
            [| Sys.executable_name; serve_daemon_flag; socket; registry; kind |]
            Unix.stdin Unix.stdout Unix.stderr
        in
        (kind, socket, pid))
      prep.p_snapshots
  in
  let t1 = Yali.Exec.Telemetry.clock () in
  let identical, t_serve =
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun (_, _, pid) ->
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
          daemons)
      (fun () ->
        let rec await socket tries =
          if Sys.file_exists socket then ()
          else if tries = 0 then failwith "adapt daemon socket never appeared"
          else begin
            Unix.sleepf 0.05;
            await socket (tries - 1)
          end
        in
        let remotes =
          List.map
            (fun (kind, socket, _) ->
              await socket 200;
              (kind, Yali.Adapt.Remote.connect ~socket))
            daemons
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter (fun (_, r) -> Yali.Adapt.Remote.close r) remotes)
          (fun () ->
            let report' =
              D.search_fronts
                ~oracle_for:(fun kind ->
                  Option.map Yali.Adapt.Remote.oracle
                    (List.assoc_opt kind remotes))
                cfg prep
            in
            ( D.reports_identical report report',
              Yali.Exec.Telemetry.clock () -. t1 )))
  in
  Printf.printf "search %.2fs in-process, %.2fs via serve\n" t_search t_serve;
  Printf.printf "via-serve report bit-identical: %b\n" identical;
  let rich_fronts =
    List.length
      (List.filter
         (fun (f : D.model_front) -> List.length f.mf_front >= 3)
         report.r_fronts)
  in
  let pass = identical && rich_fronts >= 2 in
  let oc = open_out adapt_json in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"jobs\": %d,\n" !quick
    (Yali.Exec.Pool.get_jobs ());
  Printf.fprintf oc
    "  \"search_seconds\": %.2f,\n  \"serve_seconds\": %.2f,\n\
    \  \"via_serve_identical\": %b,\n  \"report\": %s,\n  \"pass\": %b\n}\n"
    t_search t_serve identical
    (String.trim (D.report_to_json cfg report))
    pass;
  close_out oc;
  Printf.printf "adapt summary written to %s\n" adapt_json;
  if not pass then begin
    Printf.eprintf "adapt benchmark FAILED (%s)\n"
      (if not identical then "via-serve report diverged"
       else "fewer than 2 classifiers with a 3-point front");
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Neural-tier benchmark: kernelized minibatch trainers vs reference   *)
(* ------------------------------------------------------------------ *)

let nn_json = "BENCH_nn.json"

(* bit-level weight-dump equality: the contract is bit-identity, so
   compare IEEE bits rather than trusting polymorphic [=] on floats *)
let dump_eq (a : float array array) (b : float array array) : bool =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i ra ->
      let rb = b.(i) in
      if Array.length ra <> Array.length rb then ok := false
      else
        Array.iteri
          (fun j v ->
            if Int64.bits_of_float v <> Int64.bits_of_float rb.(j) then
              ok := false)
          ra)
    a;
  !ok

(* gaussian blobs, the flat shape the Fig 5 cnn path trains on *)
let nn_blobs (rng : Rng.t) ~(n_classes : int) ~(n : int) ~(d : int) :
    Ml.Fmat.t * int array =
  let ys = Array.init n (fun i -> i mod n_classes) in
  let rows =
    Array.init n (fun i ->
        Array.init d (fun k ->
            Rng.gaussian rng +. if k = ys.(i) then 6.0 else 0.0))
  in
  (Ml.Fmat.of_rows rows, ys)

let nn_chain_graph ~(n : int) ~(flavor : int) : E.Graph.t =
  let feats =
    Array.init n (fun k ->
        Array.init 4 (fun j ->
            if (k + j + flavor) mod 2 = 0 then 1.0 else 0.0))
  in
  let edges = List.init (n - 1) (fun k -> (k, k + 1, E.Graph.Control)) in
  { E.Graph.node_feats = feats; edges; feat_dim = 4 }

(** The neural tier (DESIGN.md §15): the kernelized minibatch trainers
    against the frozen naive reference in [Ml.Reference], on the same
    synthetic shapes the differential tests pin.  Reports wall seconds,
    speedup, and training throughput; re-checks the bit-identity contract
    (kernel = reference, --jobs 1 = --jobs 4, streamed = in-memory) on the
    benchmark workload itself.  Written to [BENCH_nn.json]; exits nonzero
    when the cnn lands below the 5x-over-reference gate or any identity
    check fails. *)
(* interleaved best-of-[reps] timing: both sides see the same cache and
   allocator state, and taking the minimum strips scheduler noise (the
   same idiom as the native-tier benchmark) *)
let best_pair ~reps f g =
  let clock = Yali.Exec.Telemetry.clock in
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to reps do
    let t0 = clock () in
    f ();
    bf := Float.min !bf (clock () -. t0);
    let t0 = clock () in
    g ();
    bg := Float.min !bg (clock () -. t0)
  done;
  (!bf, !bg)

let nn_bench () =
  header "Neural tier: minibatch Fmat kernels vs the frozen naive trainer";
  let clock = Yali.Exec.Telemetry.clock in

  (* cnn: flat gaussian blobs, wide enough that the matmuls dominate (the
     shape regime Fig 5's feature vectors live in) *)
  let d = 256 and n_classes = 8 in
  let n = scale 256 in
  let params = { Ml.Cnn.default_params with epochs = 2 } in
  let x, ys = nn_blobs (Rng.make 7) ~n_classes ~n ~d in
  Printf.printf
    "cnn: %d rows x %d features, %d classes, %d epochs, batch %d\n%!" n d
    n_classes params.Ml.Cnn.epochs params.Ml.Cnn.batch;

  (* the gated measurement: one minibatch SGD step of the kernel, exactly
     as [Cnn.train] invokes it ([~need_dx:false]), against the frozen
     per-sample reference on the same net and batch.  Weights are pinned at
     their init ([lr = 0] still runs every update pass) so each repetition
     times the identical step. *)
  let m = params.Ml.Cnn.batch in
  let xb = Ml.Fmat.create m d in
  Array.blit x.Ml.Fmat.data 0 xb.Ml.Fmat.data 0 (m * d);
  let yb = Array.init m (fun i -> ys.(i)) in
  let step_net = Ml.Cnn.build_net (Rng.make 17) ~d_in:d ~n_classes in
  let step_netr = Ml.Cnn.build_net (Rng.make 17) ~d_in:d ~n_classes in
  let krng = Rng.make 19 and nrng = Rng.make 19 in
  let inner = scale 10 in
  let t_sker, t_sref =
    best_pair ~reps:5
      (fun () ->
        for _ = 1 to inner do
          ignore
            (Ml.Nn.train_batch ~need_dx:false ~lr:0.0 ~rng:krng step_net xb
               yb)
        done)
      (fun () ->
        for _ = 1 to inner do
          ignore (Ml.Reference.Nnb.train_batch ~lr:0.0 ~rng:nrng step_netr xb yb)
        done)
  in
  let t_sker = t_sker /. float_of_int inner
  and t_sref = t_sref /. float_of_int inner in
  let step_speedup = t_sref /. t_sker in
  Printf.printf
    "  step kernel (batch %d): reference %.2fms   kernel %.2fms   speedup \
     %.2fx\n"
    m (t_sref *. 1e3) (t_sker *. 1e3) step_speedup;

  (* end-to-end training (real lr schedule), which is also where the
     bit-identity contract is re-checked on the benchmark workload *)
  let ref_cnn = ref None and ker_cnn = ref None in
  let t_ref, t_ker =
    best_pair ~reps:2
      (fun () ->
        ref_cnn :=
          Some (Ml.Reference.Cnn.train ~params (Rng.make 11) ~n_classes x ys))
      (fun () ->
        ker_cnn := Some (Ml.Cnn.train ~params (Rng.make 11) ~n_classes x ys))
  in
  let ref_cnn = Option.get !ref_cnn and ker_cnn = Option.get !ker_cnn in
  let weights_ok =
    dump_eq (Ml.Cnn.dump_weights ref_cnn) (Ml.Cnn.dump_weights ker_cnn)
  in
  let cnn_at jobs =
    Yali.Exec.Pool.with_jobs jobs (fun () ->
        Ml.Cnn.dump_weights (Ml.Cnn.train ~params (Rng.make 11) ~n_classes x ys))
  in
  let jobs_ok = dump_eq (cnn_at 1) (cnn_at 4) in
  let streamed_cnn =
    Ml.Cnn.train_stream ~params (Rng.make 11) ~n_classes (Ml.Fblock.of_fmat x)
      ys
  in
  let stream_ok =
    dump_eq (Ml.Cnn.dump_weights ker_cnn) (Ml.Cnn.dump_weights streamed_cnn)
  in
  let speedup = t_ref /. t_ker in
  let row_visits = float_of_int (n * params.Ml.Cnn.epochs) in
  let rows_s = row_visits /. t_ker in
  Printf.printf
    "  full train: reference %.3fs   kernel %.3fs   speedup %.2fx   %.0f \
     rows/s\n"
    t_ref t_ker speedup rows_s;
  Printf.printf
    "  weights bit-identical: %b   jobs-invariant (1 vs 4): %b   \
     streamed-identical: %b\n\n%!"
    weights_ok jobs_ok stream_ok;

  (* dgcnn: two-class chain graphs (the shape the differential tests pin) *)
  let gn = scale 96 in
  let grng = Rng.make 21 in
  let graphs =
    Array.init gn (fun i ->
        if i mod 2 = 0 then nn_chain_graph ~n:(4 + Rng.int grng 3) ~flavor:0
        else nn_chain_graph ~n:(9 + Rng.int grng 3) ~flavor:1)
  in
  let gys = Array.init gn (fun i -> i mod 2) in
  let gparams = { Ml.Dgcnn.default_params with epochs = 2 } in
  Printf.printf "dgcnn: %d graphs, 2 classes, %d epochs, batch %d\n%!" gn
    gparams.Ml.Dgcnn.epochs gparams.Ml.Dgcnn.batch;
  let t0 = clock () in
  let ref_g =
    Ml.Reference.Dgcnn.train ~params:gparams (Rng.make 31) ~n_classes:2
      ~feat_dim:4 graphs gys
  in
  let t_gref = clock () -. t0 in
  let t0 = clock () in
  let ker_g =
    Ml.Dgcnn.train ~params:gparams (Rng.make 31) ~n_classes:2 ~feat_dim:4
      graphs gys
  in
  let t_gker = clock () -. t0 in
  let gweights_ok =
    dump_eq (Ml.Dgcnn.dump_weights ref_g) (Ml.Dgcnn.dump_weights ker_g)
  in
  let dgcnn_at jobs =
    Yali.Exec.Pool.with_jobs jobs (fun () ->
        Ml.Dgcnn.dump_weights
          (Ml.Dgcnn.train ~params:gparams (Rng.make 31) ~n_classes:2
             ~feat_dim:4 graphs gys))
  in
  let gjobs_ok = dump_eq (dgcnn_at 1) (dgcnn_at 4) in
  let streamed_g =
    Ml.Model.train_dgcnn_stream ~params:gparams (Rng.make 31) ~n_classes:2
      (Ml.Gsource.of_graphs graphs) gys
  in
  let gstream_ok =
    dump_eq (Ml.Dgcnn.dump_weights ker_g) (Ml.Dgcnn.dump_weights streamed_g)
  in
  let gspeedup = t_gref /. t_gker in
  let graphs_s = float_of_int (gn * gparams.Ml.Dgcnn.epochs) /. t_gker in
  Printf.printf "  reference %.3fs   kernel %.3fs   speedup %.2fx   %.0f graphs/s\n"
    t_gref t_gker gspeedup graphs_s;
  Printf.printf
    "  weights bit-identical: %b   jobs-invariant (1 vs 4): %b   \
     streamed-identical: %b\n%!"
    gweights_ok gjobs_ok gstream_ok;

  let identical =
    weights_ok && jobs_ok && stream_ok && gweights_ok && gjobs_ok
    && gstream_ok
  in
  let pass = step_speedup >= 5.0 && identical in
  let oc = open_out nn_json in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"jobs\": %d,\n" !quick
    (Yali.Exec.Pool.get_jobs ());
  Printf.fprintf oc
    "  \"cnn\": {\"rows\": %d, \"dim\": %d, \"classes\": %d, \"epochs\": %d, \
     \"batch\": %d, \"step_reference_seconds\": %.5f, \
     \"step_kernel_seconds\": %.5f, \"step_speedup\": %.2f, \
     \"train_reference_seconds\": %.4f, \"train_kernel_seconds\": %.4f, \
     \"train_speedup\": %.2f, \"train_rows_per_s\": %.0f, \
     \"weights_identical\": %b, \"jobs_invariant\": %b, \
     \"stream_identical\": %b},\n"
    n d n_classes params.Ml.Cnn.epochs m t_sref t_sker step_speedup t_ref
    t_ker speedup rows_s weights_ok jobs_ok stream_ok;
  Printf.fprintf oc
    "  \"dgcnn\": {\"graphs\": %d, \"epochs\": %d, \"reference_seconds\": \
     %.4f, \"kernel_seconds\": %.4f, \"speedup\": %.2f, \
     \"train_graphs_per_s\": %.0f, \"weights_identical\": %b, \
     \"jobs_invariant\": %b, \"stream_identical\": %b},\n"
    gn gparams.Ml.Dgcnn.epochs t_gref t_gker gspeedup graphs_s gweights_ok
    gjobs_ok gstream_ok;
  Printf.fprintf oc "  \"pass\": %b\n}\n" pass;
  close_out oc;
  Printf.printf "nn summary written to %s\n" nn_json;
  if not pass then begin
    Printf.eprintf "nn benchmark FAILED (%s)\n"
      (if not identical then "weights diverged from the frozen reference"
       else
         Printf.sprintf "cnn step speedup %.2fx < 5x over reference"
           step_speedup);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md                   *)
(* ------------------------------------------------------------------ *)

(* Which optimization level suffices as a Game3 normalizer? *)
let abl_normalizer () =
  header "Ablation: normalizer strength in Game3 (O1 vs O2 vs O3, rf, histogram)";
  let n_classes = scale 16 in
  let evaders = [ Ob.Evader.sub; Ob.Evader.fla; Ob.Evader.bcf; Ob.Evader.rs; Ob.Evader.drlsg ] in
  let levels =
    [ ("O1", Yali.Transforms.Pipeline.o1); ("O2", Yali.Transforms.Pipeline.o2);
      ("O3", Yali.Transforms.Pipeline.o3) ]
  in
  Printf.printf "%-8s" "evader";
  List.iter (fun (n, _) -> Printf.printf " %8s" n) levels;
  print_newline ();
  List.iter
    (fun (e : Ob.Evader.t) ->
      Printf.printf "%-8s" e.ename;
      List.iter
        (fun (_, normalizer) ->
          let rng = Rng.make (Hashtbl.hash ("abl-n", e.ename)) in
          let split =
            Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 12)
              ~test_per_class:(scale 4)
          in
          let setup = G.Game.game3 ~normalizer e in
          let p = prepare (Rng.split rng) setup E.Embedding.histogram split in
          let acc, _, _ = eval_model (Rng.split rng) ~n_classes Ml.Model.rf p in
          Printf.printf " %8.4f%!" acc)
        levels;
      print_newline ())
    evaders

(* How much does each extra substitution round buy the evader? *)
let abl_sub_rounds () =
  header "Ablation: instruction-substitution rounds (distance + Game1 rf accuracy)";
  let n_classes = scale 16 in
  Printf.printf "%-8s %10s %10s %10s\n" "rounds" "distance" "size-ratio" "game1-acc";
  List.iter
    (fun rounds ->
      let ds, ratios =
        List.split
          (List.init (scale 30) (fun k ->
               let p = (Yali.Dataset.Genprog.nth (k mod 104)).generate (Rng.make k) in
               let m0 = Yali.lower p in
               let m1 = Ob.Sub.run ~rounds (Rng.make (k + 3)) m0 in
               ( E.Histogram.euclidean (E.Histogram.of_module m0)
                   (E.Histogram.of_module m1),
                 float_of_int (Ir.Irmod.instr_count m1)
                 /. float_of_int (Ir.Irmod.instr_count m0) )))
      in
      let evader =
        {
          Ob.Evader.ename = Printf.sprintf "sub%d" rounds;
          apply = (fun rng p -> Ob.Sub.run ~rounds rng (Yali.lower p));
        }
      in
      let rng = Rng.make (6000 + rounds) in
      let split =
        Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 12)
          ~test_per_class:(scale 4)
      in
      let p = prepare (Rng.split rng) (G.Game.game1 evader) E.Embedding.histogram split in
      let acc, _, _ = eval_model (Rng.split rng) ~n_classes Ml.Model.rf p in
      Printf.printf "%-8d %10.2f %10.2f %10.4f\n%!" rounds
        (Ml.Metrics.mean ds) (Ml.Metrics.mean ratios) acc)
    [ 1; 2; 3; 4 ]

(* How does bogus-control-flow density trade runtime for evasion? *)
let abl_bcf_probability () =
  header "Ablation: bcf block-selection probability (distance, slowdown, Game1 acc)";
  let n_classes = scale 16 in
  Printf.printf "%-8s %10s %10s %10s\n" "prob" "distance" "slowdown" "game1-acc";
  List.iter
    (fun prob ->
      let ds, slows =
        List.split
          (List.init (scale 20) (fun k ->
               let p = (Yali.Dataset.Genprog.nth ((k * 3) mod 104)).generate (Rng.make k) in
               let m0 = Yali.lower p in
               let m1 = Ob.Bcf.run ~probability:prob (Rng.make (k + 5)) m0 in
               let input = List.init 32 (fun j -> Int64.of_int ((j * 37) mod 200)) in
               let c0 = (Yali.Execution.run ~fuel:8_000_000 m0 input).cost in
               let c1 = (Yali.Execution.run ~fuel:80_000_000 m1 input).cost in
               ( E.Histogram.euclidean (E.Histogram.of_module m0)
                   (E.Histogram.of_module m1),
                 float_of_int c1 /. float_of_int c0 )))
      in
      let evader =
        {
          Ob.Evader.ename = Printf.sprintf "bcf%.2f" prob;
          apply = (fun rng p -> Ob.Bcf.run ~probability:prob rng (Yali.lower p));
        }
      in
      let rng = Rng.make (Hashtbl.hash ("abl-bcf", prob)) in
      let split =
        Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 12)
          ~test_per_class:(scale 4)
      in
      let p = prepare (Rng.split rng) (G.Game.game1 evader) E.Embedding.histogram split in
      let acc, _, _ = eval_model (Rng.split rng) ~n_classes Ml.Model.rf p in
      Printf.printf "%-8.2f %10.2f %10.2f %10.4f\n%!" prob (Ml.Metrics.mean ds)
        (Ml.Metrics.mean slows) acc)
    [ 0.25; 0.5; 0.75; 1.0 ]

(* Forest size: accuracy vs. training cost *)
let abl_rf_trees () =
  header "Ablation: random-forest size on Game0 (32 classes)";
  let n_classes = 32 in
  let rng = Rng.make 7777 in
  let split =
    Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 20)
      ~test_per_class:(scale 6)
  in
  let p = prepare (Rng.split rng) G.Game.game0 E.Embedding.histogram split in
  Printf.printf "%-8s %10s %10s\n" "trees" "accuracy" "train(s)";
  List.iter
    (fun n_trees ->
      let t0 = Yali.Exec.Telemetry.clock () in
      let params = { Ml.Random_forest.n_trees; max_depth = 24 } in
      let trained =
        Ml.Random_forest.train ~params (Rng.make 3) ~n_classes p.xs_train
          p.ys_train
      in
      let pred = Ml.Random_forest.predict_batch trained p.xs_test in
      Printf.printf "%-8d %10.4f %10.2f\n%!" n_trees
        (Ml.Metrics.accuracy p.ys_test pred)
        (Yali.Exec.Telemetry.clock () -. t0))
    [ 4; 8; 16; 32; 64; 128 ]

(* Raw opcode counts vs. L1-normalized proportions *)
let abl_histogram_norm () =
  header "Ablation: raw vs. L1-normalized histograms (rf, Game0 and Game1-ollvm)";
  let n_classes = scale 16 in
  let normalized =
    { E.Embedding.name = "histogram-l1"; kind = E.Embedding.Flat E.Histogram.normalized_of_module }
  in
  Printf.printf "%-14s %10s %14s\n" "embedding" "game0" "game1-ollvm";
  List.iter
    (fun (e : E.Embedding.t) ->
      let cell setup =
        let rng = Rng.make (Hashtbl.hash ("abl-h", e.name)) in
        let split =
          Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 12)
            ~test_per_class:(scale 4)
        in
        let p = prepare (Rng.split rng) setup e split in
        let acc, _, _ = eval_model (Rng.split rng) ~n_classes Ml.Model.rf p in
        acc
      in
      Printf.printf "%-14s %10.4f %14.4f\n%!" e.name (cell G.Game.game0)
        (cell (G.Game.game1 Ob.Evader.ollvm)))
    [ E.Embedding.histogram; normalized ]

(* DGCNN sort-pooling width *)
let abl_sortpool () =
  header "Ablation: DGCNN sort-pooling k (cfg_compact, Game0, 8 classes)";
  let n_classes = 8 in
  Printf.printf "%-8s %10s\n" "k" "accuracy";
  List.iter
    (fun k ->
      let rng = Rng.make (8800 + k) in
      let split =
        Yali.Dataset.Poj.make rng ~n_classes ~train_per_class:(scale 12)
          ~test_per_class:(scale 4)
      in
      let train_mods, test_mods =
        G.Arena.build_modules (Rng.split rng) G.Game.game0 split
      in
      let embed m = E.Embedding.to_graph E.Embedding.cfg_compact m in
      let graphs = Array.map (fun (m, _) -> embed m) train_mods in
      let ys = Array.map snd train_mods in
      let params = { Ml.Dgcnn.default_params with sortpool_k = k } in
      let trained =
        Ml.Dgcnn.train ~params (Rng.split rng) ~n_classes
          ~feat_dim:graphs.(0).E.Graph.feat_dim graphs ys
      in
      let pred = Array.map (fun (m, _) -> Ml.Dgcnn.predict trained (embed m)) test_mods in
      Printf.printf "%-8d %10.4f\n%!" k
        (Ml.Metrics.accuracy (Array.map snd test_mods) pred))
    [ 8; 16; 32 ]

let ablations =
  [
    ("abl-normalizer", abl_normalizer);
    ("abl-sub-rounds", abl_sub_rounds);
    ("abl-bcf-prob", abl_bcf_probability);
    ("abl-rf-trees", abl_rf_trees);
    ("abl-hist-norm", abl_histogram_norm);
    ("abl-sortpool", abl_sortpool);
  ]

(* ------------------------------------------------------------------ *)

let figures =
  [
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("fig13", fig13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
  ]

let telemetry_out = ref None
let json_out = ref None

(* flags come as "--flag value" or "--flag=value" *)
let parse_args (args : string list) : string list =
  let valued ~flag ~set = function
    | [] ->
        Printf.eprintf "%s expects a value\n" flag;
        exit 2
    | v :: rest ->
        set v;
        rest
  in
  let starts_with p a =
    String.length a > String.length p && String.sub a 0 (String.length p) = p
  in
  let cut p a = String.sub a (String.length p) (String.length a - String.length p) in
  let set_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Yali.Exec.Pool.set_jobs n
    | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" v;
        exit 2
  in
  let set_rss_cap v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> rss_cap_mb := f
    | _ ->
        Printf.eprintf "--rss-cap-mb expects a positive number, got %s\n" v;
        exit 2
  in
  let set_engine v =
    match Yali.Execution.engine_of_string v with
    | Some e -> Yali.Execution.set_engine e
    | None ->
        Printf.eprintf "--engine expects vm, ref, or native, got %s\n" v;
        exit 2
  in
  (* fail on an unwritable report path now, not after a long figure run *)
  let set_telemetry v =
    (try close_out (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 v)
     with Sys_error msg ->
       Printf.eprintf "--telemetry: cannot write %s\n" msg;
       exit 2);
    telemetry_out := Some v
  in
  let rec go acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        go acc rest
    | a :: rest when starts_with "--rounds=" a ->
        rounds_override := int_of_string_opt (cut "--rounds=" a);
        go acc rest
    | "--rss-cap-mb" :: rest ->
        go acc (valued ~flag:"--rss-cap-mb" ~set:set_rss_cap rest)
    | a :: rest when starts_with "--rss-cap-mb=" a ->
        set_rss_cap (cut "--rss-cap-mb=" a);
        go acc rest
    | "--jobs" :: rest -> go acc (valued ~flag:"--jobs" ~set:set_jobs rest)
    | a :: rest when starts_with "--jobs=" a ->
        set_jobs (cut "--jobs=" a);
        go acc rest
    | "--engine" :: rest -> go acc (valued ~flag:"--engine" ~set:set_engine rest)
    | a :: rest when starts_with "--engine=" a ->
        set_engine (cut "--engine=" a);
        go acc rest
    | "--telemetry" :: rest ->
        go acc (valued ~flag:"--telemetry" ~set:set_telemetry rest)
    | a :: rest when starts_with "--telemetry=" a ->
        set_telemetry (cut "--telemetry=" a);
        go acc rest
    | "--json" :: rest ->
        go acc (valued ~flag:"--json" ~set:(fun v -> json_out := Some v) rest)
    | a :: rest when starts_with "--json=" a ->
        json_out := Some (cut "--json=" a);
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

(* machine-readable run summary, e.g. for the CI perf-trajectory artifact.
   Sections with no recorded results (their target didn't run) are omitted
   rather than emitted as empty arrays, so a quick-mode [interp]-only run
   doesn't ship a meaningless "kernels": []. *)
let write_json path ~total (timings : (string * float) list) =
  let oc = open_out path in
  let extra_field (k, v) =
    if v = "true" || v = "false" || float_of_string_opt v <> None then
      Printf.fprintf oc ", \"%s\": %s" k v
    else Printf.fprintf oc ", \"%s\": \"%s\"" k v
  in
  (* one before/after results section: name + the two timing field names *)
  let section name (field_a, field_b) items =
    if items <> [] then begin
      Printf.fprintf oc ",\n  \"%s\": [\n" name;
      List.iteri
        (fun i (nm, a, b, extras) ->
          Printf.fprintf oc
            "    {\"name\": \"%s\", \"%s\": %.4f, \"%s\": %.4f, \"speedup\": %.2f"
            nm field_a a field_b b (a /. b);
          List.iter extra_field extras;
          Printf.fprintf oc "}%s\n"
            (if i = List.length items - 1 then "" else ","))
        items;
      Printf.fprintf oc "  ]"
    end
  in
  Printf.fprintf oc "{\n  \"quick\": %b,\n  \"jobs\": %d,\n" !quick
    (Yali.Exec.Pool.get_jobs ());
  Printf.fprintf oc "  \"total_seconds\": %.3f,\n  \"targets\": [\n" total;
  List.iteri
    (fun i (name, secs) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"seconds\": %.3f}%s\n" name
        secs
        (if i = List.length timings - 1 then "" else ","))
    timings;
  Printf.fprintf oc "  ]";
  section "kernels" ("reference_seconds", "fmat_seconds")
    (List.rev !kernel_results);
  section "vm" ("reference_seconds", "vm_seconds") (List.rev !vm_results);
  section "native" ("vm_seconds", "native_seconds") (List.rev !native_results);
  let f5 = List.rev !fig5_results in
  if f5 <> [] then begin
    Printf.fprintf oc ",\n  \"fig5\": [\n";
    List.iteri
      (fun i (nm, m, s, tput) ->
        Printf.fprintf oc
          "    {\"name\": \"%s\", \"accuracy_mean\": %.4f, \"accuracy_std\": \
           %.4f, \"train_rows_per_s\": %.1f}%s\n"
          nm m s tput
          (if i = List.length f5 - 1 then "" else ","))
      f5;
    Printf.fprintf oc "  ]"
  end;
  let splits = List.rev !engine_splits in
  if splits <> [] then begin
    Printf.fprintf oc ",\n  \"engine_splits\": [\n";
    List.iteri
      (fun i (workload, engine, compile_s, run_s) ->
        Printf.fprintf oc
          "    {\"name\": \"%s/%s\", \"compile_seconds\": %.4f, \
           \"run_seconds\": %.4f}%s\n"
          workload engine compile_s run_s
          (if i = List.length splits - 1 then "" else ","))
      splits;
    Printf.fprintf oc "  ]"
  end;
  Printf.fprintf oc "\n}\n";
  close_out oc

let () =
  if Array.length Sys.argv >= 4 && Sys.argv.(1) = serve_daemon_flag then
    serve_daemon ();
  let args = parse_args (List.tl (Array.to_list Sys.argv)) in
  let t0 = Yali.Exec.Telemetry.clock () in
  let timings = ref [] in
  let timed name f =
    let s0 = Yali.Exec.Telemetry.clock () in
    f ();
    timings := (name, Yali.Exec.Telemetry.clock () -. s0) :: !timings
  in
  (match args with
  | [] | [ "all" ] -> List.iter (fun (name, f) -> timed name f) figures
  | [ "ablations" ] -> List.iter (fun (name, f) -> timed name f) ablations
  | names ->
      List.iter
        (fun name ->
          if name = "micro" then timed "micro" micro
          else if name = "kernels" then timed "kernels" kernels
          else if name = "interp" then timed "interp" interp
          else if name = "native" then timed "native" native_bench
          else if name = "serve" then timed "serve" serve
          else if name = "corpus" then timed "corpus" corpus_bench
          else if name = "adapt" then timed "adapt" adapt_bench
          else if name = "nn" then timed "nn" nn_bench
          else
            match List.assoc_opt name (figures @ ablations) with
            | Some f -> timed name f
            | None ->
                Printf.eprintf
                  "unknown target %s (expected fig5..fig16, abl-*, ablations, micro, kernels, interp, native, serve, corpus, adapt, nn, all)\n"
                  name)
        names);
  let total = Yali.Exec.Telemetry.clock () -. t0 in
  Printf.printf "\ntotal time: %.1fs (jobs=%d)\n" total
    (Yali.Exec.Pool.get_jobs ());
  (match !json_out with
  | None -> ()
  | Some path ->
      write_json path ~total (List.rev !timings);
      Printf.printf "bench summary written to %s\n" path);
  match !telemetry_out with
  | None -> ()
  | Some path ->
      Yali.Exec.Telemetry.write_json path;
      Printf.printf "telemetry report written to %s\n" path
