# Convenience targets; everything is ultimately driven by dune.

.PHONY: all build test check smoke bench fmt clean

all: build

build:
	dune build

test:
	dune runtest

# The PR gate: full build + test suite, then a 2-domain smoke run of the
# figure harness to exercise the parallel/cached/telemetry paths end to end.
check: build test smoke

smoke:
	dune exec bench/main.exe -- --jobs 2 --quick fig5

bench:
	dune exec bench/main.exe

# Requires ocamlformat (not part of `check`: it is not installed everywhere).
fmt:
	dune fmt

clean:
	dune clean
