# Convenience targets; everything is ultimately driven by dune.

.PHONY: all build build-all test check smoke fuzz-smoke bench bench-kernels fmt clean

all: build

build:
	dune build

# @all also compiles examples/ and bench/, which `dune runtest` skips.
build-all:
	dune build @all

test:
	dune runtest

# The PR gate: full build (including examples and bench) + test suite, then
# a 2-domain smoke run of the figure harness to exercise the
# parallel/cached/telemetry paths end to end, and a short differential
# fuzzing run over every registered pipeline.
check: build-all test smoke fuzz-smoke

smoke:
	dune exec bench/main.exe -- --jobs 2 --quick fig5

# Differential oracle smoke: generator -> every pipeline variant -> verify +
# compare interpreter behaviour; exits non-zero on any finding.
fuzz-smoke:
	dune exec bin/yali_cli.exe -- fuzz --seed 2 --count 50 --jobs 2 --shrink

bench:
	dune exec bench/main.exe

# Numeric-kernel microbenchmarks (DESIGN.md §8): rewritten kernels vs the
# frozen lib/ml/reference.ml implementations, with speedups and
# predictions-match checks in BENCH_kernels.json.
bench-kernels:
	dune exec bench/main.exe -- --quick --json BENCH_kernels.json kernels

# Requires ocamlformat (not part of `check`: it is not installed everywhere).
fmt:
	dune fmt

clean:
	dune clean
