# Convenience targets; everything is ultimately driven by dune.

.PHONY: all build build-all test check check-smoke check-deep smoke fuzz-smoke bench bench-kernels bench-vm bench-native bench-serve bench-adapt bench-nn fmt clean

all: build

build:
	dune build

# @all also compiles examples/ and bench/, which `dune runtest` skips.
build-all:
	dune build @all

test:
	dune runtest

# The PR gate: full build (including examples and bench) + test suite, then
# a 2-domain smoke run of the figure harness to exercise the
# parallel/cached/telemetry paths end to end, and a short differential
# fuzzing run over every registered pipeline.
check: build-all test smoke fuzz-smoke

smoke:
	dune exec bench/main.exe -- --jobs 2 --quick fig5

# Differential oracle smoke: generator -> every pipeline variant -> verify +
# compare interpreter behaviour; exits non-zero on any finding.
fuzz-smoke:
	dune exec bin/yali_cli.exe -- fuzz --seed 2 --count 50 --jobs 2 --shrink

# Per-pass translation validation + invariant oracles, smoke tier (seconds).
# The same tier also runs inside `dune runtest` (test/test_check.ml).
check-smoke:
	dune exec bin/yali_cli.exe -- check --seed 42

# The deep correctness tier (DESIGN.md §9, minutes): 200 generated programs
# through every pass and pipeline with per-pass translation validation, plus
# 300-case sweeps of every invariant oracle.  Minimized counterexamples are
# written to _check_artifacts/ on failure.
check-deep:
	dune exec bin/yali_cli.exe -- check --deep --seed 42 --out _check_artifacts

bench:
	dune exec bench/main.exe

# Numeric-kernel microbenchmarks (DESIGN.md §8): rewritten kernels vs the
# frozen lib/ml/reference.ml implementations, with speedups and
# predictions-match checks in BENCH_kernels.json.
bench-kernels:
	dune exec bench/main.exe -- --quick --json BENCH_kernels.json kernels

# Engine benchmark (DESIGN.md §10): the frozen reference interpreter vs the
# pre-compiling VM on interpretation-bound kernels and a generated-program
# corpus, with speedups persisted in BENCH_vm.json.
bench-vm:
	dune exec bench/main.exe -- --quick --json BENCH_vm.json interp

# Native-tier benchmark (DESIGN.md §13): IR -> OCaml -> cmxs vs the
# pre-compiling VM, with per-engine compile/run splits and the break-even
# run count in BENCH_native.json.  Exits non-zero when the kernels speedup
# drops below 3x over the VM (skipped cleanly where the toolchain is
# absent).
bench-native:
	dune exec bench/main.exe -- --quick --json BENCH_native.json native

# Serving smoke + benchmark (DESIGN.md §11): trains and publishes a model,
# forks the daemon, drives it with concurrent clients, and writes
# throughput/latency/batch-size numbers to BENCH_serve.json.  Exits
# non-zero unless every reply is deterministic and SIGTERM shutdown is
# clean — this is CI's serve gate.
bench-serve:
	dune exec bench/main.exe -- --quick --jobs 2 serve

# Adaptive-evader gate (DESIGN.md §14): classifier-in-the-loop sequence
# search for each default model kind, Pareto fronts in BENCH_adapt.json.
# Exits non-zero unless at least two classifiers yield a 3-point front and
# the via-serve rerun is bit-identical — this is CI's adapt gate.
bench-adapt:
	dune exec bench/main.exe -- --quick --jobs 2 adapt

# Neural-tier gate (DESIGN.md §15): kernelized minibatch cnn/dgcnn
# trainers vs the frozen per-sample reference.  Exits non-zero unless the
# cnn step kernel is >=5x over the reference and the trained weights are
# bit-identical, jobs-invariant and stream-invariant -- this is CI's nn
# gate.  Numbers land in BENCH_nn.json.
bench-nn:
	dune exec bench/main.exe -- --quick nn

# Requires ocamlformat (not part of `check`: it is not installed everywhere).
fmt:
	dune fmt

clean:
	dune clean
