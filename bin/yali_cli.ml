(** yali — command-line driver.

    Subcommands:
    - [compile]   mini-C → IR, at a chosen optimization level
    - [run]       execute a program on an input stream
    - [obfuscate] apply an evader and print the result
    - [embed]     print a program's embedding vector
    - [generate]  sample a program from the synthetic POJ-104 corpus
    - [dataset]   export the corpus as .c files
    - [opt]       run a pass pipeline over textual IR (an `opt` clone)
    - [play]      run one adversarial game and report the verdict
    - [fuzz]      differential fuzzing of the whole pass stack
    - [check]     per-pass translation validation + invariant oracles
    - [train]     train a classifier and publish it into a model registry
    - [serve]     classification daemon on a Unix socket
    - [query]     talk to a running daemon
    - [adapt]     classifier-in-the-loop adaptive evaders (Pareto fronts) *)

open Cmdliner
module Rng = Yali.Rng

(* the one fatal-error exit path: code 2 = usage/flag error, code 1 =
   runtime failure *)
let die ~code fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit code)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let src_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Mini-C source file.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

(* execution-runtime knobs (lib/exec); results are bit-identical at any
   jobs setting *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (default: \\$(b,YALI_JOBS) \
           or the recommended domain count).")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write the execution runtime's JSON report (tasks, steals, cache \
           hit rates, per-phase time) to \\$(docv).")

let configure_jobs = function
  | Some n when n >= 1 -> Yali.Exec.Pool.set_jobs n
  | Some _ -> die ~code:2 "--jobs must be positive"
  | None -> ()

(* engine switchboard (lib/vm): all engines produce bit-identical outcomes,
   so this only trades speed (and, for native, a compile step) *)
let engine_arg =
  Arg.(
    value
    & opt string "vm"
    & info [ "engine" ] ~docv:"vm|ref|native"
        ~doc:
          "Execution engine: the pre-compiling virtual machine ($(b,vm), \
           default), the frozen reference interpreter ($(b,ref)), or the \
           native tier ($(b,native): IR compiled to OCaml and dynlinked; \
           falls back to $(b,vm) with a warning when no ocamlfind/ocamlopt \
           toolchain is on PATH); outcomes are bit-identical.")

let configure_engine s =
  match Yali.Execution.engine_of_string s with
  | Some e -> Yali.Execution.set_engine e
  | None -> die ~code:2 "unknown engine %s (have: vm ref native)" s

(* fail on an unwritable report path before the game runs, not after *)
let configure_telemetry = function
  | Some path -> (
      try close_out (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path)
      with Sys_error msg -> die ~code:2 "--telemetry: cannot write %s" msg)
  | None -> ()

let dump_telemetry = function
  | Some path ->
      Yali.Exec.Telemetry.write_json path;
      Printf.printf "telemetry report written to %s\n" path
  | None -> ()

let level_arg =
  let parse s =
    match Yali.Transforms.Pipeline.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg ("unknown optimization level: " ^ s))
  in
  let print fmt l =
    Fmt.string fmt (Yali.Transforms.Pipeline.level_to_string l)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Yali.Transforms.Pipeline.O0
    & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc:"Optimization level (O0..O3).")

(* -- compile --------------------------------------------------------------- *)

let compile_cmd =
  let run level file =
    let m = Yali.compile ~optimize:level (read_file file) in
    print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile mini-C to IR and print it.")
    Term.(const run $ level_arg $ src_arg)

(* -- run ------------------------------------------------------------------- *)

let input_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "input"; "i" ] ~docv:"INTS" ~doc:"Comma-separated input stream.")

let run_cmd =
  let run engine level file input =
    configure_engine engine;
    let m = Yali.compile ~optimize:level (read_file file) in
    let o = Yali.run m (List.map Int64.of_int input) in
    List.iter (fun x -> Printf.printf "%Ld\n" x) o.output;
    List.iter (fun x -> Printf.printf "%g\n" x) o.foutput;
    Printf.printf "; steps=%d cost=%d\n" o.steps o.cost
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a mini-C program (VM by default, --engine=ref for the \
             reference interpreter, --engine=native for the dynlinked \
             native tier).")
    Term.(const run $ engine_arg $ level_arg $ src_arg $ input_arg)

(* -- obfuscate ------------------------------------------------------------- *)

let evader_arg =
  Arg.(
    value
    & opt string "ollvm"
    & info [ "evader"; "e" ] ~docv:"NAME"
        ~doc:"Evader: none, O3, ollvm, bcf, fla, sub, rs, mcmc, drlsg, ga.")

let obfuscate_cmd =
  let run seed evader file =
    match Yali.Obfuscation.Evader.find evader with
    | None -> die ~code:2 "unknown evader: %s" evader
    | Some e ->
        let p = Yali.parse (read_file file) in
        let m = e.apply (Rng.make seed) p in
        print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "obfuscate" ~doc:"Apply an evader and print the resulting IR.")
    Term.(const run $ seed_arg $ evader_arg $ src_arg)

(* -- embed ----------------------------------------------------------------- *)

let embedding_arg =
  Arg.(
    value
    & opt string "histogram"
    & info [ "embedding" ] ~docv:"NAME"
        ~doc:
          "Embedding: histogram, milepost, ir2vec, cfg, cfg_compact, cdfg, \
           cdfg_compact, cdfg_plus, programl.")

let embed_cmd =
  let run level embedding file =
    match Yali.Embeddings.Embedding.find embedding with
    | None -> die ~code:2 "unknown embedding: %s" embedding
    | Some e ->
        let m = Yali.compile ~optimize:level (read_file file) in
        let v = Yali.Embeddings.Embedding.to_flat e m in
        Array.iteri (fun k x -> Printf.printf "%s%g" (if k = 0 then "" else " ") x) v;
        print_newline ()
  in
  Cmd.v
    (Cmd.info "embed" ~doc:"Print the embedding vector of a program.")
    Term.(const run $ level_arg $ embedding_arg $ src_arg)

(* -- generate --------------------------------------------------------------- *)

let generate_cmd =
  let problem_arg =
    Arg.(
      value
      & opt string "gcd"
      & info [ "problem"; "p" ] ~docv:"NAME"
          ~doc:"Problem class name (one of the 104).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the 104 problem classes.")
  in
  let run seed problem list_them =
    if list_them then
      List.iter
        (fun (p : Yali.Dataset.Genprog.problem) ->
          Printf.printf "%3d %s\n" p.pid p.pname)
        Yali.Dataset.Genprog.all
    else
      match Yali.Dataset.Genprog.find_by_name problem with
      | None -> die ~code:2 "unknown problem: %s" problem
      | Some p ->
          print_string
            (Yali.Minic.Pp.program_to_string (p.generate (Rng.make seed)))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Sample a program from the synthetic corpus.")
    Term.(const run $ seed_arg $ problem_arg $ list_arg)

(* -- dataset: export a corpus to disk --------------------------------------- *)

let dataset_cmd =
  let out_arg =
    Arg.(
      value & opt string "dataset"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let classes_arg =
    Arg.(value & opt int 104 & info [ "classes" ] ~doc:"Number of classes.")
  in
  let per_class_arg =
    Arg.(value & opt int 10 & info [ "per-class" ] ~doc:"Samples per class.")
  in
  let run seed out classes per_class =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let rng = Rng.make seed in
    List.iteri
      (fun k (p : Yali.Dataset.Genprog.problem) ->
        if k < classes then begin
          let dir = Filename.concat out (Printf.sprintf "%03d_%s" p.pid p.pname) in
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          for s = 0 to per_class - 1 do
            let prog = p.generate (Rng.split rng) in
            let path = Filename.concat dir (Printf.sprintf "%04d.c" s) in
            let oc = open_out path in
            output_string oc (Yali.Minic.Pp.program_to_string prog);
            close_out oc
          done
        end)
      Yali.Dataset.Genprog.all;
    Printf.printf "wrote %d classes x %d samples under %s/\n" classes per_class out
  in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:"Export the synthetic POJ-104-style corpus as .c files.")
    Term.(const run $ seed_arg $ out_arg $ classes_arg $ per_class_arg)

(* -- opt: an `opt`-style pass driver over textual IR ----------------------- *)

let opt_cmd =
  let passes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "passes" ] ~docv:"P1,P2,..."
          ~doc:
            "Pass pipeline, e.g. mem2reg,constfold,licm,dce.  Available: \
             mem2reg constfold instcombine dce simplifycfg gvn inline licm.")
  in
  let run passes file =
    let src = read_file file in
    (* accept either textual IR or mini-C *)
    let m =
      if String.length src > 0 && (src.[0] = ';' || String.length src > 6 && String.sub src 0 6 = "define")
      then Yali.Ir.Parser.parse_module src
      else Yali.lower (Yali.parse src)
    in
    let m =
      List.fold_left
        (fun m name ->
          match Yali.Transforms.Pipeline.find_pass name with
          | Some p -> p.prun m
          | None -> die ~code:2 "unknown pass: %s" name)
        m passes
    in
    (match Yali.Ir.Verify.check_module m with
    | [] -> ()
    | errs ->
        List.iter (fun e -> Fmt.epr "%a@." Yali.Ir.Verify.pp_error e) errs;
        die ~code:1 "opt: the pipeline produced an invalid module");
    print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run a pass pipeline over textual IR (or mini-C) and print the result.")
    Term.(const run $ passes_arg $ src_arg)

(* -- play ------------------------------------------------------------------- *)

let play_cmd =
  let game_arg =
    Arg.(value & opt int 1 & info [ "game"; "g" ] ~docv:"0..3" ~doc:"Which game.")
  in
  let model_arg =
    Arg.(
      value
      & opt string "rf"
      & info [ "model"; "m" ] ~docv:"NAME" ~doc:"Model: rf svm knn lr mlp cnn.")
  in
  let classes_arg =
    Arg.(value & opt int 8 & info [ "classes"; "c" ] ~doc:"Number of problem classes.")
  in
  let train_arg =
    Arg.(value & opt int 15 & info [ "train" ] ~doc:"Training samples per class.")
  in
  let test_arg =
    Arg.(value & opt int 5 & info [ "test" ] ~doc:"Test samples per class.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.5 & info [ "threshold"; "k" ] ~doc:"Win threshold K.")
  in
  let run seed jobs telemetry game evader model classes train test threshold =
    configure_jobs jobs;
    configure_telemetry telemetry;
    let e =
      match Yali.Obfuscation.Evader.find evader with
      | Some e -> e
      | None -> die ~code:2 "unknown evader: %s" evader
    in
    let m =
      match Yali.Ml.Model.find_flat model with
      | Some m -> m
      | None -> die ~code:2 "unknown model: %s" model
    in
    let setup =
      match game with
      | 0 -> Yali.Games.Game.game0
      | 1 -> Yali.Games.Game.game1 e
      | 2 -> Yali.Games.Game.game2 e
      | 3 -> Yali.Games.Game.game3 e
      | _ -> die ~code:2 "game must be 0..3"
    in
    let rng = Rng.make seed in
    let split =
      Yali.Dataset.Poj.make rng ~n_classes:classes ~train_per_class:train
        ~test_per_class:test
    in
    let r =
      Yali.Games.Arena.run_flat (Rng.split rng) ~n_classes:classes
        Yali.Embeddings.Embedding.histogram m setup split
    in
    Printf.printf "%s  evader=%s model=%s classes=%d\n" setup.game_name
      e.ename model classes;
    Printf.printf "accuracy=%.4f f1=%.4f model=%dKB train=%.1fs\n" r.accuracy
      r.f1 (r.model_bytes / 1024) r.train_seconds;
    Printf.printf "classifier %s (threshold %.2f)\n"
      (if r.accuracy > threshold then "WINS" else "LOSES")
      threshold;
    dump_telemetry telemetry
  in
  Cmd.v
    (Cmd.info "play" ~doc:"Play one adversarial game and report the verdict.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ game_arg $ evader_arg
      $ model_arg $ classes_arg $ train_arg $ test_arg $ threshold_arg)

(* -- fuzz: the differential oracle over the whole pass stack --------------- *)

let fuzz_cmd =
  let count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:
            "Programs to generate (default 200, unlimited when a time \
             budget is given).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop generating after \\$(docv) of wall time.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize failing programs before reporting them.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Yali.Fuzz.Corpus.default_dir
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory, replayed before fresh generation (skipped \
             when absent); \"none\" disables.")
  in
  let save_arg =
    Arg.(
      value & flag
      & info [ "save" ]
          ~doc:"Persist minimized reproducers into the corpus directory.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-chunk progress.")
  in
  let variants_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "variants" ] ~docv:"V1,V2,..."
          ~doc:
            "Restrict the differential check to these pipeline variants \
             (default: all; see the DESIGN notes for the registry).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "dump" ] ~docv:"N"
          ~doc:"Print generated program \\$(docv) of this seed and exit.")
  in
  let run seed jobs telemetry engine count budget shrink corpus save quiet
      variants dump =
    configure_jobs jobs;
    configure_telemetry telemetry;
    configure_engine engine;
    (match dump with
    | Some ix ->
        let root = Yali.Rng.make seed in
        let pri = Yali.Rng.split_ix (Yali.Rng.split_ix root 1) ix in
        let p = Yali.Fuzz.Gen.program (Yali.Rng.split_ix pri 0) in
        print_string (Yali.Minic.Pp.program_to_string p);
        exit 0
    | None -> ());
    let variants =
      match variants with
      | None -> Yali.Fuzz.Pipelines.all
      | Some names ->
          List.map
            (fun n ->
              match Yali.Fuzz.Pipelines.find n with
              | Some v -> v
              | None ->
                  die ~code:2 "unknown variant %s (have: %s)" n
                    (String.concat " " (Yali.Fuzz.Pipelines.names ())))
            names
    in
    let count =
      match (count, budget) with
      | Some n, _ -> n
      | None, Some _ -> max_int
      | None, None -> 200
    in
    let cfg =
      {
        Yali.Fuzz.Driver.default with
        seed;
        count;
        time_budget = budget;
        shrink;
        corpus_dir = (if corpus = "none" then None else Some corpus);
        save_findings = save;
        variants;
        log = (if quiet then ignore else prerr_endline);
      }
    in
    Printf.printf "fuzzing %d pipeline variants (seed %d, jobs %d)\n%!"
      (List.length cfg.variants) seed
      (Yali.Exec.Pool.get_jobs ());
    let r = Yali.Fuzz.Driver.run cfg in
    print_string (Yali.Fuzz.Driver.summary r);
    dump_telemetry telemetry;
    if r.r_findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz every pipeline variant against the -O0 \
          baseline; exits nonzero on any divergence.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ engine_arg $ count_arg
      $ budget_arg $ shrink_arg $ corpus_arg $ save_arg $ quiet_arg
      $ variants_arg $ dump_arg)

(* -- check: per-pass translation validation + invariant oracles ------------ *)

let check_cmd =
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Run the deep tier (hundreds of generated programs per pass and \
             deep oracle sweeps) instead of the smoke tier.")
  in
  let per_pass_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "per-pass" ] ~docv:"N"
          ~doc:
            "Generated programs validated against every pass (default: 5 \
             smoke, 200 deep).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "On failure, write minimized counterexamples and the report \
             into \\$(docv) (CI uploads these as artifacts).")
  in
  let save_arg =
    Arg.(
      value & flag
      & info [ "save" ]
          ~doc:"Persist minimized reproducers into the regression corpus.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Yali.Check.Corpus.default_dir
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Regression corpus replayed through every pass before fresh \
             generation; \"none\" disables.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-chunk progress.")
  in
  let run seed jobs telemetry engine deep per_pass out save corpus quiet =
    configure_jobs jobs;
    configure_telemetry telemetry;
    configure_engine engine;
    let tier = if deep then Yali.Check.Engine.Deep else Yali.Check.Engine.Smoke in
    let cfg =
      {
        Yali.Check.Engine.default with
        seed;
        tier;
        per_pass;
        out_dir = out;
        save_findings = save;
        corpus_dir = (if corpus = "none" then None else Some corpus);
        log = (if quiet then ignore else prerr_endline);
      }
    in
    Printf.printf "validating %d passes/pipelines (%s tier, seed %d, jobs %d)\n%!"
      (List.length (Yali.Check.Engine.entries ()))
      (if deep then "deep" else "smoke")
      seed
      (Yali.Exec.Pool.get_jobs ());
    let r = Yali.Check.Engine.run cfg in
    print_string (Yali.Check.Engine.summary r);
    dump_telemetry telemetry;
    if not r.Yali.Check.Engine.e_ok then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Translation-validate every pass and pipeline on generated \
          programs and run the invariant oracles; exits nonzero on any \
          failure.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ engine_arg $ deep_arg
      $ per_pass_arg $ out_arg $ save_arg $ corpus_arg $ quiet_arg)

(* -- train / serve / query: classification-as-a-service -------------------- *)

let registry_arg =
  Arg.(
    value
    & opt string "models"
    & info [ "registry" ] ~docv:"DIR" ~doc:"Model registry directory.")

let socket_arg =
  Arg.(
    value
    & opt string "yali.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path.")

let train_cmd =
  let model_arg =
    Arg.(
      value
      & opt string "rf"
      & info [ "model"; "m" ] ~docv:"NAME" ~doc:"Model: rf svm knn lr mlp cnn.")
  in
  let classes_arg =
    Arg.(value & opt int 8 & info [ "classes"; "c" ] ~doc:"Number of problem classes.")
  in
  let per_class_arg =
    Arg.(value & opt int 15 & info [ "per-class" ] ~doc:"Training samples per class.")
  in
  let version_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "version" ] ~docv:"N"
          ~doc:"Registry version tag (default: latest+1).")
  in
  let corpus_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Train out of core from a stored corpus ($(b,yali corpus gen)) \
             instead of generating in memory; --classes/--per-class are \
             taken from the corpus.")
  in
  let block_rows_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block-rows" ] ~docv:"N"
          ~doc:"Feature rows resident at once when training from a corpus.")
  in
  let run seed jobs registry model embedding classes per_class version corpus
      block_rows =
    configure_jobs jobs;
    let e =
      match Yali.Embeddings.Embedding.find embedding with
      | Some e -> e
      | None -> die ~code:2 "unknown embedding: %s" embedding
    in
    let trained =
      match corpus with
      | None ->
          Yali.Serve.Registry.train ~seed ~embedding:e ~kind:model
            ~n_classes:classes ~per_class
      | Some dir ->
          Yali.Corpus.Train.train ~dir ~embedding:e ~kind:model ~seed
            ?block_rows ()
    in
    match trained with
    | Error msg -> die ~code:2 "%s" msg
    | Ok entry ->
        let v, path =
          Yali.Serve.Registry.publish ~dir:registry ?version ~meta:entry.meta
            entry.snapshot
        in
        Printf.printf "published %s@%d (%s, %d classes, dim %d, %d rows) -> %s\n"
          model v embedding entry.meta.n_classes entry.meta.dim
          entry.meta.n_train path
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train a classifier on the synthetic corpus (in memory, or \
             streamed from an on-disk corpus with --corpus) and publish its \
             snapshot into the model registry.")
    Term.(
      const run $ seed_arg $ jobs_arg $ registry_arg $ model_arg
      $ embedding_arg $ classes_arg $ per_class_arg $ version_arg
      $ corpus_dir_arg $ block_rows_arg)

let serve_cmd =
  let model_arg =
    Arg.(
      value
      & opt string "rf"
      & info [ "model"; "m" ] ~docv:"NAME[@VER]"
          ~doc:"Registry model spec, e.g. rf or rf@3 (default: latest).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt int Yali.Serve.Server.default.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Pending requests before the daemon answers busy.")
  in
  let max_batch_arg =
    Arg.(
      value
      & opt int Yali.Serve.Server.default.max_batch
      & info [ "max-batch" ] ~docv:"N" ~doc:"Micro-batch size cap.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No startup/shutdown log.")
  in
  let run jobs socket registry model queue_cap max_batch quiet =
    configure_jobs jobs;
    if queue_cap < 1 then die ~code:2 "--queue-cap must be positive";
    if max_batch < 1 then die ~code:2 "--max-batch must be positive";
    let cfg =
      {
        Yali.Serve.Server.socket;
        registry_dir = registry;
        model_spec = model;
        queue_cap;
        max_batch;
        log = (if quiet then ignore else prerr_endline);
      }
    in
    match Yali.Serve.Server.run cfg with
    | Ok () -> ()
    | Error msg -> die ~code:1 "serve: %s" msg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve classifications over a Unix socket, micro-batching \
             concurrent requests (replies are independent of batching and \
             --jobs).")
    Term.(
      const run $ jobs_arg $ socket_arg $ registry_arg $ model_arg
      $ queue_cap_arg $ max_batch_arg $ quiet_arg)

let query_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Program to classify.")
  in
  let fmt_arg =
    Arg.(
      value
      & opt string "minic"
      & info [ "fmt" ] ~docv:"minic|ir|bin"
          ~doc:
            "How \\$(b,FILE) is sent: mini-C source ($(b,minic), default), \
             textual IR ($(b,ir)), or a binary codec blob ($(b,bin)).")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Just check the daemon is alive.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the daemon's telemetry JSON.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to exit.")
  in
  let run socket file fmt ping stats shutdown =
    let c =
      try Yali.Serve.Client.connect socket
      with Unix.Unix_error (err, _, _) ->
        die ~code:1 "cannot reach %s: %s" socket (Unix.error_message err)
    in
    Fun.protect
      ~finally:(fun () -> Yali.Serve.Client.close c)
      (fun () ->
        if ping then
          if Yali.Serve.Client.ping c then print_endline "pong"
          else die ~code:1 "no pong from %s" socket
        else if stats then
          match Yali.Serve.Client.stats c with
          | Ok json -> print_endline json
          | Error msg -> die ~code:1 "stats: %s" msg
        else if shutdown then Yali.Serve.Client.shutdown c
        else
          let file =
            match file with
            | Some f -> f
            | None -> die ~code:2 "query needs a FILE (or --ping/--stats/--shutdown)"
          in
          let fmt =
            match fmt with
            | "minic" -> Yali.Serve.Wire.Minic
            | "ir" -> Yali.Serve.Wire.Textual
            | "bin" -> Yali.Serve.Wire.Binary
            | other -> die ~code:2 "unknown --fmt %s (have: minic ir bin)" other
          in
          match
            Yali.Serve.Client.request c
              (Yali.Serve.Wire.Classify { fmt; blob = read_file file })
          with
          | Yali.Serve.Wire.Class { cls; queue_us; batch } ->
              Printf.printf "class=%d queue_us=%d batch=%d\n" cls queue_us batch
          | Yali.Serve.Wire.Busy -> die ~code:1 "daemon is busy; retry"
          | Yali.Serve.Wire.Error msg -> die ~code:1 "daemon error: %s" msg
          | _ -> die ~code:1 "unexpected reply")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Classify a program against a running daemon.")
    Term.(
      const run $ socket_arg $ file_arg $ fmt_arg $ ping_arg $ stats_arg
      $ shutdown_arg)

(* -- corpus: streaming paper-scale dataset generation ----------------------- *)

let corpus_cmd =
  let dir_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let gen_cmd =
    let out_arg =
      Arg.(
        value
        & opt string "corpus"
        & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Corpus output directory.")
    in
    let dataset_arg =
      Arg.(
        value
        & opt string "poj"
        & info [ "dataset" ] ~docv:"NAME" ~doc:"Generator: poj or genprog2.")
    in
    let classes_arg =
      Arg.(value & opt int 104 & info [ "classes"; "c" ] ~doc:"Number of classes.")
    in
    let per_class_arg =
      Arg.(value & opt int 500 & info [ "per-class" ] ~doc:"Programs per class.")
    in
    let shard_arg =
      Arg.(
        value
        & opt int 1024
        & info [ "records-per-shard" ] ~docv:"N"
            ~doc:"Records per shard file (one generation task per shard).")
    in
    let run seed jobs out dataset classes per_class records_per_shard =
      configure_jobs jobs;
      let spec =
        { Yali.Corpus.Gen.dataset; seed; n_classes = classes; per_class }
      in
      (try Yali.Corpus.Gen.generate ~dir:out ~records_per_shard spec
       with Invalid_argument msg -> die ~code:2 "%s" msg);
      let r = Yali.Corpus.Store.open_ out in
      Printf.printf "wrote %s: %d records in %d shards (%d bytes) under %s/\n"
        (Yali.Corpus.Store.meta r)
        (Yali.Corpus.Store.length r)
        (Yali.Corpus.Store.shard_count r)
        (Yali.Corpus.Store.total_bytes r)
        out;
      Yali.Corpus.Store.close r
    in
    Cmd.v
      (Cmd.info "gen"
         ~doc:"Generate a sharded on-disk corpus, streaming each program \
               straight to its shard (shard-parallel, deterministic at any \
               --jobs).")
      Term.(
        const run $ seed_arg $ jobs_arg $ out_arg $ dataset_arg $ classes_arg
        $ per_class_arg $ shard_arg)
  in
  let stat_cmd =
    let run dir =
      match Yali.Corpus.Store.open_ dir with
      | exception Yali.Util.Bin.Corrupt msg -> die ~code:1 "corrupt corpus: %s" msg
      | exception Sys_error msg -> die ~code:1 "no corpus: %s" msg
      | r ->
          let counts = Array.make (Yali.Corpus.Store.n_classes r) 0 in
          Array.iter
            (fun l -> counts.(l) <- counts.(l) + 1)
            (Yali.Corpus.Store.labels r);
          let min_c = Array.fold_left min max_int counts in
          let max_c = Array.fold_left max 0 counts in
          Printf.printf "spec:      %s\n" (Yali.Corpus.Store.meta r);
          Printf.printf "records:   %d\n" (Yali.Corpus.Store.length r);
          Printf.printf "classes:   %d (%d..%d per class)\n"
            (Yali.Corpus.Store.n_classes r) min_c max_c;
          Printf.printf "shards:    %d\n" (Yali.Corpus.Store.shard_count r);
          Printf.printf "bytes:     %d\n" (Yali.Corpus.Store.total_bytes r);
          Yali.Corpus.Store.close r
    in
    Cmd.v
      (Cmd.info "stat" ~doc:"Validate a corpus directory and print its shape.")
      Term.(const run $ dir_pos)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:"Paper-scale on-disk corpora: streaming generation and \
             inspection.")
    [ gen_cmd; stat_cmd ]

(* -- adapt: classifier-in-the-loop adaptive evaders ------------------------- *)

(* Best-effort removal of the scratch registry/socket directory. *)
let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* Publish the prepared snapshots into a scratch registry, spawn one
   [yali serve] daemon per model kind (a [create_process] re-exec of this
   binary: [fork] is forbidden once the pool has spawned a domain), and
   hand [f] a per-kind remote margins oracle.  Margins travel f64-exact,
   so the report is bit-identical to the in-process run. *)
let with_serve_oracles ~log (cfg : Yali.Adapt.Driver.config)
    (prep : Yali.Adapt.Driver.prepared)
    (f : (string -> (Yali.Ir.Irmod.t -> float array) option) -> 'a) : 'a =
  let module Registry = Yali.Serve.Registry in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-adapt-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let registry = Filename.concat dir "models" in
  let dim =
    match prep.p_challenges with
    | [||] -> die ~code:1 "adapt: no challenges to size the embedding from"
    | chs ->
        Array.length
          (Yali.Embeddings.Embedding.to_flat Yali.Adapt.Driver.embedding
             chs.(0).Yali.Adapt.Fitness.ch_module)
  in
  List.iter
    (fun (kind, snapshot) ->
      let meta =
        {
          Registry.kind;
          version = 0;
          embedding = Yali.Adapt.Driver.embedding.name;
          n_classes = cfg.a_classes;
          dim;
          n_train = prep.p_n_train;
          seed = cfg.a_seed;
          source = "adapt:prepared";
        }
      in
      let v, _ = Registry.publish ~dir:registry ~meta snapshot in
      log (Printf.sprintf "adapt: published %s@%d to %s" kind v registry))
    prep.p_snapshots;
  flush stdout;
  flush stderr;
  let daemons =
    List.map
      (fun (kind, _) ->
        let socket = Filename.concat dir (kind ^ ".sock") in
        let pid =
          Unix.create_process Sys.executable_name
            [|
              Sys.executable_name; "serve"; "--socket"; socket; "--registry";
              registry; "--model"; kind; "--quiet";
            |]
            Unix.stdin Unix.stdout Unix.stderr
        in
        (kind, socket, pid))
      prep.p_snapshots
  in
  let kill_all () =
    List.iter
      (fun (_, _, pid) ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      daemons;
    remove_tree dir
  in
  Fun.protect ~finally:kill_all (fun () ->
      let rec await_socket socket tries =
        if Sys.file_exists socket then ()
        else if tries = 0 then
          die ~code:1 "adapt: daemon socket %s never appeared" socket
        else begin
          Unix.sleepf 0.05;
          await_socket socket (tries - 1)
        end
      in
      let remotes =
        List.map
          (fun (kind, socket, _) ->
            await_socket socket 200;
            (kind, Yali.Adapt.Remote.connect ~socket))
          daemons
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun (_, r) -> Yali.Adapt.Remote.close r) remotes)
        (fun () ->
          log
            (Printf.sprintf "adapt: %d daemons up, routing margins via serve"
               (List.length remotes));
          f (fun kind ->
              Option.map Yali.Adapt.Remote.oracle
                (List.assoc_opt kind remotes))))

let adapt_cmd =
  let module D = Yali.Adapt.Driver in
  let classes_arg =
    Arg.(
      value
      & opt int D.default.a_classes
      & info [ "classes"; "c" ] ~doc:"Number of problem classes.")
  in
  let train_arg =
    Arg.(
      value
      & opt int D.default.a_train_per_class
      & info [ "train-per-class" ] ~doc:"Training samples per class.")
  in
  let challenges_arg =
    Arg.(
      value
      & opt int D.default.a_challenges_per_class
      & info [ "challenges-per-class" ]
          ~doc:"Held-out challenge programs per class.")
  in
  let models_arg =
    Arg.(
      value
      & opt string (String.concat "," D.default.a_models)
      & info [ "models" ] ~docv:"K1,K2"
          ~doc:"Comma-separated snapshot kinds to attack: rf svm knn lr mlp cnn.")
  in
  let algo_arg =
    Arg.(
      value
      & opt string (Yali.Adapt.Search.algo_to_string D.default.a_algo)
      & info [ "algo" ] ~docv:"rs|hill|mcmc|ga" ~doc:"Search strategy.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int D.default.a_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Fitness evaluations per model (the empty sequence counts).")
  in
  let batch_arg =
    Arg.(
      value
      & opt int D.default.a_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Parallel evaluation width (and mcmc chain count / ga \
             population).")
  in
  let max_len_arg =
    Arg.(
      value
      & opt int D.default.a_max_len
      & info [ "max-len" ] ~docv:"N" ~doc:"Longest pass sequence searched.")
  in
  let lambda_arg =
    Arg.(
      value
      & opt float D.default.a_lambda
      & info [ "lambda" ] ~docv:"F"
          ~doc:"Fitness price per unit of cost multiplier above 1.")
  in
  let vectors_arg =
    Arg.(
      value
      & opt int D.default.a_vectors
      & info [ "vectors" ] ~docv:"N"
          ~doc:"Seeded input vectors per challenge (behaviour witness).")
  in
  let fuel_arg =
    Arg.(
      value
      & opt int D.default.a_fuel
      & info [ "fuel" ] ~docv:"N" ~doc:"Baseline interpreter fuel.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the JSON report to \\$(docv).")
  in
  let via_serve_arg =
    Arg.(
      value
      & flag
      & info [ "via-serve" ]
          ~doc:
            "Route classifier queries through freshly spawned $(b,yali \
             serve) daemons (one per model kind) instead of in-process \
             snapshots; the report is bit-identical either way.")
  in
  let run seed jobs classes train_pc chal_pc models algo budget batch max_len
      lambda vectors fuel out via_serve =
    configure_jobs jobs;
    let algo =
      match Yali.Adapt.Search.algo_of_string algo with
      | Some a -> a
      | None -> die ~code:2 "unknown --algo %s (have: rs hill mcmc ga)" algo
    in
    let models =
      String.split_on_char ',' models
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if models = [] then die ~code:2 "--models must name at least one kind";
    if budget < 1 then die ~code:2 "--budget must be positive";
    if batch < 1 then die ~code:2 "--batch must be positive";
    if max_len < 1 then die ~code:2 "--max-len must be positive";
    if vectors < 1 then die ~code:2 "--vectors must be positive";
    let cfg =
      {
        D.a_seed = seed;
        a_classes = classes;
        a_train_per_class = train_pc;
        a_challenges_per_class = chal_pc;
        a_models = models;
        a_algo = algo;
        a_budget = budget;
        a_batch = batch;
        a_max_len = max_len;
        a_lambda = lambda;
        a_vectors = vectors;
        a_fuel = fuel;
      }
    in
    let log = prerr_endline in
    let prep = try D.prepare ~log cfg with Failure msg -> die ~code:2 "%s" msg in
    if Array.length prep.p_challenges = 0 then
      die ~code:1 "adapt: every challenge was dropped (raise --fuel?)";
    let report =
      if via_serve then
        with_serve_oracles ~log cfg prep (fun oracle_for ->
            D.search_fronts ~log ~oracle_for cfg prep)
      else D.search_fronts ~log cfg prep
    in
    Printf.printf "adapt: %s search, budget %d, lambda %g, %d challenges%s\n"
      (Yali.Adapt.Search.algo_to_string algo)
      budget lambda report.r_challenges
      (if via_serve then " (margins via serve)" else "");
    List.iter
      (fun (f : D.model_front) ->
        Printf.printf
          "%-5s base evasion %.2f -> best %.2f at %.2fx cost (%s), front %d \
           points\n"
          f.mf_kind f.mf_base.Yali.Adapt.Fitness.e_evasion
          f.mf_best.Yali.Adapt.Fitness.e_evasion
          f.mf_best.Yali.Adapt.Fitness.e_cost
          (Yali.Adapt.Seqspace.to_string f.mf_best.Yali.Adapt.Fitness.e_seq)
          (List.length f.mf_front);
        List.iter
          (fun (p : Yali.Adapt.Pareto.point) ->
            Printf.printf "      %.2fx  %.2f  %s\n" p.p_cost p.p_evasion
              p.p_seq)
          f.mf_front)
      report.r_fronts;
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (D.report_to_json cfg report);
        close_out oc;
        Printf.printf "report written to %s\n" path
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Search obfuscation-pass sequences with the trained classifier in \
          the loop and report the cost-priced Pareto front (evasion rate \
          vs abstract-cost multiplier); deterministic in --seed at any \
          --jobs.")
    Term.(
      const run $ seed_arg $ jobs_arg $ classes_arg $ train_arg
      $ challenges_arg $ models_arg $ algo_arg $ budget_arg $ batch_arg
      $ max_len_arg $ lambda_arg $ vectors_arg $ fuel_arg $ out_arg
      $ via_serve_arg)

let () =
  let doc = "a game-based framework to compare program classifiers and evaders" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "yali" ~doc)
          [ compile_cmd; run_cmd; obfuscate_cmd; embed_cmd; generate_cmd; dataset_cmd; opt_cmd; play_cmd; fuzz_cmd; check_cmd; corpus_cmd; train_cmd; serve_cmd; query_cmd; adapt_cmd ]))
