(** yali — command-line driver.

    Subcommands:
    - [compile]   mini-C → IR, at a chosen optimization level
    - [run]       execute a program on an input stream
    - [obfuscate] apply an evader and print the result
    - [embed]     print a program's embedding vector
    - [generate]  sample a program from the synthetic POJ-104 corpus
    - [dataset]   export the corpus as .c files
    - [opt]       run a pass pipeline over textual IR (an `opt` clone)
    - [play]      run one adversarial game and report the verdict
    - [fuzz]      differential fuzzing of the whole pass stack
    - [check]     per-pass translation validation + invariant oracles *)

open Cmdliner
module Rng = Yali.Rng

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let src_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Mini-C source file.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

(* execution-runtime knobs (lib/exec); results are bit-identical at any
   jobs setting *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (default: \\$(b,YALI_JOBS) \
           or the recommended domain count).")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write the execution runtime's JSON report (tasks, steals, cache \
           hit rates, per-phase time) to \\$(docv).")

let configure_jobs = function
  | Some n when n >= 1 -> Yali.Exec.Pool.set_jobs n
  | Some _ -> prerr_endline "--jobs must be positive"; exit 2
  | None -> ()

(* engine switchboard (lib/vm): the compiled VM and the reference
   interpreter produce bit-identical outcomes, so this only trades speed *)
let engine_arg =
  Arg.(
    value
    & opt string "vm"
    & info [ "engine" ] ~docv:"vm|ref"
        ~doc:
          "Execution engine: the pre-compiling virtual machine ($(b,vm), \
           default) or the frozen reference interpreter ($(b,ref)); \
           outcomes are bit-identical.")

let configure_engine s =
  match Yali.Execution.engine_of_string s with
  | Some e -> Yali.Execution.set_engine e
  | None ->
      Printf.eprintf "unknown engine %s (have: vm ref)\n" s;
      exit 2

(* fail on an unwritable report path before the game runs, not after *)
let configure_telemetry = function
  | Some path -> (
      try close_out (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path)
      with Sys_error msg ->
        Printf.eprintf "--telemetry: cannot write %s\n" msg;
        exit 2)
  | None -> ()

let dump_telemetry = function
  | Some path ->
      Yali.Exec.Telemetry.write_json path;
      Printf.printf "telemetry report written to %s\n" path
  | None -> ()

let level_arg =
  let parse s =
    match Yali.Transforms.Pipeline.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg ("unknown optimization level: " ^ s))
  in
  let print fmt l =
    Fmt.string fmt (Yali.Transforms.Pipeline.level_to_string l)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Yali.Transforms.Pipeline.O0
    & info [ "O"; "opt" ] ~docv:"LEVEL" ~doc:"Optimization level (O0..O3).")

(* -- compile --------------------------------------------------------------- *)

let compile_cmd =
  let run level file =
    let m = Yali.compile ~optimize:level (read_file file) in
    print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile mini-C to IR and print it.")
    Term.(const run $ level_arg $ src_arg)

(* -- run ------------------------------------------------------------------- *)

let input_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "input"; "i" ] ~docv:"INTS" ~doc:"Comma-separated input stream.")

let run_cmd =
  let run engine level file input =
    configure_engine engine;
    let m = Yali.compile ~optimize:level (read_file file) in
    let o = Yali.run m (List.map Int64.of_int input) in
    List.iter (fun x -> Printf.printf "%Ld\n" x) o.output;
    List.iter (fun x -> Printf.printf "%g\n" x) o.foutput;
    Printf.printf "; steps=%d cost=%d\n" o.steps o.cost
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a mini-C program (VM by default, --engine=ref for the \
             reference interpreter).")
    Term.(const run $ engine_arg $ level_arg $ src_arg $ input_arg)

(* -- obfuscate ------------------------------------------------------------- *)

let evader_arg =
  Arg.(
    value
    & opt string "ollvm"
    & info [ "evader"; "e" ] ~docv:"NAME"
        ~doc:"Evader: none, O3, ollvm, bcf, fla, sub, rs, mcmc, drlsg, ga.")

let obfuscate_cmd =
  let run seed evader file =
    match Yali.Obfuscation.Evader.find evader with
    | None -> prerr_endline ("unknown evader: " ^ evader); exit 1
    | Some e ->
        let p = Yali.parse (read_file file) in
        let m = e.apply (Rng.make seed) p in
        print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "obfuscate" ~doc:"Apply an evader and print the resulting IR.")
    Term.(const run $ seed_arg $ evader_arg $ src_arg)

(* -- embed ----------------------------------------------------------------- *)

let embedding_arg =
  Arg.(
    value
    & opt string "histogram"
    & info [ "embedding" ] ~docv:"NAME"
        ~doc:
          "Embedding: histogram, milepost, ir2vec, cfg, cfg_compact, cdfg, \
           cdfg_compact, cdfg_plus, programl.")

let embed_cmd =
  let run level embedding file =
    match Yali.Embeddings.Embedding.find embedding with
    | None -> prerr_endline ("unknown embedding: " ^ embedding); exit 1
    | Some e ->
        let m = Yali.compile ~optimize:level (read_file file) in
        let v = Yali.Embeddings.Embedding.to_flat e m in
        Array.iteri (fun k x -> Printf.printf "%s%g" (if k = 0 then "" else " ") x) v;
        print_newline ()
  in
  Cmd.v
    (Cmd.info "embed" ~doc:"Print the embedding vector of a program.")
    Term.(const run $ level_arg $ embedding_arg $ src_arg)

(* -- generate --------------------------------------------------------------- *)

let generate_cmd =
  let problem_arg =
    Arg.(
      value
      & opt string "gcd"
      & info [ "problem"; "p" ] ~docv:"NAME"
          ~doc:"Problem class name (one of the 104).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the 104 problem classes.")
  in
  let run seed problem list_them =
    if list_them then
      List.iter
        (fun (p : Yali.Dataset.Genprog.problem) ->
          Printf.printf "%3d %s\n" p.pid p.pname)
        Yali.Dataset.Genprog.all
    else
      match Yali.Dataset.Genprog.find_by_name problem with
      | None -> prerr_endline ("unknown problem: " ^ problem); exit 1
      | Some p ->
          print_string
            (Yali.Minic.Pp.program_to_string (p.generate (Rng.make seed)))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Sample a program from the synthetic corpus.")
    Term.(const run $ seed_arg $ problem_arg $ list_arg)

(* -- dataset: export a corpus to disk --------------------------------------- *)

let dataset_cmd =
  let out_arg =
    Arg.(
      value & opt string "dataset"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let classes_arg =
    Arg.(value & opt int 104 & info [ "classes" ] ~doc:"Number of classes.")
  in
  let per_class_arg =
    Arg.(value & opt int 10 & info [ "per-class" ] ~doc:"Samples per class.")
  in
  let run seed out classes per_class =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let rng = Rng.make seed in
    List.iteri
      (fun k (p : Yali.Dataset.Genprog.problem) ->
        if k < classes then begin
          let dir = Filename.concat out (Printf.sprintf "%03d_%s" p.pid p.pname) in
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          for s = 0 to per_class - 1 do
            let prog = p.generate (Rng.split rng) in
            let path = Filename.concat dir (Printf.sprintf "%04d.c" s) in
            let oc = open_out path in
            output_string oc (Yali.Minic.Pp.program_to_string prog);
            close_out oc
          done
        end)
      Yali.Dataset.Genprog.all;
    Printf.printf "wrote %d classes x %d samples under %s/\n" classes per_class out
  in
  Cmd.v
    (Cmd.info "dataset"
       ~doc:"Export the synthetic POJ-104-style corpus as .c files.")
    Term.(const run $ seed_arg $ out_arg $ classes_arg $ per_class_arg)

(* -- opt: an `opt`-style pass driver over textual IR ----------------------- *)

let opt_cmd =
  let passes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "passes" ] ~docv:"P1,P2,..."
          ~doc:
            "Pass pipeline, e.g. mem2reg,constfold,licm,dce.  Available: \
             mem2reg constfold instcombine dce simplifycfg gvn inline licm.")
  in
  let run passes file =
    let src = read_file file in
    (* accept either textual IR or mini-C *)
    let m =
      if String.length src > 0 && (src.[0] = ';' || String.length src > 6 && String.sub src 0 6 = "define")
      then Yali.Ir.Parser.parse_module src
      else Yali.lower (Yali.parse src)
    in
    let m =
      List.fold_left
        (fun m name ->
          match Yali.Transforms.Pipeline.find_pass name with
          | Some p -> p.prun m
          | None ->
              prerr_endline ("unknown pass: " ^ name);
              exit 1)
        m passes
    in
    (match Yali.Ir.Verify.check_module m with
    | [] -> ()
    | errs ->
        List.iter (fun e -> Fmt.epr "%a@." Yali.Ir.Verify.pp_error e) errs;
        exit 1);
    print_string (Yali.Ir.Pp.module_to_string m)
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run a pass pipeline over textual IR (or mini-C) and print the result.")
    Term.(const run $ passes_arg $ src_arg)

(* -- play ------------------------------------------------------------------- *)

let play_cmd =
  let game_arg =
    Arg.(value & opt int 1 & info [ "game"; "g" ] ~docv:"0..3" ~doc:"Which game.")
  in
  let model_arg =
    Arg.(
      value
      & opt string "rf"
      & info [ "model"; "m" ] ~docv:"NAME" ~doc:"Model: rf svm knn lr mlp cnn.")
  in
  let classes_arg =
    Arg.(value & opt int 8 & info [ "classes"; "c" ] ~doc:"Number of problem classes.")
  in
  let train_arg =
    Arg.(value & opt int 15 & info [ "train" ] ~doc:"Training samples per class.")
  in
  let test_arg =
    Arg.(value & opt int 5 & info [ "test" ] ~doc:"Test samples per class.")
  in
  let threshold_arg =
    Arg.(value & opt float 0.5 & info [ "threshold"; "k" ] ~doc:"Win threshold K.")
  in
  let run seed jobs telemetry game evader model classes train test threshold =
    configure_jobs jobs;
    configure_telemetry telemetry;
    let e =
      match Yali.Obfuscation.Evader.find evader with
      | Some e -> e
      | None -> prerr_endline ("unknown evader: " ^ evader); exit 1
    in
    let m =
      match Yali.Ml.Model.find_flat model with
      | Some m -> m
      | None -> prerr_endline ("unknown model: " ^ model); exit 1
    in
    let setup =
      match game with
      | 0 -> Yali.Games.Game.game0
      | 1 -> Yali.Games.Game.game1 e
      | 2 -> Yali.Games.Game.game2 e
      | 3 -> Yali.Games.Game.game3 e
      | _ -> prerr_endline "game must be 0..3"; exit 1
    in
    let rng = Rng.make seed in
    let split =
      Yali.Dataset.Poj.make rng ~n_classes:classes ~train_per_class:train
        ~test_per_class:test
    in
    let r =
      Yali.Games.Arena.run_flat (Rng.split rng) ~n_classes:classes
        Yali.Embeddings.Embedding.histogram m setup split
    in
    Printf.printf "%s  evader=%s model=%s classes=%d\n" setup.game_name
      e.ename model classes;
    Printf.printf "accuracy=%.4f f1=%.4f model=%dKB train=%.1fs\n" r.accuracy
      r.f1 (r.model_bytes / 1024) r.train_seconds;
    Printf.printf "classifier %s (threshold %.2f)\n"
      (if r.accuracy > threshold then "WINS" else "LOSES")
      threshold;
    dump_telemetry telemetry
  in
  Cmd.v
    (Cmd.info "play" ~doc:"Play one adversarial game and report the verdict.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ game_arg $ evader_arg
      $ model_arg $ classes_arg $ train_arg $ test_arg $ threshold_arg)

(* -- fuzz: the differential oracle over the whole pass stack --------------- *)

let fuzz_cmd =
  let count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:
            "Programs to generate (default 200, unlimited when a time \
             budget is given).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop generating after \\$(docv) of wall time.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize failing programs before reporting them.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Yali.Fuzz.Corpus.default_dir
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory, replayed before fresh generation (skipped \
             when absent); \"none\" disables.")
  in
  let save_arg =
    Arg.(
      value & flag
      & info [ "save" ]
          ~doc:"Persist minimized reproducers into the corpus directory.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-chunk progress.")
  in
  let variants_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "variants" ] ~docv:"V1,V2,..."
          ~doc:
            "Restrict the differential check to these pipeline variants \
             (default: all; see the DESIGN notes for the registry).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "dump" ] ~docv:"N"
          ~doc:"Print generated program \\$(docv) of this seed and exit.")
  in
  let run seed jobs telemetry engine count budget shrink corpus save quiet
      variants dump =
    configure_jobs jobs;
    configure_telemetry telemetry;
    configure_engine engine;
    (match dump with
    | Some ix ->
        let root = Yali.Rng.make seed in
        let pri = Yali.Rng.split_ix (Yali.Rng.split_ix root 1) ix in
        let p = Yali.Fuzz.Gen.program (Yali.Rng.split_ix pri 0) in
        print_string (Yali.Minic.Pp.program_to_string p);
        exit 0
    | None -> ());
    let variants =
      match variants with
      | None -> Yali.Fuzz.Pipelines.all
      | Some names ->
          List.map
            (fun n ->
              match Yali.Fuzz.Pipelines.find n with
              | Some v -> v
              | None ->
                  Printf.eprintf "unknown variant %s (have: %s)\n" n
                    (String.concat " " (Yali.Fuzz.Pipelines.names ()));
                  exit 2)
            names
    in
    let count =
      match (count, budget) with
      | Some n, _ -> n
      | None, Some _ -> max_int
      | None, None -> 200
    in
    let cfg =
      {
        Yali.Fuzz.Driver.default with
        seed;
        count;
        time_budget = budget;
        shrink;
        corpus_dir = (if corpus = "none" then None else Some corpus);
        save_findings = save;
        variants;
        log = (if quiet then ignore else prerr_endline);
      }
    in
    Printf.printf "fuzzing %d pipeline variants (seed %d, jobs %d)\n%!"
      (List.length cfg.variants) seed
      (Yali.Exec.Pool.get_jobs ());
    let r = Yali.Fuzz.Driver.run cfg in
    print_string (Yali.Fuzz.Driver.summary r);
    dump_telemetry telemetry;
    if r.r_findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz every pipeline variant against the -O0 \
          baseline; exits nonzero on any divergence.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ engine_arg $ count_arg
      $ budget_arg $ shrink_arg $ corpus_arg $ save_arg $ quiet_arg
      $ variants_arg $ dump_arg)

(* -- check: per-pass translation validation + invariant oracles ------------ *)

let check_cmd =
  let deep_arg =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Run the deep tier (hundreds of generated programs per pass and \
             deep oracle sweeps) instead of the smoke tier.")
  in
  let per_pass_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "per-pass" ] ~docv:"N"
          ~doc:
            "Generated programs validated against every pass (default: 5 \
             smoke, 200 deep).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "On failure, write minimized counterexamples and the report \
             into \\$(docv) (CI uploads these as artifacts).")
  in
  let save_arg =
    Arg.(
      value & flag
      & info [ "save" ]
          ~doc:"Persist minimized reproducers into the regression corpus.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt string Yali.Check.Corpus.default_dir
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Regression corpus replayed through every pass before fresh \
             generation; \"none\" disables.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-chunk progress.")
  in
  let run seed jobs telemetry engine deep per_pass out save corpus quiet =
    configure_jobs jobs;
    configure_telemetry telemetry;
    configure_engine engine;
    let tier = if deep then Yali.Check.Engine.Deep else Yali.Check.Engine.Smoke in
    let cfg =
      {
        Yali.Check.Engine.default with
        seed;
        tier;
        per_pass;
        out_dir = out;
        save_findings = save;
        corpus_dir = (if corpus = "none" then None else Some corpus);
        log = (if quiet then ignore else prerr_endline);
      }
    in
    Printf.printf "validating %d passes/pipelines (%s tier, seed %d, jobs %d)\n%!"
      (List.length (Yali.Check.Engine.entries ()))
      (if deep then "deep" else "smoke")
      seed
      (Yali.Exec.Pool.get_jobs ());
    let r = Yali.Check.Engine.run cfg in
    print_string (Yali.Check.Engine.summary r);
    dump_telemetry telemetry;
    if not r.Yali.Check.Engine.e_ok then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Translation-validate every pass and pipeline on generated \
          programs and run the invariant oracles; exits nonzero on any \
          failure.")
    Term.(
      const run $ seed_arg $ jobs_arg $ telemetry_arg $ engine_arg $ deep_arg
      $ per_pass_arg $ out_arg $ save_arg $ corpus_arg $ quiet_arg)

let () =
  let doc = "a game-based framework to compare program classifiers and evaders" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "yali" ~doc)
          [ compile_cmd; run_cmd; obfuscate_cmd; embed_cmd; generate_cmd; dataset_cmd; opt_cmd; play_cmd; fuzz_cmd; check_cmd ]))
