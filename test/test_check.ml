(** The correctness-tooling layer: the property engine's determinism,
    replay and shrinking contracts; the pass-registration table; per-pass
    translation validation — including a deliberately planted miscompile
    that must be caught, localized to its pass, and minimized; and the
    smoke tier of the engine coming back clean. *)

module Rng = Yali.Rng
module Ir = Yali.Ir
module Check = Yali.Check
module Prop = Check.Prop
module Passdb = Check.Passdb
module Tv = Check.Tv
module Pp = Yali.Minic.Pp

(* -- Prop.minimize ---------------------------------------------------------- *)

let test_minimize_lists () =
  (* remove-one-element shrinking of a list under "still contains 42" *)
  let candidates l = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l in
  let pred l = List.mem 42 l in
  let r =
    Prop.minimize ~measure:List.length ~candidates pred [ 1; 42; 3; 42; 9 ]
  in
  Alcotest.(check (list int)) "shrinks to a single witness" [ 42 ] r;
  let r2 =
    Prop.minimize ~measure:List.length ~candidates pred [ 1; 42; 3; 42; 9 ]
  in
  Alcotest.(check (list int)) "deterministic" r r2

let test_minimize_respects_max_checks () =
  let calls = ref 0 in
  let pred l =
    incr calls;
    List.mem 42 l
  in
  let candidates l = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l in
  let big = 42 :: List.init 200 Fun.id in
  ignore (Prop.minimize ~max_checks:10 ~measure:List.length ~candidates pred big);
  Alcotest.(check bool) "predicate calls capped" true (!calls <= 10)

(* -- labeled properties: pass, fail, replay, shrink ------------------------- *)

let gen_nat rng = Rng.int_range rng 0 1000

let test_prop_pass () =
  let p = Prop.make ~name:"nat is non-negative" gen_nat (fun x -> x >= 0) in
  match (Prop.run ~count:50 ~seed:7 p).r_outcome with
  | Prop.Pass { cases } -> Alcotest.(check int) "all cases ran" 50 cases
  | Prop.Fail _ -> Alcotest.fail "property should hold"

let test_prop_fail_and_replay () =
  let p = Prop.make ~name:"always fails" ~show:string_of_int gen_nat (fun x -> x < 0) in
  match (Prop.run ~count:20 ~seed:7 p).r_outcome with
  | Prop.Pass _ -> Alcotest.fail "property should fail"
  | Prop.Fail { case_ix; error; _ } ->
      Alcotest.(check int) "fails on the first case" 0 case_ix;
      Alcotest.(check bool) "plain falsity, no exception" true (error = None);
      Alcotest.(check bool) "replay reproduces the failure" false
        (Prop.run_case ~seed:7 p case_ix)

let test_prop_exception_reported () =
  let p =
    Prop.make ~name:"raises" gen_nat (fun _ -> failwith "boom in the law")
  in
  match (Prop.run ~count:5 ~seed:1 p).r_outcome with
  | Prop.Pass _ -> Alcotest.fail "property should fail"
  | Prop.Fail { error; _ } -> (
      match error with
      | Some e ->
          Alcotest.(check bool) "exception text captured" true
            (Helpers.contains_substring e "boom")
      | None -> Alcotest.fail "expected the exception text")

let test_prop_integrated_shrinking () =
  (* values in [500, 1000] all violate [x < 100]; greedy shrinking over
     halve-or-decrement must land exactly on the boundary 100 *)
  let gen rng = Rng.int_range rng 500 1000 in
  let candidates x = List.filter (fun c -> c >= 0) [ x / 2; x - 1 ] in
  let p =
    Prop.make ~name:"bounded" ~show:string_of_int ~candidates
      ~measure:(fun x -> x)
      gen
      (fun x -> x < 100)
  in
  match (Prop.run ~count:5 ~seed:3 p).r_outcome with
  | Prop.Pass _ -> Alcotest.fail "property should fail"
  | Prop.Fail { shrunk; _ } -> (
      match shrunk with
      | Some s -> Alcotest.(check string) "shrunk to the boundary" "100" s
      | None -> Alcotest.fail "expected a shrunk counterexample")

let test_prop_run_deterministic () =
  let render r = Format.asprintf "%a" Prop.pp_result r in
  let p = Prop.make ~name:"flaky-free" ~show:string_of_int gen_nat (fun x -> x mod 7 <> 3) in
  Alcotest.(check string)
    "two runs render identically"
    (render (Prop.run ~count:40 ~seed:11 p))
    (render (Prop.run ~count:40 ~seed:11 p))

(* -- the pass-registration table -------------------------------------------- *)

let test_passdb_covers_registry () =
  let names = List.map (fun (e : Passdb.entry) -> e.ename) Passdb.builtin in
  List.iter
    (fun (p : Yali.Transforms.Pipeline.pass) ->
      Alcotest.(check bool)
        (Printf.sprintf "pass %s registered" p.pname)
        true
        (List.mem p.pname names))
    Yali.Transforms.Pipeline.all_passes;
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "obfuscator %s registered" n)
        true (List.mem n names))
    [ "sub"; "bcf"; "fla"; "ollvm" ]

let test_passdb_feeds_fuzzer () =
  (* the fuzzer's single-pass variants are derived from this table: every
     built-in entry must be reachable as a pipeline variant of its name *)
  List.iter
    (fun (e : Passdb.entry) ->
      match Yali.Fuzz.Pipelines.find e.ename with
      | Some v ->
          Alcotest.(check string) "variant name" e.ename
            v.Yali.Fuzz.Pipelines.vname
      | None ->
          Alcotest.failf "pass %s has no fuzz pipeline variant" e.ename)
    Passdb.builtin

let test_passdb_register_unregister () =
  let entry = Passdb.pure ~kind:Passdb.Test "tmp-identity" Fun.id in
  Fun.protect
    ~finally:(fun () -> Passdb.unregister "tmp-identity")
    (fun () ->
      Passdb.register entry;
      Alcotest.(check bool) "findable" true (Passdb.find "tmp-identity" <> None);
      Alcotest.(check bool) "listed" true
        (List.mem "tmp-identity" (Passdb.names ()));
      Alcotest.(check bool) "not builtin" false
        (List.exists
           (fun (e : Passdb.entry) -> e.ename = "tmp-identity")
           Passdb.builtin);
      (* re-registering replaces rather than duplicates *)
      Passdb.register { entry with efuel = 9 };
      Alcotest.(check int) "single entry after re-register" 1
        (List.length
           (List.filter
              (fun (e : Passdb.entry) -> e.ename = "tmp-identity")
              (Passdb.all ()))));
  Alcotest.(check bool) "gone after unregister" true
    (Passdb.find "tmp-identity" = None)

(* -- per-pass translation validation ---------------------------------------- *)

let test_validate_real_pass () =
  let entry = Option.get (Passdb.find "constfold") in
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let p = Check.Gen.program (Rng.split_ix rng 0) in
      match Tv.validate entry (Rng.split_ix rng 1) p with
      | Tv.Valid -> ()
      | Tv.Bad_baseline e -> Alcotest.failf "bad baseline (seed %d): %s" seed e
      | Tv.Miscompiled k ->
          Alcotest.failf "constfold miscompiled (seed %d): %s" seed
            (Tv.failure_kind_to_string k))
    [ 21; 22; 23 ]

(* A deliberately planted miscompile, registered as a [Test] entry: an
   off-by-one "strength reduction" that rewrites [x + c] into [x + (c+1)].
   Structurally valid SSA — only the differential run can see it.  Unlike a
   fold-to-zero bug it cannot stall loop counters, so modest fuel
   suffices. *)
let off_by_one (m : Ir.Irmod.t) : Ir.Irmod.t =
  Ir.Irmod.map_funcs
    (Ir.Func.map_blocks (fun (b : Ir.Block.t) ->
         {
           b with
           instrs =
             List.map
               (fun (i : Ir.Instr.t) ->
                 match i.kind with
                 | Ir.Instr.Ibin
                     (Ir.Instr.Add, (Ir.Value.Var _ as x), Ir.Value.IConst (t, c))
                   when Int64.compare c 0L > 0 ->
                     {
                       i with
                       kind =
                         Ir.Instr.Ibin
                           (Ir.Instr.Add, x, Ir.Value.IConst (t, Int64.add c 1L));
                     }
                 | _ -> i)
               b.instrs;
         }))
    m

let broken_entry =
  Passdb.pure ~kind:Passdb.Test ~fuel:4 "planted-off-by-one" off_by_one

let broken_campaign () =
  Tv.run
    {
      Tv.default with
      seed = 5;
      per_pass = 6;
      entries = [ broken_entry; Option.get (Passdb.find "constfold") ];
      fuel = 200_000;
      vectors = 2;
      shrink = true;
      shrink_checks = 300;
      corpus_dir = None;
      log = ignore;
    }

let test_planted_miscompile_caught () =
  let r = broken_campaign () in
  Alcotest.(check bool) "the miscompile is caught" true (r.Tv.c_failures <> []);
  List.iter
    (fun (f : Tv.failure) ->
      (* localized to the planted pass, never blamed on the honest one *)
      Alcotest.(check string) "localized to the planted pass"
        "planted-off-by-one" f.f_pass;
      match f.f_minimized with
      | None -> Alcotest.failf "failure %s was not minimized" f.f_origin
      | Some p ->
          let n = Check.Shrink.stmt_count p in
          if n > 10 then
            Alcotest.failf "%s minimized to %d statements (> 10):\n%s"
              f.f_origin n (Pp.program_to_string p);
          (* the minimized program still witnesses the miscompile *)
          match
            Tv.validate ~fuel:200_000 ~vectors:2 broken_entry
              (Rng.make 0) p
          with
          | Tv.Miscompiled _ -> ()
          | Tv.Valid | Tv.Bad_baseline _ ->
              Alcotest.failf "minimized %s no longer reproduces" f.f_origin)
    r.Tv.c_failures

let test_tv_jobs_deterministic () =
  let render (r : Tv.report) =
    List.map
      (fun (f : Tv.failure) ->
        ( f.f_pass,
          f.f_origin,
          Option.fold ~none:"" ~some:Pp.program_to_string f.f_minimized ))
      r.Tv.c_failures
  in
  let campaign jobs =
    Yali.Exec.Pool.with_jobs jobs (fun () -> broken_campaign ())
  in
  let r1 = campaign 1 and r4 = campaign 4 in
  Alcotest.(check int) "validations" r1.Tv.c_validations r4.Tv.c_validations;
  Alcotest.(check (list (triple string string string)))
    "identical findings at --jobs 1 and 4" (render r1) (render r4)

(* -- the engine's smoke tier ------------------------------------------------ *)

let test_engine_smoke_clean () =
  let module Engine = Check.Engine in
  let r =
    Engine.run
      {
        Engine.default with
        seed = 42;
        per_pass = Some 2;
        prop_count = Some 8;
        corpus_dir = None;
        log = ignore;
      }
  in
  Alcotest.(check (list string))
    "no translation-validation failures" []
    (List.map (fun (f : Tv.failure) -> f.f_pass) r.Engine.e_tv.Tv.c_failures);
  Alcotest.(check (list string))
    "no oracle failures" []
    (List.map (fun (p : Prop.result) -> p.Prop.r_name)
       (Prop.failed r.Engine.e_props));
  Alcotest.(check bool) "engine verdict ok" true r.Engine.e_ok;
  (* every pass and the three pipeline compositions were covered *)
  let expected = List.length (Engine.entries ()) in
  Alcotest.(check int) "every entry validated" expected r.Engine.e_tv.Tv.c_passes

let suite =
  [
    Alcotest.test_case "minimize: greedy, deterministic" `Quick
      test_minimize_lists;
    Alcotest.test_case "minimize: max_checks cap" `Quick
      test_minimize_respects_max_checks;
    Alcotest.test_case "prop: passing law" `Quick test_prop_pass;
    Alcotest.test_case "prop: failure + replay" `Quick
      test_prop_fail_and_replay;
    Alcotest.test_case "prop: exception reported" `Quick
      test_prop_exception_reported;
    Alcotest.test_case "prop: integrated shrinking" `Quick
      test_prop_integrated_shrinking;
    Alcotest.test_case "prop: deterministic runs" `Quick
      test_prop_run_deterministic;
    Alcotest.test_case "passdb: covers the pass registry" `Quick
      test_passdb_covers_registry;
    Alcotest.test_case "passdb: feeds the fuzzer" `Quick
      test_passdb_feeds_fuzzer;
    Alcotest.test_case "passdb: register/unregister" `Quick
      test_passdb_register_unregister;
    Alcotest.test_case "tv: real pass validates" `Quick test_validate_real_pass;
    Alcotest.test_case "tv: planted miscompile caught + minimized" `Quick
      test_planted_miscompile_caught;
    Alcotest.test_case "tv: jobs-deterministic" `Quick
      test_tv_jobs_deterministic;
    Alcotest.test_case "engine: smoke tier clean" `Quick
      test_engine_smoke_clean;
  ]
