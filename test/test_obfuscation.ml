(** Tests for the evaders: O-LLVM-style IR passes, source transformations
    and search strategies.  The central property throughout: evasion must
    preserve observable behaviour (Definition 2.4 requires evaders to be
    semantics-preserving). *)

open Helpers
module Ir = Yali.Ir
module Ob = Yali.Obfuscation
module Op = Ir.Opcode
module Rng = Yali.Rng

let opcount (m : Ir.Irmod.t) (op : Op.t) =
  List.length (List.filter (( = ) op) (Ir.Irmod.opcodes m))

(* -- instruction substitution --------------------------------------------- *)

let test_sub_grows_code =
  qtest ~count:30 "sub grows arithmetic code" (fun seed ->
      let m = lower (dataset_program seed) in
      let m' = Ob.Sub.run (Rng.make seed) m in
      Ir.Irmod.instr_count m' >= Ir.Irmod.instr_count m)

let test_sub_preserves =
  qtest ~count:50 "sub preserves behaviour" (fun seed ->
      preserves_behaviour (Ob.Sub.run (Rng.make seed)) seed)

let test_sub_rounds_compound () =
  let m = lower (parse "int main() { int a = read_int(); return a + a; }") in
  let one = Ob.Sub.run ~rounds:1 (Rng.make 1) m in
  let three = Ob.Sub.run ~rounds:3 (Rng.make 1) m in
  Alcotest.(check bool) "more rounds, more code" true
    (Ir.Irmod.instr_count three >= Ir.Irmod.instr_count one)

(* -- bogus control flow --------------------------------------------------- *)

let test_bcf_adds_blocks_and_globals () =
  let m = lower (parse "int main() { int a = read_int(); if (a > 0) { print_int(a); } return a; }") in
  let m' = Ob.Bcf.run ~probability:1.0 (Rng.make 3) m in
  Alcotest.(check bool) "globals added" true
    (Ir.Irmod.find_global m' Ob.Bcf.x_global <> None
    && Ir.Irmod.find_global m' Ob.Bcf.y_global <> None);
  let f = Ir.Irmod.find_func_exn m' "main" in
  let f0 = Ir.Irmod.find_func_exn m "main" in
  Alcotest.(check bool) "blocks multiplied" true
    (List.length f.blocks > List.length f0.blocks);
  (* opaque predicates read memory: srem + loads appear *)
  Alcotest.(check bool) "opaque predicate present" true (opcount m' Op.SRem >= 1)

let test_bcf_preserves =
  qtest ~count:50 "bcf preserves behaviour" (fun seed ->
      preserves_behaviour (Ob.Bcf.run ~probability:1.0 (Rng.make seed)) seed)

let test_bcf_skips_ssa () =
  (* bcf requires phi-free code; a mem2reg'd function passes through *)
  let m = Yali.Transforms.Mem2reg.run
      (lower (parse "int main() { int s = 0; for (int k = 0; k < read_int(); k = k + 1) { s = s + k; } return s; }"))
  in
  let m' = Ob.Bcf.run ~probability:1.0 (Rng.make 1) m in
  let f = Ir.Irmod.find_func_exn m "main" and f' = Ir.Irmod.find_func_exn m' "main" in
  Alcotest.(check int) "untouched" (List.length f.blocks) (List.length f'.blocks)

(* -- control-flow flattening ---------------------------------------------- *)

let test_fla_builds_dispatcher () =
  let m = lower (parse "int main() { int a = read_int(); if (a > 0) { print_int(1); } else { print_int(2); } return 0; }") in
  let m' = Ob.Fla.run (Rng.make 4) m in
  let f = Ir.Irmod.find_func_exn m' "main" in
  Alcotest.(check bool) "has dispatcher block" true
    (List.exists (fun (b : Ir.Block.t) -> b.label = "fla.dispatch") f.blocks);
  (* every non-ret block routes through the dispatcher *)
  let switches = opcount m' Op.Switch in
  Alcotest.(check bool) "dispatcher switch present" true (switches >= 1)

let test_fla_histogram_stability () =
  (* the paper's observation: flattening barely changes the opcode mix
     (relative to its size) — specifically, arithmetic opcodes survive *)
  let m = lower (dataset_program 17) in
  let m' = Ob.Fla.run (Rng.make 17) m in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Op.to_string op ^ " count preserved")
        true
        (opcount m' op >= opcount m op))
    [ Op.Add; Op.Mul; Op.SDiv; Op.ICmp ]

let test_fla_preserves =
  qtest ~count:50 "fla preserves behaviour" (fun seed ->
      preserves_behaviour (Ob.Fla.run (Rng.make seed)) seed)

let test_fla_lower_switches_preserves =
  qtest ~count:30 "switch lowering preserves behaviour" (fun seed ->
      preserves_behaviour
        (Ir.Irmod.map_funcs Ob.Fla.lower_switches)
        seed)

(* -- combined ollvm ------------------------------------------------------- *)

let test_ollvm_preserves =
  qtest ~count:40 "ollvm (sub+fla+bcf) preserves behaviour" (fun seed ->
      preserves_behaviour (Ob.Ollvm.run (Rng.make seed)) seed)

let test_ollvm_slows_down =
  qtest ~count:20 "ollvm increases dynamic cost" (fun seed ->
      let m = lower (dataset_program seed) in
      let input = fuzz_input seed in
      let base = Ir.Interp.run ~fuel:4_000_000 m input in
      let o = Ir.Interp.run ~fuel:40_000_000 (Ob.Ollvm.run (Rng.make seed) m) input in
      o.cost >= base.cost)

(* -- the fifteen source transformations ----------------------------------- *)

let source_tx_tests =
  List.map
    (fun (tx : Ob.Source_tx.t) ->
      qtest ~count:30
        (Printf.sprintf "source tx %s preserves behaviour" tx.txname)
        (source_preserves_behaviour (fun rng p ->
             Ob.Source_tx.apply_program tx rng p)))
    Ob.Source_tx.all

let test_fifteen_transformations () =
  Alcotest.(check int) "exactly 15, as in Zhang et al." 15
    (List.length Ob.Source_tx.all)

let test_source_tx_find () =
  Alcotest.(check bool) "find existing" true
    (Ob.Source_tx.find "for_to_while" <> None);
  Alcotest.(check bool) "find missing" true (Ob.Source_tx.find "nope" = None)

let test_for_to_while_shape () =
  let p = parse "int main() { int s = 0; for (int k = 0; k < 5; k = k + 1) { s = s + k; } return s; }" in
  let tx = Option.get (Ob.Source_tx.find "for_to_while") in
  let p' = Ob.Source_tx.apply_program tx (Rng.make 1) p in
  let printed = Yali.Minic.Pp.program_to_string p' in
  Alcotest.(check bool) "no for remains" false (contains_substring printed "for (");
  Alcotest.(check bool) "while appears" true (contains_substring printed "while (")

(* -- strategies ----------------------------------------------------------- *)

let strategy_tests =
  List.map
    (fun (s : Ob.Strategies.strategy) ->
      qtest ~count:12
        (Printf.sprintf "strategy %s preserves behaviour" s.sname)
        (source_preserves_behaviour s.run))
    Ob.Strategies.all

let print_program = Yali.Minic.Pp.program_to_string

let strategy_determinism_tests =
  List.map
    (fun (s : Ob.Strategies.strategy) ->
      qtest ~count:6
        (Printf.sprintf "strategy %s is seed-deterministic" s.sname)
        (fun seed ->
          let p = dataset_program seed in
          print_program (s.run (Rng.make seed) p)
          = print_program (s.run (Rng.make seed) p)))
    Ob.Strategies.all

let strategy_verify_tests =
  List.map
    (fun (s : Ob.Strategies.strategy) ->
      qtest ~count:6
        (Printf.sprintf "strategy %s output lowers and verifies" s.sname)
        (fun seed ->
          let p' = s.run (Rng.make seed) (dataset_program seed) in
          Ir.Verify.check_module (lower p') = []))
    Ob.Strategies.all

let test_strategies_respect_max_len () =
  let p = dataset_program 29 in
  (* max_len 0 forbids every greedy step: drlsg must return p untouched *)
  Alcotest.(check string) "drlsg max_len:0 is the identity"
    (print_program p)
    (print_program (Ob.Strategies.drlsg ~max_len:0 (Rng.make 3) p));
  (* the greedy paths of two budgets share their prefix (same seed), so a
     longer budget can only move further from the original *)
  let h0 = Yali.Embeddings.Histogram.of_module (lower p) in
  let dist q =
    Yali.Embeddings.Histogram.euclidean h0
      (Yali.Embeddings.Histogram.of_module (lower q))
  in
  let d2 = dist (Ob.Strategies.drlsg ~max_len:2 (Rng.make 3) p) in
  let d8 = dist (Ob.Strategies.drlsg ~max_len:8 (Rng.make 3) p) in
  Alcotest.(check bool) "longer drlsg budget never loses distance" true
    (d8 >= d2);
  (* every strategy survives a length-1 cap and still emits a program that
     lowers and verifies *)
  List.iter
    (fun (name, p') ->
      Alcotest.(check bool) (name ^ " verifies under max_len:1") true
        (Ir.Verify.check_module (lower p') = []))
    [
      ("rs", Ob.Strategies.rs ~max_len:1 (Rng.make 5) p);
      ("mcmc", Ob.Strategies.mcmc ~iterations:4 ~max_len:1 (Rng.make 5) p);
      ("drlsg", Ob.Strategies.drlsg ~max_len:1 (Rng.make 5) p);
      ("ga", Ob.Strategies.ga ~population:4 ~generations:2 ~max_len:1 (Rng.make 5) p);
    ]

let test_drlsg_increases_distance () =
  (* the greedy distance maximiser must not decrease embedding distance *)
  let p = dataset_program 23 in
  let h0 = Yali.Embeddings.Histogram.of_module (lower p) in
  let p' = Ob.Strategies.drlsg (Rng.make 5) p in
  let d = Yali.Embeddings.Histogram.euclidean h0 (Yali.Embeddings.Histogram.of_module (lower p')) in
  Alcotest.(check bool) "moved away from original" true (d >= 0.0)

(* -- evader registry ------------------------------------------------------ *)

let test_evader_registry () =
  Alcotest.(check int) "8 active evaders (paper fig. 4 minus 'none')" 8
    (List.length Ob.Evader.active);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Ob.Evader.find name <> None))
    [ "none"; "O3"; "ollvm"; "bcf"; "fla"; "sub"; "rs"; "mcmc"; "drlsg"; "ga"; "mem2reg" ]

let evader_semantic_tests =
  List.map
    (fun (e : Ob.Evader.t) ->
      qtest ~count:10
        (Printf.sprintf "evader %s preserves behaviour" e.ename)
        (fun seed ->
          let p = dataset_program seed in
          let input = fuzz_input seed in
          let base = Ir.Interp.run ~fuel:4_000_000 (lower p) input in
          let m = e.apply (Rng.make seed) p in
          let o = Ir.Interp.run ~fuel:40_000_000 m input in
          Ir.Interp.equal_behaviour base o))
    Ob.Evader.all

let suite =
  [
    test_sub_grows_code;
    test_sub_preserves;
    Alcotest.test_case "sub rounds compound" `Quick test_sub_rounds_compound;
    Alcotest.test_case "bcf structure" `Quick test_bcf_adds_blocks_and_globals;
    test_bcf_preserves;
    Alcotest.test_case "bcf skips SSA functions" `Quick test_bcf_skips_ssa;
    Alcotest.test_case "fla dispatcher" `Quick test_fla_builds_dispatcher;
    Alcotest.test_case "fla keeps arithmetic mix" `Quick test_fla_histogram_stability;
    test_fla_preserves;
    test_fla_lower_switches_preserves;
    test_ollvm_preserves;
    test_ollvm_slows_down;
    Alcotest.test_case "fifteen transformations" `Quick test_fifteen_transformations;
    Alcotest.test_case "source tx registry" `Quick test_source_tx_find;
    Alcotest.test_case "for→while shape" `Quick test_for_to_while_shape;
  ]
  @ source_tx_tests
  @ strategy_tests
  @ strategy_determinism_tests
  @ strategy_verify_tests
  @ [
      Alcotest.test_case "strategies respect max_len" `Slow
        test_strategies_respect_max_len;
      Alcotest.test_case "drlsg distance" `Slow test_drlsg_increases_distance;
      Alcotest.test_case "evader registry" `Quick test_evader_registry;
    ]
  @ evader_semantic_tests
