(** Tests for the execution runtime (lib/exec): pool determinism at any
    jobs setting — including through the full arena — the content-addressed
    LRU cache, and telemetry accounting. *)

open Helpers
module Exec = Yali.Exec
module Pool = Exec.Pool
module Cache = Exec.Cache
module Telemetry = Exec.Telemetry
module Rng = Yali.Rng
module G = Yali.Games

(* -- pool ------------------------------------------------------------------ *)

let test_parallel_map_matches_sequential () =
  let xs = Array.init 97 (fun i -> i) in
  let f x = (x * x) + (x mod 7) in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      let got = Pool.with_jobs jobs (fun () -> Pool.parallel_array_map f xs) in
      Alcotest.(check (array int))
        (Printf.sprintf "array map, jobs=%d" jobs)
        expected got)
    [ 1; 4 ];
  let ys = List.init 31 (fun i -> i - 15) in
  let g x = string_of_int (x * 3) in
  List.iter
    (fun jobs ->
      let got = Pool.with_jobs jobs (fun () -> Pool.parallel_map g ys) in
      Alcotest.(check (list string))
        (Printf.sprintf "list map, jobs=%d" jobs)
        (List.map g ys) got)
    [ 1; 4 ]

let test_parallel_mapi_and_chunks () =
  let n = 143 in
  let expected = Array.init n (fun i -> 2 * i) in
  let got =
    Pool.with_jobs 4 (fun () ->
        Pool.parallel_array_mapi (fun i _ -> 2 * i) (Array.make n ()))
  in
  Alcotest.(check (array int)) "mapi sees its own index" expected got;
  let out = Array.make n 0 in
  Pool.with_jobs 4 (fun () ->
      Pool.parallel_for_chunks ~min_chunk:10 n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- 2 * i
          done));
  Alcotest.(check (array int)) "chunks cover [0, n) exactly once" expected out

let test_parallel_map_rng_deterministic () =
  let xs = Array.make 40 () in
  let draw rng () = Rng.int rng 1_000_000 in
  let runs =
    List.map
      (fun jobs ->
        Pool.with_jobs jobs (fun () ->
            Pool.parallel_array_map_rng (Rng.make 5) draw xs))
      [ 1; 4; 4 ]
  in
  match runs with
  | [ a; b; c ] ->
      Alcotest.(check (array int)) "jobs=1 equals jobs=4" a b;
      Alcotest.(check (array int)) "repeated jobs=4 runs agree" b c
  | _ -> assert false

let test_pool_propagates_exceptions () =
  let boom i = if i = 17 then failwith "task 17 exploded" in
  Alcotest.check_raises "exception crosses domains"
    (Failure "task 17 exploded") (fun () ->
      Pool.with_jobs 4 (fun () -> Pool.run ~n:32 boom))

(* -- arena determinism across jobs ----------------------------------------- *)

let test_arena_bit_identical_across_jobs () =
  let split =
    Yali.Dataset.Poj.make (Rng.make 21) ~n_classes:4 ~train_per_class:6
      ~test_per_class:3
  in
  let run jobs =
    Pool.with_jobs jobs (fun () ->
        G.Arena.run_flat (Rng.make 3) ~n_classes:4
          Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf G.Game.game0
          split)
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "accuracy identical" true (a.accuracy = b.accuracy);
  Alcotest.(check bool) "f1 identical" true (a.f1 = b.f1);
  Alcotest.(check int) "model size identical" a.model_bytes b.model_bytes;
  Alcotest.(check int) "n_train identical" a.n_train b.n_train;
  Alcotest.(check int) "n_test identical" a.n_test b.n_test

(* -- cache ----------------------------------------------------------------- *)

let test_cache_hits_and_lru_bound () =
  let cache : int Cache.t = Cache.create ~capacity:2 () in
  let computed = ref 0 in
  let get key =
    Cache.find_or_compute cache ~key (fun () ->
        incr computed;
        String.length key)
  in
  Alcotest.(check int) "first probe computes" 1 (get "a");
  Alcotest.(check int) "second probe is a hit" 1 (get "a");
  Alcotest.(check int) "computed once" 1 !computed;
  ignore (get "bb");
  ignore (get "ccc");
  (* capacity 2: "a" was the least recently used entry and must be gone *)
  Alcotest.(check int) "bounded size" 2 (Cache.length cache);
  Alcotest.(check bool) "LRU victim evicted" true (Cache.find cache ~key:"a" = None);
  Alcotest.(check bool) "recent keys survive" true
    (Cache.find cache ~key:"bb" <> None && Cache.find cache ~key:"ccc" <> None);
  ignore (get "a");
  Alcotest.(check int) "evicted key recomputes" 4 !computed;
  let s = Cache.stats cache in
  Alcotest.(check int) "hit count" 1 s.hits;
  Alcotest.(check int) "miss count" 4 s.misses;
  Alcotest.(check int) "eviction count" 2 s.evictions;
  Alcotest.(check bool) "hit rate in (0, 1)" true
    (Cache.hit_rate s > 0.0 && Cache.hit_rate s < 1.0)

(* Accounting under Pool concurrency.  The deterministic cases (cache.mli):
   hits on pre-existing keys are exact at any jobs (the value is present, so
   no probe can race a computation), and misses/evictions over pairwise
   distinct fresh keys are exact (no two domains ever share a key, so each
   key is computed and inserted exactly once).  Racing the SAME fresh key is
   the one documented nondeterminism, so no case here does that. *)
let test_cache_stats_under_pool_concurrency () =
  let cache : int Cache.t = Cache.create ~capacity:64 () in
  let n = 32 in
  for i = 0 to n - 1 do
    ignore (Cache.find_or_compute cache ~key:(string_of_int i) (fun () -> i))
  done;
  let s0 = Cache.stats cache in
  Alcotest.(check int) "sequential fills are all misses" n s0.misses;
  Alcotest.(check int) "no hits yet" 0 s0.hits;
  Alcotest.(check int) "no evictions below capacity" 0 s0.evictions;
  Alcotest.(check int) "live entries" n s0.size;
  (* concurrent probes of existing keys: every one must count as a hit,
     and the compute function must never run *)
  let probes = 4 * n in
  Pool.with_jobs 4 (fun () ->
      Pool.run ~n:probes (fun i ->
          let v =
            Cache.find_or_compute cache
              ~key:(string_of_int (i mod n))
              (fun () -> Alcotest.fail "computed a cached key")
          in
          assert (v = i mod n)));
  let s1 = Cache.stats cache in
  Alcotest.(check int) "every concurrent probe is a hit" probes s1.hits;
  Alcotest.(check int) "miss count unchanged" n s1.misses;
  Alcotest.(check int) "eviction count unchanged" 0 s1.evictions;
  (* concurrent misses on pairwise distinct fresh keys: miss count is
     exact, and evictions = inserts - capacity however the LRU order
     interleaved *)
  let fresh = 96 in
  Pool.with_jobs 4 (fun () ->
      Pool.run ~n:fresh (fun i ->
          ignore
            (Cache.find_or_compute cache ~key:(Printf.sprintf "f%d" i)
               (fun () -> i))));
  let s2 = Cache.stats cache in
  Alcotest.(check int) "distinct fresh keys all miss" (n + fresh) s2.misses;
  Alcotest.(check int) "hits unchanged" probes s2.hits;
  Alcotest.(check int) "cache filled to capacity" s2.capacity s2.size;
  Alcotest.(check int) "evictions account for every displaced entry"
    (n + fresh - s2.capacity) s2.evictions;
  let expected_rate =
    float_of_int s2.hits /. float_of_int (s2.hits + s2.misses)
  in
  Alcotest.(check (float 1e-12)) "hit rate is hits/probes" expected_rate
    (Cache.hit_rate s2)

let test_cache_repeated_embeddings_hit () =
  let e = Yali.Embeddings.Embedding.histogram in
  let m = lower (dataset_program 3) in
  let m' = lower (dataset_program 3) in
  (* structurally equal but physically distinct modules share one entry *)
  let before = Yali.Embeddings.Embedding.flat_cache_stats () in
  let v = Yali.Embeddings.Embedding.to_flat_cached e m in
  let v' = Yali.Embeddings.Embedding.to_flat_cached e m' in
  let after = Yali.Embeddings.Embedding.flat_cache_stats () in
  Alcotest.(check (array (float 1e-12))) "same vector" v v';
  Alcotest.(check bool) "re-embedding hits the cache" true
    (after.hits > before.hits)

(* -- telemetry ------------------------------------------------------------- *)

let test_telemetry_counts_tasks () =
  Telemetry.reset ();
  let base = Telemetry.counter "pool.tasks" in
  Alcotest.(check int) "reset clears counters" 0 base;
  Pool.with_jobs 4 (fun () -> Pool.run ~n:10 (fun _ -> ()));
  Alcotest.(check int) "parallel batch counts its tasks" 10
    (Telemetry.counter "pool.tasks");
  Pool.with_jobs 1 (fun () -> Pool.run ~n:7 (fun _ -> ()));
  Alcotest.(check int) "sequential batch counts its tasks" 17
    (Telemetry.counter "pool.tasks");
  Alcotest.(check int) "one parallel batch" 1
    (Telemetry.counter "pool.parallel_batches");
  Alcotest.(check int) "one sequential batch" 1
    (Telemetry.counter "pool.sequential_batches")

let test_telemetry_spans_and_json () =
  Telemetry.reset ();
  let r = Telemetry.with_span "test.span" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span returns the result" 42 r;
  Telemetry.incr ~by:3 "test.counter";
  let snap = Telemetry.snapshot () in
  Alcotest.(check bool) "span recorded" true
    (List.exists
       (fun (n, (s : Telemetry.span_stat)) ->
         n = "test.span" && s.span_count = 1 && s.span_seconds >= 0.0)
       snap.r_spans);
  let json = Telemetry.to_json () in
  Alcotest.(check bool) "JSON mentions the counter" true
    (contains_substring json "\"test.counter\": 3");
  Alcotest.(check bool) "JSON mentions the span" true
    (contains_substring json "\"test.span\"")

let test_telemetry_clock_monotonic () =
  let a = Telemetry.clock () in
  let b = Telemetry.clock () in
  Alcotest.(check bool) "clock never goes backwards" true (b >= a)

let suite =
  [
    Alcotest.test_case "parallel map = sequential map" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "mapi and chunked for" `Quick
      test_parallel_mapi_and_chunks;
    Alcotest.test_case "rng map deterministic across jobs" `Quick
      test_parallel_map_rng_deterministic;
    Alcotest.test_case "exceptions propagate" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "arena bit-identical at jobs=1 and jobs=4" `Slow
      test_arena_bit_identical_across_jobs;
    Alcotest.test_case "cache hits and LRU bound" `Quick
      test_cache_hits_and_lru_bound;
    Alcotest.test_case "cache stats exact under pool concurrency" `Quick
      test_cache_stats_under_pool_concurrency;
    Alcotest.test_case "repeated embeddings hit the cache" `Quick
      test_cache_repeated_embeddings_hit;
    Alcotest.test_case "telemetry counts scheduled tasks" `Quick
      test_telemetry_counts_tasks;
    Alcotest.test_case "telemetry spans and JSON report" `Quick
      test_telemetry_spans_and_json;
    Alcotest.test_case "telemetry clock monotonic" `Quick
      test_telemetry_clock_monotonic;
  ]
