(** Tests for the deterministic splittable RNG. *)

open Helpers
module Rng = Yali.Rng

let test_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_different_seeds () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_split_independent () =
  let a = Rng.make 7 in
  let b = Rng.split a in
  let xs = List.init 5 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 5 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_split_ix_deterministic () =
  let stream rng = List.init 5 (fun _ -> Rng.next_int64 rng) in
  let a = Rng.make 7 and b = Rng.make 7 in
  Alcotest.(check bool) "same (state, index) gives the same child" true
    (stream (Rng.split_ix a 3) = stream (Rng.split_ix b 3));
  let c = Rng.make 7 in
  Alcotest.(check bool) "distinct indices give distinct children" true
    (stream (Rng.split_ix c 0) <> stream (Rng.split_ix c 1))

let test_split_ix_does_not_advance_parent () =
  let a = Rng.make 11 and b = Rng.make 11 in
  ignore (Rng.split_ix a 5);
  ignore (Rng.split_ix a 9);
  Alcotest.(check int64) "parent stream untouched" (Rng.next_int64 b)
    (Rng.next_int64 a)

let test_split_n_matches_split () =
  let a = Rng.make 13 and b = Rng.make 13 in
  let children = Rng.split_n a 4 in
  let expected = Array.init 4 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i c ->
      Alcotest.(check int64)
        (Printf.sprintf "child %d replays split #%d" i i)
        (Rng.next_int64 expected.(i))
        (Rng.next_int64 c))
    children;
  Alcotest.(check int64) "parents left in the same state" (Rng.next_int64 b)
    (Rng.next_int64 a)

let test_int_bounds =
  qtest ~count:200 "int respects bounds" (fun seed ->
      let rng = Rng.make seed in
      let bound = 1 + (seed mod 100) in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let test_int_range =
  qtest ~count:200 "int_range inclusive" (fun seed ->
      let rng = Rng.make seed in
      let lo = -(seed mod 50) and hi = seed mod 50 in
      let x = Rng.int_range rng lo hi in
      x >= lo && x <= hi)

let test_float_unit =
  qtest ~count:200 "float in [0,1)" (fun seed ->
      let rng = Rng.make seed in
      let x = Rng.float rng in
      x >= 0.0 && x < 1.0)

let test_shuffle_permutation =
  qtest "shuffle permutes" (fun seed ->
      let rng = Rng.make seed in
      let xs = List.init 20 Fun.id in
      let ys = Rng.shuffle rng xs in
      List.sort compare ys = xs)

let test_sample_size =
  qtest "sample draws k distinct" (fun seed ->
      let rng = Rng.make seed in
      let k = seed mod 10 in
      let xs = List.init 20 Fun.id in
      let ys = Rng.sample rng k xs in
      List.length ys = k && List.sort_uniq compare ys = List.sort compare ys)

let test_bernoulli_extremes () =
  let rng = Rng.make 5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng 1.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 always false" false (Rng.bernoulli rng 0.0)
  done

let test_gaussian_moments () =
  let rng = Rng.make 11 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
    /. float_of_int n
  in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_weighted_choice () =
  let rng = Rng.make 3 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let x = Rng.weighted_choice rng [ ("a", 1.0); ("b", 9.0) ] in
    Hashtbl.replace counts x (1 + Option.value (Hashtbl.find_opt counts x) ~default:0)
  done;
  let b = Hashtbl.find counts "b" in
  Alcotest.(check bool) "b dominates ~9:1" true (b > 8500 && b < 9500)

let test_choice_member =
  qtest "choice returns a member" (fun seed ->
      let rng = Rng.make seed in
      let xs = [ 1; 5; 9; 12 ] in
      List.mem (Rng.choice rng xs) xs)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split_ix determinism" `Quick test_split_ix_deterministic;
    Alcotest.test_case "split_ix keeps parent" `Quick
      test_split_ix_does_not_advance_parent;
    Alcotest.test_case "split_n matches split" `Quick test_split_n_matches_split;
    test_int_bounds;
    test_int_range;
    test_float_unit;
    test_shuffle_permutation;
    test_sample_size;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "weighted choice" `Quick test_weighted_choice;
    test_choice_member;
  ]
