(** Tests for the flat numeric-kernel layer (DESIGN.md §8): Fmat layout
    invariants, tiled-vs-naive matmul bit-identity, the blocked distance
    identity, and differential properties pinning the rewritten
    tree/forest/knn/logreg kernels to the frozen pre-rewrite reference
    implementations ({!Yali.Ml.Reference}). *)

open Helpers
module Ml = Yali.Ml
module Rng = Yali.Rng
module M = Ml.Matrix
module F = Ml.Fmat

(* -- layout ---------------------------------------------------------------- *)

let test_of_rows_roundtrip () =
  let rows = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let m = F.of_rows rows in
  Alcotest.(check bool) "shape" true (m.F.n = 2 && m.F.d = 3);
  Alcotest.(check bool) "roundtrip" true (F.to_rows m = rows);
  Alcotest.(check bool) "get" true (F.get m 1 2 = 6.0)

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged rows"
    (Invalid_argument "Fmat.of_rows: ragged rows") (fun () ->
      ignore (F.of_rows [| [| 1. |]; [| 1.; 2. |] |]))

let test_row_into () =
  let m = F.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let buf = Array.make 2 0.0 in
  F.row_into m 1 buf;
  Alcotest.(check bool) "row 1" true (buf = [| 3.; 4. |]);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Fmat.row_into: width mismatch") (fun () ->
      F.row_into m 0 (Array.make 3 0.0))

let test_parallel_of_fn_matches_sequential =
  qtest ~count:20 "parallel_of_fn = of_fn" (fun seed ->
      let rng = Rng.make seed in
      let n = 1 + Rng.int rng 40 and d = 1 + Rng.int rng 8 in
      let row i = Array.init d (fun j -> float_of_int ((i * d) + j + seed)) in
      F.parallel_of_fn ~n row = F.of_fn ~n row)

let test_matrix_view_shares_data () =
  let m = F.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let v = F.to_matrix m in
  M.set v 0 0 9.0;
  Alcotest.(check bool) "zero-copy view" true (F.get m 0 0 = 9.0);
  Alcotest.(check bool) "inverse view shares too" true
    ((F.of_matrix v).F.data == m.F.data)

let test_dot_and_norm () =
  let m = F.of_rows [| [| 1.; 2.; 3. |] |] in
  Alcotest.(check bool) "dot" true (F.dot_row_vec m 0 [| 1.; 1.; 1. |] = 6.0);
  Alcotest.(check bool) "norm" true (F.sq_norm_row m 0 = 14.0)

(* -- matmul ---------------------------------------------------------------- *)

let test_tiled_matmul_bit_identical =
  qtest ~count:25 "tiled matmul = naive (bitwise)" (fun seed ->
      let rng = Rng.make seed in
      (* spans several tile boundaries incl. ragged edges *)
      let n = 1 + Rng.int rng 90
      and k = 1 + Rng.int rng 90
      and p = 1 + Rng.int rng 90 in
      let a = M.random rng n k ~scale:1.0 in
      let b = M.random rng k p ~scale:1.0 in
      (M.matmul a b).data = (M.matmul_naive a b).data)

let test_matmul_bias_matches_loop =
  qtest ~count:20 "matmul_bias = per-sample loop (bitwise)" (fun seed ->
      let rng = Rng.make seed in
      let n = 1 + Rng.int rng 20
      and k = 1 + Rng.int rng 20
      and p = 1 + Rng.int rng 20 in
      let a = M.random rng n k ~scale:1.0 in
      let b = M.random rng k p ~scale:1.0 in
      let bias = Array.init p (fun j -> float_of_int j /. 7.0) in
      let c = M.matmul_bias ~bias a b in
      let expected =
        M.init n p (fun i j ->
            let acc = ref bias.(j) in
            for l = 0 to k - 1 do
              acc := !acc +. (M.get a i l *. M.get b l j)
            done;
            !acc)
      in
      c.data = expected.data)

(* -- distance identity ----------------------------------------------------- *)

let test_blocked_distance_close =
  qtest ~count:25 "norms + dot distance ~ subtract-square" (fun seed ->
      let rng = Rng.make seed in
      let n = 1 + Rng.int rng 60 and d = 1 + Rng.int rng 12 in
      let m =
        F.init n d (fun _ _ -> Rng.gaussian rng *. 3.0)
      in
      let q = Array.init d (fun _ -> Rng.gaussian rng *. 3.0) in
      let qn = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 q in
      let ok = ref true in
      for i = 0 to n - 1 do
        let naive = ref 0.0 in
        for j = 0 to d - 1 do
          let dv = q.(j) -. F.get m i j in
          naive := !naive +. (dv *. dv)
        done;
        let blocked = qn -. (2.0 *. F.dot_row_vec m i q) +. F.sq_norm_row m i in
        if Float.abs (!naive -. blocked) > 1e-9 *. (1.0 +. !naive) then
          ok := false
      done;
      !ok)

(* -- scaler ---------------------------------------------------------------- *)

let test_fit_fmat_bit_identical =
  qtest ~count:20 "fit_fmat = fit (bitwise via transform)" (fun seed ->
      let rng = Rng.make seed in
      let n = 1 + Rng.int rng 30 and d = 1 + Rng.int rng 8 in
      let rows =
        Array.init n (fun _ -> Array.init d (fun _ -> Rng.gaussian rng))
      in
      let s_rows = Ml.Features.fit rows in
      let s_fmat = Ml.Features.fit_fmat (F.of_rows rows) in
      let probe = Array.init d (fun j -> float_of_int j -. 1.5) in
      Ml.Features.transform s_rows probe = Ml.Features.transform s_fmat probe)

(* -- differential model properties ----------------------------------------- *)

(* quantized count features (<= 256 distinct values per feature: the tree's
   histogram path) *)
let gen_counts (rng : Rng.t) ~(n : int) ~(d : int) ~(n_classes : int) =
  let xs = Array.init n (fun _ -> Array.make d 0.0) in
  let ys = Array.make n 0 in
  for i = 0 to n - 1 do
    let cls = Rng.int rng n_classes in
    ys.(i) <- cls;
    for j = 0 to d - 1 do
      let bump = if j mod n_classes = cls then 6 else 0 in
      xs.(i).(j) <- float_of_int (Rng.int rng 8 + bump)
    done
  done;
  (xs, ys)

(* continuous features (all-distinct values: for n > 256 this exercises the
   tree's exact wide-feature fallback) *)
let gen_gauss (rng : Rng.t) ~(n : int) ~(d : int) ~(n_classes : int) =
  let xs = Array.init n (fun _ -> Array.make d 0.0) in
  let ys = Array.make n 0 in
  for i = 0 to n - 1 do
    let cls = Rng.int rng n_classes in
    ys.(i) <- cls;
    for j = 0 to d - 1 do
      xs.(i).(j) <-
        Rng.gaussian rng +. (if j mod n_classes = cls then 4.0 else 0.0)
    done
  done;
  (xs, ys)

let test_tree_matches_reference_binned =
  qtest ~count:12 "tree = reference tree (histogram path)" (fun seed ->
      let rng = Rng.make (seed + 1) in
      let n_classes = 2 + Rng.int rng 3 in
      let n = 20 + Rng.int rng 100 and d = 1 + Rng.int rng 10 in
      let xs, ys = gen_counts rng ~n ~d ~n_classes in
      let txs, _ = gen_counts rng ~n:40 ~d ~n_classes in
      let t_new =
        Ml.Decision_tree.train (Rng.make seed) ~n_classes (F.of_rows xs) ys
      in
      let t_ref =
        Ml.Reference.Decision_tree.train (Rng.make seed) ~n_classes xs ys
      in
      Array.for_all
        (fun x ->
          Ml.Decision_tree.predict t_new x
          = Ml.Reference.Decision_tree.predict t_ref x)
        (Array.append xs txs))

let test_tree_matches_reference_wide =
  qtest ~count:4 "tree = reference tree (wide/exact path)" (fun seed ->
      let rng = Rng.make (seed + 2) in
      let n_classes = 2 + Rng.int rng 2 in
      (* > 256 distinct values per continuous feature forces the per-node
         exact sweep *)
      let n = 280 and d = 4 in
      let xs, ys = gen_gauss rng ~n ~d ~n_classes in
      let txs, _ = gen_gauss rng ~n:50 ~d ~n_classes in
      let t_new =
        Ml.Decision_tree.train (Rng.make seed) ~n_classes (F.of_rows xs) ys
      in
      let t_ref =
        Ml.Reference.Decision_tree.train (Rng.make seed) ~n_classes xs ys
      in
      Array.for_all
        (fun x ->
          Ml.Decision_tree.predict t_new x
          = Ml.Reference.Decision_tree.predict t_ref x)
        (Array.append xs txs))

let test_forest_matches_reference =
  qtest ~count:6 "forest = reference forest" (fun seed ->
      let rng = Rng.make (seed + 3) in
      let n_classes = 2 + Rng.int rng 3 in
      let n = 30 + Rng.int rng 80 and d = 4 + Rng.int rng 8 in
      let xs, ys = gen_counts rng ~n ~d ~n_classes in
      let txs, _ = gen_counts rng ~n:40 ~d ~n_classes in
      let params = { Ml.Random_forest.n_trees = 8; max_depth = 10 } in
      let ref_params =
        { Ml.Reference.Random_forest.n_trees = 8; max_depth = 10 }
      in
      let f_new =
        Ml.Random_forest.train ~params (Rng.make seed) ~n_classes
          (F.of_rows xs) ys
      in
      let f_ref =
        Ml.Reference.Random_forest.train ~params:ref_params (Rng.make seed)
          ~n_classes xs ys
      in
      let batch = Ml.Random_forest.predict_batch f_new (F.of_rows txs) in
      Array.for_all
        (fun x ->
          Ml.Random_forest.predict f_new x
          = Ml.Reference.Random_forest.predict f_ref x)
        (Array.append xs txs)
      && batch = Array.map (Ml.Reference.Random_forest.predict f_ref) txs)

let test_knn_matches_reference =
  qtest ~count:12 "knn = reference knn" (fun seed ->
      let rng = Rng.make (seed + 4) in
      let n_classes = 2 + Rng.int rng 3 in
      let n = 10 + Rng.int rng 120 and d = 1 + Rng.int rng 10 in
      (* continuous data: no exact distance ties, so the (documented)
         tie-break change cannot show through *)
      let xs, ys = gen_gauss rng ~n ~d ~n_classes in
      let txs, _ = gen_gauss rng ~n:30 ~d ~n_classes in
      let m_new = Ml.Knn.train ~n_classes (F.of_rows xs) ys in
      let m_ref = Ml.Reference.Knn.train ~n_classes xs ys in
      Array.for_all
        (fun x -> Ml.Knn.predict m_new x = Ml.Reference.Knn.predict m_ref x)
        txs)

let test_knn_index_tie_break () =
  (* two training points exactly equidistant from the query: with k=1 the
     lower training-row index must win *)
  let xs = F.of_rows [| [| 1.0 |]; [| -1.0 |]; [| 5.0 |]; [| -5.0 |] |] in
  let ys = [| 1; 0; 1; 0 |] in
  let t = Ml.Knn.train ~k:1 ~n_classes:2 xs ys in
  Alcotest.(check int) "row 0 wins the tie" 1 (Ml.Knn.predict t [| 0.0 |])

let test_logreg_matches_reference =
  qtest ~count:8 "logreg = reference logreg (bitwise training)" (fun seed ->
      let rng = Rng.make (seed + 5) in
      let n_classes = 2 + Rng.int rng 3 in
      let n = 20 + Rng.int rng 60 and d = 2 + Rng.int rng 8 in
      let xs, ys = gen_gauss rng ~n ~d ~n_classes in
      let txs, _ = gen_gauss rng ~n:30 ~d ~n_classes in
      let params = { Ml.Logreg.epochs = 8; lr = 0.1; l2 = 1e-4; batch = 16 } in
      let ref_params =
        { Ml.Reference.Logreg.epochs = 8; lr = 0.1; l2 = 1e-4; batch = 16 }
      in
      let m_new =
        Ml.Logreg.train ~params (Rng.make seed) ~n_classes (F.of_rows xs) ys
      in
      let m_ref =
        Ml.Reference.Logreg.train ~params:ref_params (Rng.make seed)
          ~n_classes xs ys
      in
      let batch = Ml.Logreg.predict_batch m_new (F.of_rows txs) in
      Array.for_all
        (fun x ->
          Ml.Logreg.predict m_new x = Ml.Reference.Logreg.predict m_ref x)
        txs
      && batch = Array.map (Ml.Reference.Logreg.predict m_ref) txs)

let suite =
  [
    Alcotest.test_case "of_rows roundtrip" `Quick test_of_rows_roundtrip;
    Alcotest.test_case "of_rows ragged" `Quick test_of_rows_ragged;
    Alcotest.test_case "row_into" `Quick test_row_into;
    test_parallel_of_fn_matches_sequential;
    Alcotest.test_case "matrix view shares data" `Quick
      test_matrix_view_shares_data;
    Alcotest.test_case "dot and norm" `Quick test_dot_and_norm;
    test_tiled_matmul_bit_identical;
    test_matmul_bias_matches_loop;
    test_blocked_distance_close;
    test_fit_fmat_bit_identical;
    test_tree_matches_reference_binned;
    test_tree_matches_reference_wide;
    test_forest_matches_reference;
    test_knn_matches_reference;
    Alcotest.test_case "knn index tie-break" `Quick test_knn_index_tie_break;
    test_logreg_matches_reference;
  ]
