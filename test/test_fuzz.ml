(** The differential fuzzing subsystem: generator contract, oracle on the
    real pass stack, jobs-determinism of the driver, shrinking of a
    deliberately broken pass, corpus persistence. *)

module Rng = Yali.Rng
module Ir = Yali.Ir
module Fuzz = Yali.Fuzz
module Pp = Yali.Minic.Pp

let qtest = QCheck_alcotest.to_alcotest

(* -- generator -------------------------------------------------------------- *)

let gen_deterministic =
  QCheck.Test.make ~count:30 ~name:"equal seeds generate equal programs"
    QCheck.small_nat (fun seed ->
      let p1 = Fuzz.Gen.program (Rng.make seed) in
      let p2 = Fuzz.Gen.program (Rng.make seed) in
      String.equal (Pp.program_to_string p1) (Pp.program_to_string p2))

let gen_valid =
  QCheck.Test.make ~count:30
    ~name:"generated programs lower, verify, and terminate" QCheck.small_nat
    (fun seed ->
      let p = Fuzz.Gen.program (Rng.make seed) in
      let m = Yali.lower p in
      (match Ir.Verify.check_module m with
      | [] -> ()
      | e :: _ ->
          QCheck.Test.fail_reportf "verify: %s"
            (Format.asprintf "%a" Ir.Verify.pp_error e));
      let inputs =
        Fuzz.Oracle.inputs_for (Rng.make (seed + 1)) ~vectors:2 ~len:16
      in
      Array.for_all
        (fun input ->
          ignore (Ir.Interp.run ~fuel:Fuzz.Oracle.default_fuel m input);
          true)
        inputs)

(* -- oracle ----------------------------------------------------------------- *)

let oracle_clean () =
  (* the full registry, every variant, on a few generated programs: the
     whole point of this PR is that this comes back clean *)
  List.iter
    (fun seed ->
      let rng = Rng.make seed in
      let p = Fuzz.Gen.program (Rng.split_ix rng 0) in
      let r = Fuzz.Oracle.check (Rng.split_ix rng 1) p in
      Alcotest.(check bool) "baseline ok" true r.baseline_ok;
      List.iter
        (fun (f : Fuzz.Oracle.failure) ->
          Alcotest.failf "unexpected failure: %s"
            (Format.asprintf "%a" Fuzz.Oracle.pp_failure f))
        r.failures)
    [ 11; 12 ]

(* -- driver: jobs-determinism ----------------------------------------------- *)

let subset names =
  List.map (fun n -> Option.get (Fuzz.Pipelines.find n)) names

let fuzz_counters () =
  List.map
    (fun n -> (n, Yali.Exec.Telemetry.counter ("fuzz." ^ n)))
    [
      "programs"; "corpus"; "execs"; "verify_failures"; "divergences";
      "crashes"; "findings";
    ]

let driver_jobs_deterministic () =
  let cfg =
    {
      Fuzz.Driver.default with
      seed = 5;
      count = 12;
      shrink = false;
      corpus_dir = None;
      variants = subset [ "O2"; "O3"; "sub"; "fla+O2"; "ollvm+O3" ];
    }
  in
  let campaign jobs =
    Yali.Exec.Telemetry.reset ();
    let r = Yali.Exec.Pool.with_jobs jobs (fun () -> Fuzz.Driver.run cfg) in
    (r, fuzz_counters ())
  in
  let r1, c1 = campaign 1 in
  let r4, c4 = campaign 4 in
  Alcotest.(check int) "programs" r1.r_programs r4.r_programs;
  Alcotest.(check int) "execs" r1.r_execs r4.r_execs;
  Alcotest.(check int) "verify failures" r1.r_verify_failures
    r4.r_verify_failures;
  Alcotest.(check int) "divergences" r1.r_divergences r4.r_divergences;
  Alcotest.(check int) "crashes" r1.r_crashes r4.r_crashes;
  Alcotest.(check (list string))
    "finding origins"
    (List.map (fun (f : Fuzz.Driver.finding) -> f.f_origin) r1.r_findings)
    (List.map (fun (f : Fuzz.Driver.finding) -> f.f_origin) r4.r_findings);
  Alcotest.(check (list (pair string int)))
    "fuzz.* telemetry totals" c1 c4

(* -- the broken-pass fixture ------------------------------------------------ *)

(* A deliberately miscompiling "constant fold": pretends x + c folds to c,
   i.e. rewrites [add x, c] into [add c, 0].  Structurally valid IR — only
   the differential run can catch it. *)
let broken_fold (m : Ir.Irmod.t) : Ir.Irmod.t =
  Ir.Irmod.map_funcs
    (Ir.Func.map_blocks (fun (b : Ir.Block.t) ->
         {
           b with
           instrs =
             List.map
               (fun (i : Ir.Instr.t) ->
                 match i.kind with
                 | Ir.Instr.Ibin
                     (Ir.Instr.Add, Ir.Value.Var _, (Ir.Value.IConst (t, c) as k))
                   when not (Int64.equal c 0L) ->
                     {
                       i with
                       kind =
                         Ir.Instr.Ibin (Ir.Instr.Add, k, Ir.Value.IConst (t, 0L));
                     }
                 | _ -> i)
               b.instrs;
         }))
    m

let broken_variant =
  {
    Fuzz.Pipelines.vname = "broken-constfold";
    vfuel = 4;
    vstages = [ Fuzz.Pipelines.pure "broken-constfold" broken_fold ];
  }

let broken_campaign () =
  (* small fuel: honest generated programs terminate well under it, and the
     broken fold manufactures infinite loops, which would otherwise burn
     the full budget on every shrink-predicate call *)
  Fuzz.Driver.run
    {
      Fuzz.Driver.default with
      seed = 3;
      count = 3;
      shrink = true;
      corpus_dir = None;
      variants = [ broken_variant ];
      fuel = 100_000;
      shrink_checks = 200;
    }

let broken_pass_caught () =
  let r = broken_campaign () in
  Alcotest.(check bool) "oracle finds the miscompile" true (r.r_findings <> []);
  List.iter
    (fun (f : Fuzz.Driver.finding) ->
      match f.f_minimized with
      | None -> Alcotest.failf "finding %s was not shrunk" f.f_origin
      | Some p ->
          let n = Fuzz.Shrink.stmt_count p in
          if n > 5 then
            Alcotest.failf "%s shrank to %d statements (> 5):\n%s" f.f_origin n
              (Pp.program_to_string p))
    r.r_findings

let broken_pass_deterministic () =
  let render (r : Fuzz.Driver.report) =
    List.map
      (fun (f : Fuzz.Driver.finding) ->
        ( f.f_origin,
          Option.fold ~none:"" ~some:Pp.program_to_string f.f_minimized ))
      r.r_findings
  in
  Alcotest.(check (list (pair string string)))
    "two runs, identical findings and reproducers"
    (render (broken_campaign ()))
    (render (broken_campaign ()))

(* -- corpus ----------------------------------------------------------------- *)

let with_temp_dir f =
  (* a unique path without depending on Unix: claim a temp file name and
     reuse it as a directory ([Corpus.save] mkdir-ps it) *)
  let dir = Filename.temp_file "yali-fuzz-corpus" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let p = Fuzz.Gen.program (Rng.make 9) in
      let path = Fuzz.Corpus.save ~dir p in
      Alcotest.(check string) "idempotent save" path (Fuzz.Corpus.save ~dir p);
      (match Fuzz.Corpus.load dir with
      | [ (name, Ok p') ] ->
          Alcotest.(check string) "file is the saved one" name
            (Filename.basename path);
          Alcotest.(check string)
            "parses back to the same program" (Pp.program_to_string p)
            (Pp.program_to_string p')
      | entries ->
          Alcotest.failf "expected one parseable entry, got %d"
            (List.length entries));
      let oc = open_out (Filename.concat dir "garbage.c") in
      output_string oc "int main( { ][ }";
      close_out oc;
      let errors =
        List.filter
          (fun (_, e) -> Result.is_error e)
          (Fuzz.Corpus.load dir)
      in
      Alcotest.(check int) "unparseable entries surface as errors" 1
        (List.length errors))

let corpus_replayed_first () =
  with_temp_dir (fun dir ->
      let p = Fuzz.Gen.program (Rng.make 9) in
      ignore (Fuzz.Corpus.save ~dir p);
      let r =
        Fuzz.Driver.run
          {
            Fuzz.Driver.default with
            seed = 5;
            count = 0;
            corpus_dir = Some dir;
            variants = subset [ "O2" ];
          }
      in
      Alcotest.(check int) "corpus entry replayed" 1 r.r_corpus;
      Alcotest.(check int) "no fresh generation" 1 r.r_programs;
      Alcotest.(check (list string)) "clean replay" []
        (List.map (fun (f : Fuzz.Driver.finding) -> f.f_origin) r.r_findings))

let suite =
  [
    qtest gen_deterministic;
    qtest gen_valid;
    Alcotest.test_case "oracle clean on every registered variant" `Slow
      oracle_clean;
    Alcotest.test_case "driver totals identical at jobs 1 and 4" `Slow
      driver_jobs_deterministic;
    Alcotest.test_case "broken constfold caught and shrunk to <= 5 stmts"
      `Quick broken_pass_caught;
    Alcotest.test_case "broken-pass findings deterministic" `Quick
      broken_pass_deterministic;
    Alcotest.test_case "corpus save/load roundtrip" `Quick corpus_roundtrip;
    Alcotest.test_case "corpus replayed before generation" `Quick
      corpus_replayed_first;
  ]
