(** Dedicated tests for loop-invariant code motion: hoisting of invariant
    pure arithmetic into the preheader, refusal to touch memory traffic
    (no alias analysis: loads never move past stores), and interpreter
    equivalence on loop programs. *)

open Helpers
module Ir = Yali.Ir
module Tx = Yali.Transforms
module Op = Ir.Opcode
module Loops = Ir.Loops

(* opcodes of the instructions sitting inside some loop body of [main] *)
let opcodes_in_loops (m : Ir.Irmod.t) : Op.t list =
  let f = Ir.Irmod.find_func_exn m "main" in
  let loops = Loops.of_func f in
  let in_loop label =
    List.exists (fun (l : Loops.loop) -> Loops.SSet.mem label l.body)
      loops.Loops.loops
  in
  List.concat_map
    (fun (b : Ir.Block.t) ->
      if in_loop b.Ir.Block.label then
        List.map Ir.Instr.opcode b.Ir.Block.instrs
      else [])
    f.Ir.Func.blocks

let count op ops = List.length (List.filter (( = ) op) ops)

let licm_o1 m = Tx.Licm.run (Tx.Mem2reg.run m)

(* -- hoisting of invariant pure arithmetic --------------------------------- *)

let test_hoists_invariant_arithmetic () =
  (* [a * a] and [a + 7] do not depend on the loop; after mem2reg + licm
     they must sit in the preheader, leaving the loop free of Mul *)
  let src =
    "int main() { int a = read_int(); int s = 0; int k = 0; \
     while (k < 10) { s = s + a * a + (a + 7); k = k + 1; } return s; }"
  in
  let m = licm_o1 (lower (parse src)) in
  (match Ir.Verify.check_module m with
  | [] -> ()
  | e :: _ ->
      Alcotest.failf "verifier: %a" Ir.Verify.pp_error e);
  let inside = opcodes_in_loops m in
  Alcotest.(check int) "no Mul left inside the loop" 0 (count Op.Mul inside);
  (* the computation still exists somewhere (the preheader) *)
  let f = Ir.Irmod.find_func_exn m "main" in
  let all =
    List.concat_map
      (fun (b : Ir.Block.t) -> List.map Ir.Instr.opcode b.Ir.Block.instrs)
      f.Ir.Func.blocks
  in
  Alcotest.(check bool) "Mul survives outside" true (count Op.Mul all >= 1);
  (* a preheader block was actually inserted *)
  Alcotest.(check bool) "preheader inserted" true
    (List.exists
       (fun (b : Ir.Block.t) ->
         contains_substring b.Ir.Block.label "preheader")
       f.Ir.Func.blocks)

let test_variant_instructions_stay () =
  (* [k * 2] depends on the induction variable: it must not move *)
  let src =
    "int main() { int s = 0; int k = 0; \
     while (k < 8) { s = s + k * 2; k = k + 1; } return s; }"
  in
  let m = licm_o1 (lower (parse src)) in
  Alcotest.(check bool) "loop-variant Mul stays inside" true
    (count Op.Mul (opcodes_in_loops m) >= 1)

(* -- memory traffic is never hoisted --------------------------------------- *)

let test_never_hoists_loads_past_stores () =
  (* a[0] is re-stored every iteration; the load of a[0] feeding [s] is
     only invariant-looking — hoisting it past the store would freeze the
     first value.  LICM has no alias analysis and must leave both alone. *)
  let src =
    "int main() { int a[3]; a[0] = 1; int s = 0; int k = 0; \
     while (k < 6) { s = s + a[0]; a[0] = a[0] + k; k = k + 1; } \
     print_int(s); return a[0]; }"
  in
  let m0 = Tx.Mem2reg.run (lower (parse src)) in
  let m1 = Tx.Licm.run m0 in
  let inside0 = opcodes_in_loops m0 and inside1 = opcodes_in_loops m1 in
  Alcotest.(check int) "loads stay in the loop"
    (count Op.Load inside0) (count Op.Load inside1);
  Alcotest.(check int) "stores stay in the loop"
    (count Op.Store inside0) (count Op.Store inside1);
  (* and the observable behaviour is untouched *)
  let base = Ir.Interp.run m0 [] and after = Ir.Interp.run m1 [] in
  Alcotest.(check bool) "equivalent" true
    (Ir.Interp.equal_behaviour base after)

let test_never_hoists_division () =
  (* a division that only runs when the loop body executes must not be
     hoisted into the preheader: the loop may run zero iterations and the
     hoisted division could trap on a path that never divided *)
  let src =
    "int main() { int a = read_int(); int n = read_int(); int s = 0; \
     int k = 0; while (k < n) { s = s + 100 / a; k = k + 1; } return s; }"
  in
  let m = licm_o1 (lower (parse src)) in
  Alcotest.(check bool) "SDiv stays inside the loop" true
    (count Op.SDiv (opcodes_in_loops m) >= 1);
  (* a = 0 with a zero-trip loop must not trap *)
  let o = Ir.Interp.run m [ 0L; 0L ] in
  Alcotest.(check bool) "zero-trip loop, divisor 0: no trap" true
    (o.Ir.Interp.exit_value = Ir.Interp.RInt 0L)

(* -- interpreter equivalence on loop programs ------------------------------ *)

let loop_programs =
  [
    (* nested counting loops *)
    "int main() { int a = read_int(); int s = 0; int i = 0; \
     while (i < 5) { int j = 0; while (j < 4) { s = s + a * 3 - i; j = j + 1; } \
     i = i + 1; } print_int(s); return s % 256; }";
    (* loop-carried dependence plus invariant expression *)
    "int main() { int a = read_int(); int b = read_int(); int s = 1; \
     int k = 0; while (k < 7) { s = s + s % 13 + (a ^ b); k = k + 1; } \
     print_int(s); return s % 256; }";
    (* do-while with an early break *)
    "int main() { int a = read_int(); int s = 0; int k = 0; \
     do { s = s + (a & 15); if (s > 40) { break; } k = k + 1; } \
     while (k < 9); print_int(s); print_int(k); return 0; }";
    (* array sweep with invariant scale *)
    "int main() { int a = read_int(); int v[5]; int k = 0; \
     while (k < 5) { v[k] = k * (a + 2); k = k + 1; } int s = 0; k = 0; \
     while (k < 5) { s = s + v[k]; k = k + 1; } print_int(s); return 0; }";
  ]

let test_equivalence_on_loop_programs () =
  List.iter
    (fun src ->
      let m0 = lower (parse src) in
      List.iter
        (fun input ->
          let base = Ir.Interp.run m0 input in
          let via_licm = Ir.Interp.run (Tx.Licm.run m0) input in
          let via_o1 = Ir.Interp.run (licm_o1 m0) input in
          Alcotest.(check bool) "licm alone equivalent" true
            (Ir.Interp.equal_behaviour base via_licm);
          Alcotest.(check bool) "mem2reg+licm equivalent" true
            (Ir.Interp.equal_behaviour base via_o1))
        [ []; [ 3L ]; [ -7L; 5L ]; [ 100L; -100L ] ])
    loop_programs

(* dataset-wide semantic preservation, like the other passes have *)
let test_licm_preserves =
  qtest ~count:40 "licm preserves behaviour" (preserves_behaviour Tx.Licm.run)

let test_mem2reg_licm_preserves =
  qtest ~count:40 "mem2reg+licm preserves behaviour"
    (preserves_behaviour licm_o1)

let suite =
  [
    Alcotest.test_case "hoists invariant arithmetic" `Quick
      test_hoists_invariant_arithmetic;
    Alcotest.test_case "loop-variant instructions stay" `Quick
      test_variant_instructions_stay;
    Alcotest.test_case "loads never hoisted past stores" `Quick
      test_never_hoists_loads_past_stores;
    Alcotest.test_case "division never hoisted" `Quick
      test_never_hoists_division;
    Alcotest.test_case "equivalence on loop programs" `Quick
      test_equivalence_on_loop_programs;
    test_licm_preserves;
    test_mem2reg_licm_preserves;
  ]
