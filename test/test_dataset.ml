(** Tests for the synthetic corpora: POJ-style problems, MIRAI suite,
    benchmark-game kernels. *)

open Helpers
module D = Yali.Dataset
module Rng = Yali.Rng
module Ir = Yali.Ir

let test_104_problems () =
  Alcotest.(check int) "POJ-104 shape" 104 D.Genprog.count;
  let names = List.map (fun (p : D.Genprog.problem) -> p.pname) D.Genprog.all in
  Alcotest.(check int) "names unique" 104 (List.length (List.sort_uniq compare names))

let test_problem_lookup () =
  Alcotest.(check bool) "find gcd" true (D.Genprog.find_by_name "gcd" <> None);
  Alcotest.(check bool) "pid assignment" true
    ((D.Genprog.nth 0).pid = 0 && (D.Genprog.nth 103).pid = 103)

(* every problem is exercised at least once across the qcheck runs because
   seeds are mapped seed -> problem (seed mod 104) *)
let test_generators_safe =
  qtest ~count:208 "every generator lowers, verifies and terminates"
    (fun seed ->
      let m = lower (dataset_program seed) in
      Ir.Verify.check_module m = []
      && (Ir.Interp.run ~fuel:4_000_000 m (fuzz_input seed)).steps > 0)

let test_samples_vary () =
  (* two samples of the same class should usually differ (different authors) *)
  let p = Option.get (D.Genprog.find_by_name "bubble_sort") in
  let distinct = ref 0 in
  for seed = 0 to 9 do
    let a = p.generate (Rng.make seed) in
    let b = p.generate (Rng.make (seed + 1000)) in
    if a <> b then incr distinct
  done;
  Alcotest.(check bool) "most sample pairs differ" true (!distinct >= 8)

let test_samples_solve_same_problem () =
  (* different samples of one class agree on observable behaviour up to
     formatting: sum_array samples must print the same sum *)
  let p = Option.get (D.Genprog.find_by_name "sum_array") in
  let input = [ 3L; 10L; 20L; 30L ] (* n=3+1? clamped; same stream for both *) in
  let run sample_seed =
    let m = lower (p.generate (Rng.make sample_seed)) in
    (Ir.Interp.run m input).output
  in
  Alcotest.(check bool) "same answer across samples" true (run 1 = run 2 && run 2 = run 3)

let test_split_balanced () =
  let split =
    D.Poj.make (Rng.make 4) ~n_classes:10 ~train_per_class:5 ~test_per_class:2
  in
  Alcotest.(check int) "train size" 50 (Array.length split.train);
  Alcotest.(check int) "test size" 20 (Array.length split.test);
  let count_label arr l =
    Array.fold_left (fun a (s : D.Poj.labelled) -> if s.label = l then a + 1 else a) 0 arr
  in
  for l = 0 to 9 do
    Alcotest.(check int) "balanced train" 5 (count_label split.train l);
    Alcotest.(check int) "balanced test" 2 (count_label split.test l)
  done

let test_split_shuffled_classes () =
  let s1 = D.Poj.make ~shuffle_classes:true (Rng.make 1) ~n_classes:5 ~train_per_class:1 ~test_per_class:1 in
  Alcotest.(check int) "requested size" 5 (Array.length s1.train)

(* -- mirai ---------------------------------------------------------------- *)

let test_mirai_structure () =
  let m = lower (D.Mirai.generate_malware (Rng.make 8)) in
  List.iter
    (fun fname ->
      Alcotest.(check bool) ("has " ^ fname) true (Ir.Irmod.find_func m fname <> None))
    [ "scan_targets"; "kill_rivals"; "attack_udp"; "attack_syn"; "c2_loop"; "main" ]

let test_mirai_runs =
  qtest ~count:20 "malware variants verify and run" (fun seed ->
      let m = lower (D.Mirai.generate_malware (Rng.make seed)) in
      Ir.Verify.check_module m = []
      && (Ir.Interp.run ~fuel:4_000_000 m (fuzz_input seed)).steps > 0)

let test_benign_runs =
  qtest ~count:20 "benign samples verify and run" (fun seed ->
      let m = lower (D.Mirai.generate_benign (Rng.make seed)) in
      Ir.Verify.check_module m = []
      && (Ir.Interp.run ~fuel:4_000_000 m (fuzz_input seed)).steps > 0)

let test_seed_suite_balance () =
  let suite = D.Mirai.seed_suite (Rng.make 2) ~n:10 in
  Alcotest.(check int) "20 samples" 20 (List.length suite);
  Alcotest.(check int) "10 positives" 10
    (List.length (List.filter (fun (_, l) -> l = 1) suite))

let test_malware_distinguishable_from_benign () =
  (* sanity: histogram embedding separates the two families reasonably *)
  let suite = D.Mirai.seed_suite (Rng.make 5) ~n:12 in
  let xs =
    Array.of_list
      (List.map (fun (p, _) -> Yali.Embeddings.Histogram.of_module (lower p)) suite)
  in
  let ys = Array.of_list (List.map snd suite) in
  let trained =
    Yali.Ml.Model.rf.ftrain (Rng.make 1) ~n_classes:2
      (Yali.Ml.Fmat.of_rows xs) ys
  in
  let fresh = D.Mirai.seed_suite (Rng.make 77) ~n:6 in
  let hits =
    List.fold_left
      (fun acc (p, l) ->
        if trained.predict (Yali.Embeddings.Histogram.of_module (lower p)) = l then acc + 1
        else acc)
      0 fresh
  in
  Alcotest.(check bool) "at least 10/12" true (hits >= 10)

(* -- the second (recursion-heavy) corpus ----------------------------------- *)

let test_genprog2_shape () =
  Alcotest.(check int) "sixteen classes" 16 D.Genprog2.count;
  let names = List.map (fun (p : D.Genprog2.problem) -> p.pname) D.Genprog2.all in
  Alcotest.(check int) "names unique" 16 (List.length (List.sort_uniq compare names))

let test_genprog2_safe =
  qtest ~count:64 "second-corpus generators lower, verify and terminate"
    (fun seed ->
      let seed = abs seed in
      let p = List.nth D.Genprog2.all (seed mod D.Genprog2.count) in
      let m = lower (p.generate (Rng.make (seed / 16))) in
      Ir.Verify.check_module m = []
      && (Ir.Interp.run ~fuel:8_000_000 m (fuzz_input seed)).steps > 0)

let test_genprog2_is_call_heavy () =
  (* the point of the corpus: call-dominated opcode mixes *)
  let frac_of gen n =
    let calls = ref 0 and total = ref 0 in
    for k = 0 to n - 1 do
      let m = lower (gen k) in
      List.iter
        (fun op ->
          incr total;
          if op = Ir.Opcode.Call then incr calls)
        (Ir.Irmod.opcodes m)
    done;
    float_of_int !calls /. float_of_int !total
  in
  let f2 =
    frac_of
      (fun k ->
        (List.nth D.Genprog2.all (k mod 16)).generate (Rng.make k))
      32
  in
  let f1 =
    frac_of (fun k -> (D.Genprog.nth (k mod 104)).generate (Rng.make k)) 32
  in
  Alcotest.(check bool)
    (Printf.sprintf "corpus2 call fraction %.3f > corpus1 %.3f" f2 f1)
    true (f2 > f1)

let test_genprog2_split () =
  let split =
    D.Genprog2.make_split (Rng.make 4) ~train_per_class:3 ~test_per_class:1
  in
  Alcotest.(check int) "train" (16 * 3) (Array.length split.train);
  Alcotest.(check int) "test" 16 (Array.length split.test)

(* -- benchgame ------------------------------------------------------------ *)

let test_benchgame_sixteen () =
  Alcotest.(check int) "sixteen kernels (fig. 13)" 16 (List.length D.Benchgame.all);
  let names = List.map fst D.Benchgame.all in
  Alcotest.(check bool) "ary3 and matrix present (named in the paper)" true
    (List.mem "ary3" names && List.mem "matrix" names)

let test_benchgame_kernels_run () =
  List.iter
    (fun (name, prog) ->
      let m = lower prog in
      (match Ir.Verify.check_module m with
      | [] -> ()
      | e :: _ -> Alcotest.failf "%s: %a" name Ir.Verify.pp_error e);
      let o = Ir.Interp.run ~fuel:40_000_000 m [] in
      Alcotest.(check bool) (name ^ " produces output") true
        (o.output <> [] || o.foutput <> []))
    D.Benchgame.all

let test_benchgame_deterministic () =
  let name, prog = List.hd D.Benchgame.all in
  let run () = (Ir.Interp.run ~fuel:40_000_000 (lower prog) []).output in
  Alcotest.(check bool) (name ^ " deterministic") true (run () = run ())

let suite =
  [
    Alcotest.test_case "104 problems" `Quick test_104_problems;
    Alcotest.test_case "problem lookup" `Quick test_problem_lookup;
    test_generators_safe;
    Alcotest.test_case "samples vary" `Quick test_samples_vary;
    Alcotest.test_case "samples solve same problem" `Quick
      test_samples_solve_same_problem;
    Alcotest.test_case "balanced split" `Quick test_split_balanced;
    Alcotest.test_case "shuffled classes" `Quick test_split_shuffled_classes;
    Alcotest.test_case "mirai structure" `Quick test_mirai_structure;
    test_mirai_runs;
    test_benign_runs;
    Alcotest.test_case "seed suite balance" `Quick test_seed_suite_balance;
    Alcotest.test_case "malware separable" `Slow
      test_malware_distinguishable_from_benign;
    Alcotest.test_case "genprog2 shape" `Quick test_genprog2_shape;
    test_genprog2_safe;
    Alcotest.test_case "genprog2 call-heavy" `Slow test_genprog2_is_call_heavy;
    Alcotest.test_case "genprog2 split" `Quick test_genprog2_split;
    Alcotest.test_case "benchgame sixteen" `Quick test_benchgame_sixteen;
    Alcotest.test_case "benchgame kernels run" `Slow test_benchgame_kernels_run;
    Alcotest.test_case "benchgame deterministic" `Slow test_benchgame_deterministic;
  ]
