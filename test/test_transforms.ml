(** Tests for the optimization passes: structural effects plus, crucially,
    semantic preservation on the full dataset corpus (qcheck fuzzing). *)

open Helpers
module Ir = Yali.Ir
module Tx = Yali.Transforms
module Op = Ir.Opcode

let opcount (m : Ir.Irmod.t) (op : Op.t) =
  List.length (List.filter (( = ) op) (Ir.Irmod.opcodes m))

(* -- mem2reg -------------------------------------------------------------- *)

let test_mem2reg_promotes_scalars () =
  let m = lower (parse "int main() { int a = 1; int b = a + 2; return b; }") in
  let m' = Tx.Mem2reg.run m in
  Alcotest.(check int) "no allocas left" 0 (opcount m' Op.Alloca);
  Alcotest.(check int) "no loads left" 0 (opcount m' Op.Load);
  Alcotest.(check int) "no stores left" 0 (opcount m' Op.Store)

let test_mem2reg_inserts_phis () =
  let m =
    lower
      (parse
         "int main() { int s = 0; int k = 0; while (k < read_int()) { s = s + k; k = k + 1; } return s; }")
  in
  let m' = Tx.Mem2reg.run m in
  Alcotest.(check bool) "phis inserted" true (opcount m' Op.Phi >= 2);
  Alcotest.(check int) "allocas gone" 0 (opcount m' Op.Alloca)

let test_mem2reg_keeps_arrays () =
  let m = lower (parse "int main() { int a[4]; a[0] = 1; return a[0]; }") in
  let m' = Tx.Mem2reg.run m in
  Alcotest.(check bool) "array alloca kept" true (opcount m' Op.Alloca >= 1)

let test_mem2reg_preserves =
  qtest ~count:60 "mem2reg preserves behaviour" (preserves_behaviour Tx.Mem2reg.run)

(* -- constant folding ----------------------------------------------------- *)

let test_constfold_folds () =
  (* hand-build IR with a constant expression that survives the frontend *)
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:Ir.Types.I32 in
  let e = Ir.Builder.new_block b in
  Ir.Builder.switch_to b e;
  let x = Ir.Builder.ibin b Ir.Instr.Add (Ir.Value.i32 2) (Ir.Value.i32 3) ~ty:Ir.Types.I32 in
  let y = Ir.Builder.ibin b Ir.Instr.Mul x (Ir.Value.i32 4) ~ty:Ir.Types.I32 in
  Ir.Builder.ret b (Some y);
  let m = Ir.Irmod.make ~name:"m" [ Ir.Builder.finish b ] in
  let m' = Tx.Constfold.run m in
  Alcotest.(check int) "everything folded" 0 (opcount m' Op.Add + opcount m' Op.Mul);
  let o = Ir.Interp.run m' [] in
  Alcotest.(check bool) "result 20" true (o.exit_value = Ir.Interp.RInt 20L)

let test_constfold_preserves =
  qtest ~count:40 "constfold preserves behaviour" (preserves_behaviour Tx.Constfold.run)

(* -- instcombine ---------------------------------------------------------- *)

(* instcombine must undo O-LLVM's instruction substitution: obfuscate with
   sub, then check the instruction count returns near the original *)
let test_instcombine_undoes_sub =
  qtest ~count:30 "instcombine + dce undoes most of sub's growth" (fun seed ->
      let m = lower (dataset_program seed) in
      let m = Tx.Mem2reg.run m in
      let n0 = Ir.Irmod.instr_count m in
      let obf = Yali.Obfuscation.Sub.run (Yali.Rng.make seed) m in
      let n1 = Ir.Irmod.instr_count obf in
      let cleaned = Tx.Dce.run (Tx.Instcombine.run obf) in
      let n2 = Ir.Irmod.instr_count cleaned in
      (* at least three quarters of the injected instructions disappear *)
      n2 <= n0 + ((n1 - n0) / 4))

(* the specific inverse rules for O-LLVM's -sub identities *)
let test_instcombine_ollvm_identities () =
  let check src expected_op forbidden_ops =
    let m = Tx.Dce.run (Tx.Instcombine.run (Tx.Mem2reg.run (lower (parse src)))) in
    Alcotest.(check bool)
      (Printf.sprintf "%s has %s" src (Ir.Opcode.to_string expected_op))
      true
      (opcount m expected_op >= 1);
    List.iter
      (fun op ->
        Alcotest.(check int)
          (Printf.sprintf "%s has no %s" src (Ir.Opcode.to_string op))
          0 (opcount m op))
      forbidden_ops
  in
  (* (a|b) + (a&b) ==> a + b *)
  check
    "int main() { int a = read_int(); int b = read_int(); return (a | b) + (a & b); }"
    Ir.Opcode.Add
    [ Ir.Opcode.Or; Ir.Opcode.And ];
  (* (a|b) - (a&b) ==> a ^ b *)
  check
    "int main() { int a = read_int(); int b = read_int(); return (a | b) - (a & b); }"
    Ir.Opcode.Xor
    [ Ir.Opcode.Or; Ir.Opcode.And; Ir.Opcode.Sub ];
  (* (a|b) - (a^b) ==> a & b *)
  check
    "int main() { int a = read_int(); int b = read_int(); return (a | b) - (a ^ b); }"
    Ir.Opcode.And
    [ Ir.Opcode.Or; Ir.Opcode.Xor; Ir.Opcode.Sub ];
  (* (a&b) + (a^b) ==> a | b *)
  check
    "int main() { int a = read_int(); int b = read_int(); return (a & b) + (a ^ b); }"
    Ir.Opcode.Or
    [ Ir.Opcode.And; Ir.Opcode.Xor; Ir.Opcode.Add ]

let test_instcombine_identities () =
  let src = "int main() { int a = read_int(); int b = a + 0; int c = b * 1; int d = c - 0; return d; }" in
  let m = Tx.Instcombine.run (Tx.Mem2reg.run (lower (parse src))) in
  Alcotest.(check int) "identities removed" 0
    (opcount m Op.Add + opcount m Op.Mul + opcount m Op.Sub)

let test_instcombine_a_minus_neg_b () =
  (* a - (0 - b) ==> a + b *)
  let b = Ir.Builder.create ~name:"main" ~param_tys:[] ~ret:Ir.Types.I32 in
  let e = Ir.Builder.new_block b in
  Ir.Builder.switch_to b e;
  let x = Ir.Builder.call b ~ty:Ir.Types.I32 "read_int" [] in
  let y = Ir.Builder.call b ~ty:Ir.Types.I32 "read_int" [] in
  let neg = Ir.Builder.ibin b Ir.Instr.Sub (Ir.Value.i32 0) y ~ty:Ir.Types.I32 in
  let r = Ir.Builder.ibin b Ir.Instr.Sub x neg ~ty:Ir.Types.I32 in
  Ir.Builder.ret b (Some r);
  let m = Ir.Irmod.make ~name:"m" [ Ir.Builder.finish b ] in
  let m' = Tx.Dce.run (Tx.Instcombine.run m) in
  Alcotest.(check int) "rewritten to add" 1 (opcount m' Op.Add);
  Alcotest.(check int) "subs gone" 0 (opcount m' Op.Sub);
  let o = Ir.Interp.run m' [ 10L; 4L ] in
  Alcotest.(check bool) "10 - (0-4) = 14" true (o.exit_value = Ir.Interp.RInt 14L)

let test_instcombine_preserves =
  qtest ~count:40 "instcombine preserves behaviour"
    (preserves_behaviour (fun m -> Tx.Instcombine.run (Tx.Mem2reg.run m)))

(* -- dce ------------------------------------------------------------------ *)

let test_dce_removes_dead () =
  let src = "int main() { int dead = 5 * read_int(); int live = 3; return live; }" in
  let m = Tx.Dce.run (Tx.Mem2reg.run (lower (parse src))) in
  (* the multiply is dead but the read_int call must stay (side effect) *)
  Alcotest.(check int) "mul removed" 0 (opcount m Op.Mul);
  Alcotest.(check int) "call kept" 1 (opcount m Op.Call)

let test_dce_preserves =
  qtest ~count:40 "dce preserves behaviour" (preserves_behaviour Tx.Dce.run)

(* -- simplifycfg ---------------------------------------------------------- *)

let test_simplifycfg_folds_constant_branch () =
  let src = "int main() { if (1 < 2) { return 10; } else { return 20; } }" in
  let m = Tx.Simplifycfg.run (Tx.Instcombine.run (Tx.Mem2reg.run (lower (parse src)))) in
  let f = Ir.Irmod.find_func_exn m "main" in
  Alcotest.(check int) "collapsed to one block" 1 (List.length f.blocks)

let test_simplifycfg_merges_chains () =
  let m = lower (parse "int main() { int a = 1; { { a = 2; } } return a; }") in
  let m' = Tx.Simplifycfg.run m in
  let f = Ir.Irmod.find_func_exn m' "main" in
  Alcotest.(check int) "straight-line merged" 1 (List.length f.blocks)

let test_simplifycfg_preserves =
  qtest ~count:60 "simplifycfg preserves behaviour" (preserves_behaviour Tx.Simplifycfg.run)

(* -- gvn ------------------------------------------------------------------ *)

let test_gvn_dedups () =
  let src =
    "int main() { int a = read_int(); int x = a * 3 + 1; int y = a * 3 + 1; return x + y; }"
  in
  let m = Tx.Gvn.run (Tx.Mem2reg.run (lower (parse src))) in
  Alcotest.(check int) "one multiply left" 1 (opcount m Op.Mul)

let test_gvn_respects_commutativity () =
  let src = "int main() { int a = read_int(); int b = read_int(); return (a + b) + (b + a); }" in
  let m = Tx.Gvn.run (Tx.Mem2reg.run (lower (parse src))) in
  (* a+b and b+a unify; one add for the cse'd value + one final add *)
  Alcotest.(check int) "adds deduped" 2 (opcount m Op.Add)

let test_gvn_keeps_loads () =
  (* loads must not be unified across an intervening store *)
  let src = "int main() { int a[2]; a[0] = 1; int x = a[0]; a[0] = 2; int y = a[0]; return x + y; }" in
  let m = Tx.Gvn.run (lower (parse src)) in
  let o = Ir.Interp.run m [] in
  Alcotest.(check bool) "1 + 2 = 3" true (o.exit_value = Ir.Interp.RInt 3L)

let test_gvn_preserves =
  qtest ~count:40 "gvn preserves behaviour"
    (preserves_behaviour (fun m -> Tx.Gvn.run (Tx.Mem2reg.run m)))

(* -- inlining ------------------------------------------------------------- *)

let test_inline_small_callee () =
  let src = "int sq(int x) { return x * x; } int main() { return sq(read_int()); }" in
  let m = Tx.Inline.run (Tx.Mem2reg.run (lower (parse src))) in
  let main = Ir.Irmod.find_func_exn m "main" in
  let calls =
    List.filter
      (fun (i : Ir.Instr.t) ->
        match i.kind with Ir.Instr.Call ("sq", _) -> true | _ -> false)
      (Ir.Func.instrs main)
  in
  Alcotest.(check int) "call inlined away" 0 (List.length calls);
  let o = Ir.Interp.run m [ 6L ] in
  Alcotest.(check bool) "6*6" true (o.exit_value = Ir.Interp.RInt 36L)

let test_inline_skips_recursive () =
  let src = "int f(int n) { if (n <= 0) { return 0; } return 1 + f(n - 1); } int main() { return f(3); }" in
  let m = Tx.Inline.run (lower (parse src)) in
  Alcotest.(check bool) "recursive callee survives" true
    (Ir.Irmod.find_func m "f" <> None);
  let o = Ir.Interp.run m [] in
  Alcotest.(check bool) "f 3 = 3" true (o.exit_value = Ir.Interp.RInt 3L)

let test_inline_preserves =
  qtest ~count:40 "inline preserves behaviour"
    (preserves_behaviour (fun m -> Tx.Inline.run m))

(* -- inline + gvn interaction --------------------------------------------- *)

let inline_gvn m = Tx.Gvn.run (Tx.Inline.run (Tx.Mem2reg.run m))

let test_inline_exposes_redundancy_to_gvn () =
  (* the callee recomputes [a * 3 + 1], already computed at the call site;
     only after inlining can gvn see the redundancy across the old call
     boundary and unify the two *)
  let src =
    "int f(int a) { return a * 3 + 1; } \
     int main() { int a = read_int(); int x = a * 3 + 1; return x + f(a); }"
  in
  let m0 = Tx.Mem2reg.run (lower (parse src)) in
  let gvn_only = Tx.Gvn.run m0 in
  let main_muls m =
    let f = Ir.Irmod.find_func_exn m "main" in
    List.length
      (List.filter
         (fun (i : Ir.Instr.t) -> Ir.Instr.opcode i = Op.Mul)
         (Ir.Func.instrs f))
  in
  (* without inlining the call hides the redundancy from gvn *)
  Alcotest.(check int) "gvn alone leaves main's multiply" 1 (main_muls gvn_only);
  let m = inline_gvn m0 in
  Alcotest.(check int) "inline + gvn: one multiply in main" 1 (main_muls m);
  Alcotest.(check int) "inline + gvn: call gone"
    0
    (List.length
       (List.filter
          (fun (i : Ir.Instr.t) ->
            match i.kind with Ir.Instr.Call ("f", _) -> true | _ -> false)
          (Ir.Func.instrs (Ir.Irmod.find_func_exn m "main"))));
  (match Ir.Verify.check_module m with
  | [] -> ()
  | e :: _ -> Alcotest.failf "verifier: %a" Ir.Verify.pp_error e);
  let o = Ir.Interp.run m [ 5L ] in
  (* (5*3+1) + (5*3+1) = 32 *)
  Alcotest.(check bool) "result 32" true (o.exit_value = Ir.Interp.RInt 32L)

let test_inline_gvn_multiple_calls () =
  (* two calls to the same pure callee on the same argument: after inlining,
     gvn can collapse the duplicated bodies to a single computation *)
  let src =
    "int sq(int x) { return x * x; } \
     int main() { int a = read_int(); return sq(a) + sq(a); }"
  in
  let m = inline_gvn (lower (parse src)) in
  let f = Ir.Irmod.find_func_exn m "main" in
  Alcotest.(check int) "duplicate bodies unified: one multiply" 1
    (List.length
       (List.filter
          (fun (i : Ir.Instr.t) -> Ir.Instr.opcode i = Op.Mul)
          (Ir.Func.instrs f)));
  let o = Ir.Interp.run m [ 7L ] in
  Alcotest.(check bool) "49 + 49" true (o.exit_value = Ir.Interp.RInt 98L)

let test_inline_gvn_preserves =
  qtest ~count:40 "inline + gvn preserves behaviour"
    (preserves_behaviour inline_gvn)

(* -- pipelines ------------------------------------------------------------ *)

let test_pipelines_preserve =
  [
    qtest ~count:60 "O1 preserves behaviour" (preserves_behaviour Tx.Pipeline.o1);
    qtest ~count:60 "O2 preserves behaviour" (preserves_behaviour Tx.Pipeline.o2);
    qtest ~count:60 "O3 preserves behaviour" (preserves_behaviour Tx.Pipeline.o3);
  ]

let test_pipeline_reduces_cost =
  qtest ~count:25 "O3 reduces dynamic cost" (fun seed ->
      let m = lower (dataset_program seed) in
      let input = fuzz_input seed in
      let base = Ir.Interp.run ~fuel:4_000_000 m input in
      let o = Ir.Interp.run ~fuel:4_000_000 (Tx.Pipeline.o3 m) input in
      o.cost <= base.cost)

let test_o3_idempotent =
  qtest ~count:25 "O3 is (size-)idempotent" (fun seed ->
      let m = Tx.Pipeline.o3 (lower (dataset_program seed)) in
      Ir.Irmod.instr_count (Tx.Pipeline.o3 m) <= Ir.Irmod.instr_count m)

let test_levels_monotone =
  qtest ~count:25 "higher levels never produce slower code" (fun seed ->
      let m = lower (dataset_program seed) in
      let input = fuzz_input seed in
      let cost opt = (Ir.Interp.run ~fuel:4_000_000 (opt m) input).cost in
      let c0 = cost Tx.Pipeline.o0 and c1 = cost Tx.Pipeline.o1 in
      let c3 = cost Tx.Pipeline.o3 in
      c1 <= c0 && c3 <= c0)

let test_level_parsing () =
  Alcotest.(check bool) "O0" true (Tx.Pipeline.level_of_string "-O0" = Some Tx.Pipeline.O0);
  Alcotest.(check bool) "o3" true (Tx.Pipeline.level_of_string "o3" = Some Tx.Pipeline.O3);
  Alcotest.(check bool) "junk" true (Tx.Pipeline.level_of_string "Ofast" = None)

let suite =
  [
    Alcotest.test_case "mem2reg promotes scalars" `Quick test_mem2reg_promotes_scalars;
    Alcotest.test_case "mem2reg inserts phis" `Quick test_mem2reg_inserts_phis;
    Alcotest.test_case "mem2reg keeps arrays" `Quick test_mem2reg_keeps_arrays;
    test_mem2reg_preserves;
    Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
    test_constfold_preserves;
    test_instcombine_undoes_sub;
    Alcotest.test_case "instcombine ollvm identities" `Quick
      test_instcombine_ollvm_identities;
    Alcotest.test_case "instcombine identities" `Quick test_instcombine_identities;
    Alcotest.test_case "instcombine a-(0-b)" `Quick test_instcombine_a_minus_neg_b;
    test_instcombine_preserves;
    Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
    test_dce_preserves;
    Alcotest.test_case "simplifycfg folds const branch" `Quick
      test_simplifycfg_folds_constant_branch;
    Alcotest.test_case "simplifycfg merges chains" `Quick
      test_simplifycfg_merges_chains;
    test_simplifycfg_preserves;
    Alcotest.test_case "gvn dedups" `Quick test_gvn_dedups;
    Alcotest.test_case "gvn commutativity" `Quick test_gvn_respects_commutativity;
    Alcotest.test_case "gvn keeps loads" `Quick test_gvn_keeps_loads;
    test_gvn_preserves;
    Alcotest.test_case "inline small callee" `Quick test_inline_small_callee;
    Alcotest.test_case "inline skips recursive" `Quick test_inline_skips_recursive;
    test_inline_preserves;
    Alcotest.test_case "inline exposes redundancy to gvn" `Quick
      test_inline_exposes_redundancy_to_gvn;
    Alcotest.test_case "inline + gvn collapses duplicate calls" `Quick
      test_inline_gvn_multiple_calls;
    test_inline_gvn_preserves;
  ]
  @ test_pipelines_preserve
  @ [
      test_pipeline_reduces_cost;
      test_o3_idempotent;
      test_levels_monotone;
      Alcotest.test_case "level parsing" `Quick test_level_parsing;
    ]
