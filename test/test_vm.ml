(** Tests for the pre-compiling VM and the engine switchboard: the
    bit-identical-outcome contract against the reference interpreter on the
    nasty edges — division traps, [Int64.min_int / -1], narrow-width
    wraparound, exact fuel boundaries, allocator exhaustion, pointer/int
    coercions — plus engine selection and memory-arena reuse. *)

open Helpers
module Ir = Yali.Ir
module Interp = Ir.Interp
module Vm = Yali.Vm
module Execution = Yali.Execution

(* A run's full observable result, exceptions included.  [show] folds in
   steps and cost: the VM contract is bit-identical accounting, not just
   equal observations. *)
type result = Finished of Interp.outcome | Trapped of string | Exhausted

let run_result (engine : Execution.engine) ?(fuel = 200_000) m input : result =
  try Finished (Execution.run ~engine ~fuel m input) with
  | Interp.Trap msg -> Trapped msg
  | Interp.Out_of_fuel -> Exhausted

let show (r : result) : string =
  match r with
  | Trapped msg -> "trap: " ^ msg
  | Exhausted -> "out of fuel"
  | Finished o ->
      let ev =
        match o.exit_value with
        | Interp.RInt n -> Printf.sprintf "i:%Ld" n
        | Interp.RFloat f -> Printf.sprintf "f:%.17g" f
        | Interp.RPtr p -> Printf.sprintf "p:%d" p
        | Interp.RUnit -> "unit"
      in
      Printf.sprintf "exit=%s out=[%s] fout=[%s] steps=%d cost=%d" ev
        (String.concat ";" (List.map Int64.to_string o.output))
        (String.concat ";" (List.map (Printf.sprintf "%.17g") o.foutput))
        o.steps o.cost

(* Run under both engines, insist the results (traps, outputs, steps and
   cost alike) agree, and hand back the shared result. *)
let both ?fuel ?(input = []) (m : Ir.Irmod.t) : result =
  let r_vm = run_result Execution.Vm ?fuel m input in
  let r_ref = run_result Execution.Ref ?fuel m input in
  Alcotest.(check string) "vm agrees with reference" (show r_ref) (show r_vm);
  r_vm

let both_src ?fuel ?input (src : string) : result =
  both ?fuel ?input (lower (parse src))

let both_ir ?fuel ?input (txt : string) : result =
  both ?fuel ?input (Ir.Parser.parse_module txt)

let check_result name expected actual =
  Alcotest.(check string) name expected (show actual)

let exit_of name r =
  match r with
  | Finished o -> o.exit_value
  | _ -> Alcotest.failf "%s: expected a finished run, got %s" name (show r)

(* ------------------------------------------------------------------ *)
(* Division edges                                                      *)
(* ------------------------------------------------------------------ *)

let test_division_by_zero () =
  let trap r = check_result "division by zero traps" "trap: division by zero" r in
  trap (both_src ~input:[ 0L ] "int main() { int a = read_int(); return 7 / a; }");
  trap (both_src ~input:[ 0L ] "int main() { int a = read_int(); return 7 % a; }");
  (* 64-bit and unsigned forms, straight IR *)
  trap (both_ir {|
define i64 @main() {
e:
  %0 = add i64 5, 0
  %1 = sdiv i64 %0, 0
  ret %1
}
|});
  trap (both_ir {|
define i64 @main() {
e:
  %0 = add i64 5, 0
  %1 = udiv i64 %0, 0
  ret %1
}
|});
  trap (both_ir {|
define i64 @main() {
e:
  %0 = add i64 5, 0
  %1 = urem i64 %0, 0
  ret %1
}
|})

let test_min_int_overflow_division () =
  (* Int64.min_int / -1 overflows in two's complement; the interpreter
     (OCaml's Int64.div) wraps to min_int, and the VM must match. *)
  let r = both_ir {|
define i64 @main() {
e:
  %0 = add i64 -9223372036854775808, 0
  %1 = sdiv i64 %0, -1
  ret %1
}
|} in
  Alcotest.(check bool) "min_int/-1 wraps to min_int" true
    (exit_of "sdiv" r = Interp.RInt Int64.min_int);
  let r = both_ir {|
define i64 @main() {
e:
  %0 = add i64 -9223372036854775808, 0
  %1 = srem i64 %0, -1
  ret %1
}
|} in
  Alcotest.(check bool) "min_int%-1 is 0" true (exit_of "srem" r = Interp.RInt 0L)

(* ------------------------------------------------------------------ *)
(* Narrow-width wraparound                                             *)
(* ------------------------------------------------------------------ *)

let test_narrow_wraparound () =
  let r = both_src "int main() { int a = 2147483647; return a + 1; }" in
  Alcotest.(check bool) "i32 max+1 wraps negative" true
    (exit_of "i32 add" r = Interp.RInt (-2147483648L));
  let r = both_src "int main() { int a = 0 - 2147483648; return a - 1; }" in
  Alcotest.(check bool) "i32 min-1 wraps positive" true
    (exit_of "i32 sub" r = Interp.RInt 2147483647L);
  let r = both_src "int main() { int a = 1000000; return a * 12345; }" in
  Alcotest.(check bool) "i32 mul wraps like the interpreter" true
    (exit_of "i32 mul" r
    = Interp.RInt (Ir.Interp.normalize Ir.Types.I32 12_345_000_000L));
  (* i8: 127 + 1 sign-wraps to -128 *)
  let r = both_ir {|
define i8 @main() {
e:
  %0 = add i8 127, 1
  ret %0
}
|} in
  Alcotest.(check bool) "i8 max+1 wraps to -128" true
    (exit_of "i8 add" r = Interp.RInt (-128L));
  (* i8 unsigned division sees the masked operands *)
  let r = both_ir {|
define i8 @main() {
e:
  %0 = add i8 -2, 0
  %1 = udiv i8 %0, 16
  ret %1
}
|} in
  Alcotest.(check bool) "i8 udiv masks to 254/16" true
    (exit_of "i8 udiv" r = Interp.RInt 15L)

(* ------------------------------------------------------------------ *)
(* Fuel accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_fuel_boundary () =
  let m =
    lower
      (parse
         "int main() { int i = 0; int s = 0; while (i < 25) { s = s + i; i = i + 1; } return s; }")
  in
  let steps =
    match run_result Execution.Ref ~fuel:1_000_000 m [] with
    | Finished o -> o.steps
    | r -> Alcotest.failf "baseline run failed: %s" (show r)
  in
  (* exactly enough fuel: both engines finish with identical accounting *)
  (match both ~fuel:steps m with
  | Finished o -> Alcotest.(check int) "steps = fuel exactly" steps o.steps
  | r -> Alcotest.failf "exact fuel should finish: %s" (show r));
  (* one short: both engines run dry *)
  check_result "fuel-1 exhausts both engines" "out of fuel"
    (both ~fuel:(steps - 1) m);
  check_result "tiny fuel exhausts both engines" "out of fuel" (both ~fuel:1 m)

(* ------------------------------------------------------------------ *)
(* Allocator exhaustion                                                *)
(* ------------------------------------------------------------------ *)

let test_allocator_exhaustion () =
  (* each call grabs a quarter of the 2^20-cell image; the fifth cannot *)
  check_result "alloca beyond the memory image traps" "trap: out of memory"
    (both_ir ~fuel:1_000_000 {|
define void @f() {
e:
  %0 = alloca [262144 x i64]
  ret void
}
define i64 @main() {
e:
  %0 = add i64 0, 0
  br label %h
h:
  %1 = phi i64 [ %0, %e ], [ %3, %b ]
  call void @f()
  br label %b
b:
  %3 = add i64 %1, 1
  br label %h
}
|});
  (* a single oversized frame traps too *)
  check_result "oversized alloca traps" "trap: out of memory"
    (both_ir {|
define i64 @main() {
e:
  %0 = alloca [2097152 x i64]
  ret 0
}
|})

(* ------------------------------------------------------------------ *)
(* Pointer/integer coercions                                           *)
(* ------------------------------------------------------------------ *)

let test_pointer_coercions () =
  (* arithmetic on a raw pointer trips the dynamic tag check *)
  check_result "as_int on a pointer traps" "trap: expected integer, got pointer"
    (both_ir {|
define i64 @main() {
e:
  %0 = alloca i64
  %1 = add i64 %0, 1
  ret %1
}
|});
  (* the sanctioned route: ptrtoint, arithmetic, inttoptr, store/load *)
  let r = both_ir {|
define i64 @main() {
e:
  %0 = alloca [4 x i64]
  %1 = ptrtoint %0 to i64
  %2 = add i64 %1, 2
  %3 = inttoptr %2 to i64*
  store 42, %3
  %4 = load i64, %3
  ret %4
}
|} in
  Alcotest.(check bool) "ptrtoint round-trip stores and loads" true
    (exit_of "ptrtoint" r = Interp.RInt 42L);
  (* returning the pointer itself is fine — and the exit values agree *)
  (match both_ir {|
define i64 @main() {
e:
  %0 = alloca i64
  ret %0
}
|} with
  | Finished { exit_value = Interp.RPtr _; _ } -> ()
  | r -> Alcotest.failf "expected a pointer exit, got %s" (show r))

(* ------------------------------------------------------------------ *)
(* Structural parity: recursion, intrinsics, switch, globals           *)
(* ------------------------------------------------------------------ *)

let test_recursion_parity () =
  let r =
    both_src ~fuel:2_000_000
      "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return fib(18); }"
  in
  Alcotest.(check bool) "fib(18)" true (exit_of "fib" r = Interp.RInt 2584L)

let test_intrinsics_parity () =
  let r =
    both_src
      ~input:[ -7L; 3L ]
      "int main() { int a = read_int(); int b = read_int(); print_int(abs(a)); print_int(min(a, b)); print_int(max(a, b)); return 0; }"
  in
  match r with
  | Finished o ->
      Alcotest.(check (list int)) "abs/min/max outputs" [ 7; -7; 3 ]
        (List.map Int64.to_int o.output)
  | r -> Alcotest.failf "intrinsics run failed: %s" (show r)

let test_switch_and_globals_parity () =
  let m = Ir.Parser.parse_module {|
@g = global i64
define i64 @main() {
entry:
  store 3, @g
  %0 = load i64, @g
  switch %0, label %d [0: %z 3: %t]
z:
  ret 10
t:
  store 9, @g
  %1 = load i64, @g
  ret %1
d:
  ret 12
}
|} in
  let r = both m in
  Alcotest.(check bool) "switch picks the stored-global arm" true
    (exit_of "switch" r = Interp.RInt 9L)

let test_dataset_parity =
  qtest ~count:40 "vm matches interpreter on dataset programs"
    (fun seed ->
      let m = lower (dataset_program seed) in
      let input = fuzz_input seed in
      show (run_result Execution.Vm ~fuel:200_000 m input)
      = show (run_result Execution.Ref ~fuel:200_000 m input))

(* ------------------------------------------------------------------ *)
(* Engine switchboard                                                  *)
(* ------------------------------------------------------------------ *)

let test_engine_selection () =
  Alcotest.(check bool) "vm parses" true
    (Execution.engine_of_string "vm" = Some Execution.Vm);
  Alcotest.(check bool) "ref parses" true
    (Execution.engine_of_string "ref" = Some Execution.Ref);
  Alcotest.(check bool) "junk rejected" true
    (Execution.engine_of_string "jit" = None);
  Alcotest.(check string) "names round-trip" "ref"
    (Execution.engine_to_string Execution.Ref);
  let before = Execution.get_engine () in
  let inside =
    Execution.with_engine Execution.Ref (fun () -> Execution.get_engine ())
  in
  Alcotest.(check bool) "with_engine scopes the override" true
    (inside = Execution.Ref && Execution.get_engine () = before);
  (* restored even when the thunk raises *)
  (try
     Execution.with_engine Execution.Ref (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after an exception" true
    (Execution.get_engine () = before)

let test_arena_reuse () =
  let m = lower (parse "int main() { int a[64]; a[3] = 5; return a[3]; }") in
  let p = Vm.compile m in
  let first = Vm.run_compiled p [] in
  let created0 = Vm.arenas_created () in
  for _ = 1 to 50 do
    let o = Vm.run_compiled p [] in
    Alcotest.(check bool) "repeat runs identical" true (o = first)
  done;
  Alcotest.(check int) "50 reruns allocate no new memory images" created0
    (Vm.arenas_created ())

let suite =
  [
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "min_int overflow division" `Quick
      test_min_int_overflow_division;
    Alcotest.test_case "narrow-width wraparound" `Quick test_narrow_wraparound;
    Alcotest.test_case "fuel boundary" `Quick test_fuel_boundary;
    Alcotest.test_case "allocator exhaustion" `Quick test_allocator_exhaustion;
    Alcotest.test_case "pointer coercions" `Quick test_pointer_coercions;
    Alcotest.test_case "recursion parity" `Quick test_recursion_parity;
    Alcotest.test_case "intrinsics parity" `Quick test_intrinsics_parity;
    Alcotest.test_case "switch and globals parity" `Quick
      test_switch_and_globals_parity;
    test_dataset_parity;
    Alcotest.test_case "engine selection" `Quick test_engine_selection;
    Alcotest.test_case "arena reuse" `Quick test_arena_reuse;
  ]
