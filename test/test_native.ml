(** Tests for the native (compile-to-OCaml + Dynlink) execution tier: the
    bit-identical-outcome contract against the reference interpreter on the
    same nasty edges the VM suite covers — division traps,
    [Int64.min_int / -1], narrow-width wraparound, exact fuel boundaries,
    allocator exhaustion, pointer/int coercions — plus batch compilation,
    artifact-cache hits, graceful fallback when the toolchain is missing,
    and domain-local [with_engine] under [Exec.Pool].

    Parity cases skip silently when no ocamlopt/Dynlink is available (the
    fallback cases still run: they force unavailability themselves). *)

open Helpers
module Ir = Yali.Ir
module Interp = Ir.Interp
module Native = Yali.Native
module Execution = Yali.Execution
module Exec = Yali.Exec
module Telemetry = Yali.Exec.Telemetry

type result = Finished of Interp.outcome | Trapped of string | Exhausted

let show (r : result) : string =
  match r with
  | Trapped msg -> "trap: " ^ msg
  | Exhausted -> "out of fuel"
  | Finished o ->
      let ev =
        match o.exit_value with
        | Interp.RInt n -> Printf.sprintf "i:%Ld" n
        | Interp.RFloat f -> Printf.sprintf "f:%.17g" f
        | Interp.RPtr p -> Printf.sprintf "p:%d" p
        | Interp.RUnit -> "unit"
      in
      Printf.sprintf "exit=%s out=[%s] fout=[%s] steps=%d cost=%d" ev
        (String.concat ";" (List.map Int64.to_string o.output))
        (String.concat ";" (List.map (Printf.sprintf "%.17g") o.foutput))
        o.steps o.cost

let catching f =
  try Finished (f ()) with
  | Interp.Trap msg -> Trapped msg
  | Interp.Out_of_fuel -> Exhausted

let run_ref ?(fuel = 200_000) m input = catching (fun () -> Interp.run ~fuel m input)

let run_prepared (p : Native.prepared) ?(fuel = 200_000) input =
  catching (fun () -> p ~fuel input)

(* Parity tests are meaningful only where the tier can actually compile;
   elsewhere they skip (the fallback tests below cover that world). *)
let with_native (k : unit -> unit) () =
  if Native.available () then k ()
  else
    Printf.eprintf "  [native tier unavailable (%s); parity case skipped]\n%!"
      (Option.value ~default:"?" (Native.why_unavailable ()))

(* Compile under the native tier, run under both it and the reference
   interpreter, insist the results (traps, outputs, steps and cost alike)
   agree, and hand back the shared result. *)
let both ?fuel ?(input = []) (m : Ir.Irmod.t) : result =
  match Native.prepare m with
  | Error e -> Alcotest.failf "native prepare failed: %s" e
  | Ok p ->
      let r_nat = run_prepared p ?fuel input in
      let r_ref = run_ref ?fuel m input in
      Alcotest.(check string) "native agrees with reference" (show r_ref)
        (show r_nat);
      r_nat

let both_src ?fuel ?input (src : string) : result =
  both ?fuel ?input (lower (parse src))

let both_ir ?fuel ?input (txt : string) : result =
  both ?fuel ?input (Ir.Parser.parse_module txt)

let check_result name expected actual =
  Alcotest.(check string) name expected (show actual)

let exit_of name r =
  match r with
  | Finished o -> o.exit_value
  | _ -> Alcotest.failf "%s: expected a finished run, got %s" name (show r)

(* ------------------------------------------------------------------ *)
(* Trap-edge parity (ported from the VM suite)                         *)
(* ------------------------------------------------------------------ *)

let test_division_by_zero () =
  let trap r = check_result "division by zero traps" "trap: division by zero" r in
  trap (both_src ~input:[ 0L ] "int main() { int a = read_int(); return 7 / a; }");
  trap (both_src ~input:[ 0L ] "int main() { int a = read_int(); return 7 % a; }");
  trap (both_ir {|
define i64 @main() {
e:
  %0 = add i64 5, 0
  %1 = udiv i64 %0, 0
  ret %1
}
|});
  trap (both_ir {|
define i64 @main() {
e:
  %0 = add i64 5, 0
  %1 = urem i64 %0, 0
  ret %1
}
|})

let test_min_int_overflow_division () =
  let r = both_ir {|
define i64 @main() {
e:
  %0 = add i64 -9223372036854775808, 0
  %1 = sdiv i64 %0, -1
  ret %1
}
|} in
  Alcotest.(check bool) "min_int/-1 wraps to min_int" true
    (exit_of "sdiv" r = Interp.RInt Int64.min_int);
  let r = both_ir {|
define i64 @main() {
e:
  %0 = add i64 -9223372036854775808, 0
  %1 = srem i64 %0, -1
  ret %1
}
|} in
  Alcotest.(check bool) "min_int%-1 is 0" true (exit_of "srem" r = Interp.RInt 0L)

let test_narrow_wraparound () =
  let r = both_src "int main() { int a = 2147483647; return a + 1; }" in
  Alcotest.(check bool) "i32 max+1 wraps negative" true
    (exit_of "i32 add" r = Interp.RInt (-2147483648L));
  let r = both_ir {|
define i8 @main() {
e:
  %0 = add i8 127, 1
  ret %0
}
|} in
  Alcotest.(check bool) "i8 max+1 wraps to -128" true
    (exit_of "i8 add" r = Interp.RInt (-128L));
  let r = both_ir {|
define i8 @main() {
e:
  %0 = add i8 -2, 0
  %1 = udiv i8 %0, 16
  ret %1
}
|} in
  Alcotest.(check bool) "i8 udiv masks to 254/16" true
    (exit_of "i8 udiv" r = Interp.RInt 15L)

let test_fuel_boundary () =
  let m =
    lower
      (parse
         "int main() { int i = 0; int s = 0; while (i < 25) { s = s + i; i = i + 1; } return s; }")
  in
  let steps =
    match run_ref ~fuel:1_000_000 m [] with
    | Finished o -> o.steps
    | r -> Alcotest.failf "baseline run failed: %s" (show r)
  in
  (match both ~fuel:steps m with
  | Finished o -> Alcotest.(check int) "steps = fuel exactly" steps o.steps
  | r -> Alcotest.failf "exact fuel should finish: %s" (show r));
  check_result "fuel-1 exhausts both engines" "out of fuel"
    (both ~fuel:(steps - 1) m);
  check_result "tiny fuel exhausts both engines" "out of fuel" (both ~fuel:1 m)

let test_allocator_exhaustion () =
  check_result "alloca beyond the memory image traps" "trap: out of memory"
    (both_ir ~fuel:1_000_000 {|
define void @f() {
e:
  %0 = alloca [262144 x i64]
  ret void
}
define i64 @main() {
e:
  %0 = add i64 0, 0
  br label %h
h:
  %1 = phi i64 [ %0, %e ], [ %3, %b ]
  call void @f()
  br label %b
b:
  %3 = add i64 %1, 1
  br label %h
}
|});
  check_result "oversized alloca traps" "trap: out of memory"
    (both_ir {|
define i64 @main() {
e:
  %0 = alloca [2097152 x i64]
  ret 0
}
|})

let test_pointer_coercions () =
  check_result "as_int on a pointer traps" "trap: expected integer, got pointer"
    (both_ir {|
define i64 @main() {
e:
  %0 = alloca i64
  %1 = add i64 %0, 1
  ret %1
}
|});
  let r = both_ir {|
define i64 @main() {
e:
  %0 = alloca [4 x i64]
  %1 = ptrtoint %0 to i64
  %2 = add i64 %1, 2
  %3 = inttoptr %2 to i64*
  store 42, %3
  %4 = load i64, %3
  ret %4
}
|} in
  Alcotest.(check bool) "ptrtoint round-trip stores and loads" true
    (exit_of "ptrtoint" r = Interp.RInt 42L);
  (match both_ir {|
define i64 @main() {
e:
  %0 = alloca i64
  ret %0
}
|} with
  | Finished { exit_value = Interp.RPtr _; _ } -> ()
  | r -> Alcotest.failf "expected a pointer exit, got %s" (show r))

(* ------------------------------------------------------------------ *)
(* Structural parity                                                   *)
(* ------------------------------------------------------------------ *)

let test_recursion_parity () =
  let r =
    both_src ~fuel:2_000_000
      "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return fib(18); }"
  in
  Alcotest.(check bool) "fib(18)" true (exit_of "fib" r = Interp.RInt 2584L)

let test_intrinsics_parity () =
  let r =
    both_src
      ~input:[ -7L; 3L ]
      "int main() { int a = read_int(); int b = read_int(); print_int(abs(a)); print_int(min(a, b)); print_int(max(a, b)); return 0; }"
  in
  match r with
  | Finished o ->
      Alcotest.(check (list int)) "abs/min/max outputs" [ 7; -7; 3 ]
        (List.map Int64.to_int o.output)
  | r -> Alcotest.failf "intrinsics run failed: %s" (show r)

let test_float_parity () =
  let r =
    both_src
      "double h(double x) { return x * 1.5 + 0.25; } int main() { double a = h(3.0); print_float(a); print_float(a / 0.0); print_float(0.0 / 0.0); return 0; }"
  in
  match r with
  | Finished o ->
      Alcotest.(check int) "three float outputs" 3 (List.length o.foutput)
  | r -> Alcotest.failf "float run failed: %s" (show r)

let test_switch_and_globals_parity () =
  let m = Ir.Parser.parse_module {|
@g = global i64
define i64 @main() {
entry:
  store 3, @g
  %0 = load i64, @g
  switch %0, label %d [0: %z 3: %t]
z:
  ret 10
t:
  store 9, @g
  %1 = load i64, @g
  ret %1
d:
  ret 12
}
|} in
  let r = both m in
  Alcotest.(check bool) "switch picks the stored-global arm" true
    (exit_of "switch" r = Interp.RInt 9L)

(* One plugin, many programs: the oracle's amortisation path.  Also the
   realistic-program sweep (dataset problems at various seeds). *)
let test_batch_dataset_parity () =
  let seeds = List.init 12 (fun i -> (i * 31) + 2) in
  let ms = Array.of_list (List.map (fun s -> lower (dataset_program s)) seeds) in
  match Native.prepare_many ms with
  | Error e -> Alcotest.failf "batch prepare failed: %s" e
  | Ok ps ->
      List.iteri
        (fun i seed ->
          let input = fuzz_input seed in
          let r_nat = run_prepared ps.(i) ~fuel:200_000 input in
          let r_ref = run_ref ~fuel:200_000 ms.(i) input in
          Alcotest.(check string)
            (Printf.sprintf "dataset seed %d" seed)
            (show r_ref) (show r_nat))
        seeds

(* ------------------------------------------------------------------ *)
(* Artifact cache                                                      *)
(* ------------------------------------------------------------------ *)

let test_cache_hits () =
  let m = lower (parse "int main() { int a = read_int(); return a * 3 + 29; }") in
  let h0 = Telemetry.counter "native.cache.hits" in
  (match Native.prepare m with
  | Ok p -> ignore (p ~fuel:1_000 [ 4L ])
  | Error e -> Alcotest.failf "first prepare failed: %s" e);
  (match Native.prepare m with
  | Ok p ->
      let o = p ~fuel:1_000 [ 4L ] in
      Alcotest.(check bool) "cached plugin computes" true
        (o.Interp.exit_value = Interp.RInt 41L)
  | Error e -> Alcotest.failf "second prepare failed: %s" e);
  Alcotest.(check bool) "second prepare is a cache hit" true
    (Telemetry.counter "native.cache.hits" >= h0 + 1)

(* Shared prepared program driven concurrently from pool workers: the
   plugin's pooled runtime states must not interfere. *)
let test_concurrent_runs () =
  let m =
    lower
      (parse
         "int main() { int i = 0; int s = read_int(); while (i < 200) { s = s + i * i; i = i + 1; } print_int(s); return s; }")
  in
  match Native.prepare m with
  | Error e -> Alcotest.failf "prepare failed: %s" e
  | Ok p ->
      let expected = show (run_ref ~fuel:200_000 m [ 9L ]) in
      let results =
        Exec.Pool.with_jobs 4 (fun () ->
            Exec.Pool.parallel_array_map
              (fun _ -> show (run_prepared p ~fuel:200_000 [ 9L ]))
              (Array.make 16 ()))
      in
      Array.iter
        (fun got -> Alcotest.(check string) "concurrent run identical" expected got)
        results

(* ------------------------------------------------------------------ *)
(* Fallback and engine scoping                                         *)
(* ------------------------------------------------------------------ *)

(* These do not require a toolchain: they force unavailability and assert
   the switchboard degrades to the VM with identical outcomes and exactly
   one process-wide warning. *)
let test_engine_fallback_disable () =
  let m = lower (parse "int main() { int a = 6; return a * 7; }") in
  let base = show (catching (fun () -> Execution.run ~engine:Execution.Vm ~fuel:10_000 m [])) in
  Unix.putenv "YALI_NATIVE_DISABLE" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "YALI_NATIVE_DISABLE" "0")
  @@ fun () ->
  Alcotest.(check bool) "tier reports unavailable" false (Native.available ());
  let f0 = Telemetry.counter "execution.native_fallback" in
  let o1 =
    show (catching (fun () -> Execution.run ~engine:Execution.Native ~fuel:10_000 m []))
  in
  let o2 =
    show (catching (fun () -> Execution.run ~engine:Execution.Native ~fuel:10_000 m []))
  in
  Alcotest.(check string) "first fallback outcome matches vm" base o1;
  Alcotest.(check string) "second fallback outcome matches vm" base o2;
  Alcotest.(check bool) "every fallback counted" true
    (Telemetry.counter "execution.native_fallback" >= f0 + 2);
  Alcotest.(check int) "exactly one warning per process" 1
    (Telemetry.counter "execution.native_fallback_warned")

let test_engine_fallback_path_scrub () =
  let old_path = try Sys.getenv "PATH" with Not_found -> "" in
  Unix.putenv "PATH" "/nonexistent-for-native-test";
  Fun.protect ~finally:(fun () -> Unix.putenv "PATH" old_path)
  @@ fun () ->
  Alcotest.(check bool) "no toolchain on a scrubbed PATH" false
    (Native.available ());
  let m = lower (parse "int main() { return 3; }") in
  let via_native =
    show (catching (fun () -> Execution.run ~engine:Execution.Native ~fuel:10_000 m []))
  in
  let via_vm =
    show (catching (fun () -> Execution.run ~engine:Execution.Vm ~fuel:10_000 m []))
  in
  Alcotest.(check string) "degrades to vm outcome" via_vm via_native;
  Alcotest.(check int) "still a single process-wide warning" 1
    (Telemetry.counter "execution.native_fallback_warned")

let test_engine_selection () =
  Alcotest.(check bool) "native parses" true
    (Execution.engine_of_string "native" = Some Execution.Native);
  Alcotest.(check string) "name round-trips" "native"
    (Execution.engine_to_string Execution.Native);
  Alcotest.(check bool) "junk rejected" true
    (Execution.engine_of_string "jit" = None)

(* with_engine is domain-local: pool workers keep the process default even
   while the submitting domain holds an override.  The submitting domain
   participates in the batch as worker 0 and keeps its own override there
   (same domain, same DLS cell), so tasks must be judged by the domain
   they land on, not by [inside_worker] — which is also true for
   caller-run tasks. *)
let test_with_engine_under_pool () =
  let bad = Atomic.make 0 in
  let caller = Domain.self () in
  Execution.with_engine Execution.Ref (fun () ->
      Alcotest.(check bool) "override visible in this domain" true
        (Execution.get_engine () = Execution.Ref);
      Exec.Pool.with_jobs 4 (fun () ->
          Exec.Pool.run ~n:32 (fun _ ->
              let e = Execution.get_engine () in
              let expected =
                if Domain.self () = caller then Execution.Ref
                else Execution.Vm
              in
              if e <> expected then Atomic.incr bad)));
  Alcotest.(check int) "workers unaffected by the caller's override" 0
    (Atomic.get bad);
  Alcotest.(check bool) "override released" true
    (Execution.get_engine () = Execution.Vm)

let suite =
  [
    Alcotest.test_case "division by zero" `Quick (with_native test_division_by_zero);
    Alcotest.test_case "min_int overflow division" `Quick
      (with_native test_min_int_overflow_division);
    Alcotest.test_case "narrow-width wraparound" `Quick
      (with_native test_narrow_wraparound);
    Alcotest.test_case "fuel boundary" `Quick (with_native test_fuel_boundary);
    Alcotest.test_case "allocator exhaustion" `Quick
      (with_native test_allocator_exhaustion);
    Alcotest.test_case "pointer coercions" `Quick
      (with_native test_pointer_coercions);
    Alcotest.test_case "recursion parity" `Quick (with_native test_recursion_parity);
    Alcotest.test_case "intrinsics parity" `Quick
      (with_native test_intrinsics_parity);
    Alcotest.test_case "float parity" `Quick (with_native test_float_parity);
    Alcotest.test_case "switch and globals parity" `Quick
      (with_native test_switch_and_globals_parity);
    Alcotest.test_case "batch dataset parity" `Quick
      (with_native test_batch_dataset_parity);
    Alcotest.test_case "cache hits" `Quick (with_native test_cache_hits);
    Alcotest.test_case "concurrent runs" `Quick (with_native test_concurrent_runs);
    Alcotest.test_case "engine fallback (disable flag)" `Quick
      test_engine_fallback_disable;
    Alcotest.test_case "engine fallback (PATH scrub)" `Quick
      test_engine_fallback_path_scrub;
    Alcotest.test_case "engine selection" `Quick test_engine_selection;
    Alcotest.test_case "with_engine under pool" `Quick
      test_with_engine_under_pool;
  ]
