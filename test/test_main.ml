(** Test entry point: all suites, `dune runtest`. *)

let () =
  Alcotest.run "yali"
    [
      ("rng", Test_rng.suite);
      ("ir", Test_ir.suite);
      ("interp", Test_interp.suite);
      ("semantics", Test_semantics.suite);
      ("minic", Test_minic.suite);
      ("irparser", Test_irparser.suite);
      ("loops", Test_loops.suite);
      ("transforms", Test_transforms.suite);
      ("licm", Test_licm.suite);
      ("obfuscation", Test_obfuscation.suite);
      ("embeddings", Test_embeddings.suite);
      ("ml", Test_ml.suite);
      ("nn", Test_nn.suite);
      ("fmat", Test_fmat.suite);
      ("dataset", Test_dataset.suite);
      ("gen_dsl", Test_gen_dsl.suite);
      ("exec", Test_exec.suite);
      ("vm", Test_vm.suite);
      ("native", Test_native.suite);
      ("fuzz", Test_fuzz.suite);
      ("check", Test_check.suite);
      ("games", Test_games.suite);
      ("antivirus", Test_antivirus.suite);
      ("integration", Test_integration.suite);
      ("serve", Test_serve.suite);
      ("corpus", Test_corpus.suite);
      ("adapt", Test_adapt.suite);
    ]
