(** Tests for the adaptive-evader layer (lib/adapt): the sequence space
    respects its bounds and preserves behaviour, Pareto fronts are exactly
    the non-dominated subset, the four search strategies spend their
    budget, and the driver is bit-identical at any --jobs. *)

open Helpers
module Adapt = Yali.Adapt
module Seqspace = Adapt.Seqspace
module Fitness = Adapt.Fitness
module Pareto = Adapt.Pareto
module Search = Adapt.Search
module Driver = Adapt.Driver
module Rng = Yali.Rng

(* -- sequence space -------------------------------------------------------- *)

let test_random_seq_bounds =
  qtest ~count:40 "random_seq length in [1, max_len]" (fun seed ->
      let rng = Rng.make seed in
      let max_len = 1 + (abs seed mod 4) in
      let n = List.length (Seqspace.random_seq rng ~max_len) in
      n >= 1 && n <= max_len)

let test_mutate_bounds =
  qtest ~count:40 "mutate stays in [1, max_len]" (fun seed ->
      let rng = Rng.make seed in
      let max_len = 1 + (abs seed mod 4) in
      let s = ref (Seqspace.random_seq rng ~max_len) in
      let ok = ref true in
      for _ = 1 to 12 do
        s := Seqspace.mutate rng ~max_len !s;
        let n = List.length !s in
        ok := !ok && n >= 1 && n <= max_len
      done;
      !ok)

let test_apply_preserves =
  qtest ~count:15 "apply preserves behaviour and verifies" (fun seed ->
      let s = Seqspace.random_seq (Rng.make seed) ~max_len:3 in
      preserves_behaviour (Seqspace.apply (Rng.make (seed + 1)) s) seed)

let test_seq_printing () =
  Alcotest.(check string) "empty sequence prints as id" "id"
    (Seqspace.to_string []);
  Alcotest.(check string) "steps join with ;" "fla;bcf(p=0.25)"
    (Seqspace.to_string [ Seqspace.Fla; Seqspace.Bcf { probability = 0.25 } ])

(* -- pareto front ---------------------------------------------------------- *)

let gen_evals (seed : int) : Fitness.eval list =
  let rng = Rng.make seed in
  List.init
    (2 + Rng.int rng 30)
    (fun i ->
      if Rng.bernoulli rng 0.15 then Fitness.rejected [ Seqspace.Fla ]
      else
        let evasion = float_of_int (Rng.int rng 5) /. 4.0 in
        let cost = 0.5 +. (2.5 *. Rng.float rng) in
        {
          Fitness.e_seq = (if i mod 2 = 0 then [] else [ Seqspace.Fla ]);
          e_evasion = evasion;
          e_cost = cost;
          e_gap = 0.0;
          e_fitness = evasion -. cost;
        })

let dominates (a : Fitness.eval) (p : Pareto.point) =
  (a.Fitness.e_cost < p.Pareto.p_cost && a.e_evasion >= p.p_evasion)
  || (a.e_cost <= p.p_cost && a.e_evasion > p.p_evasion)

let test_front_exactly_non_dominated =
  qtest ~count:60 "front = the non-dominated subset" (fun seed ->
      let evals = gen_evals seed in
      let finite =
        List.filter (fun (e : Fitness.eval) -> Float.is_finite e.e_cost) evals
      in
      let f = Pareto.front evals in
      Pareto.well_formed f
      (* soundness: no evaluated candidate strictly dominates a front point *)
      && List.for_all
           (fun p -> not (List.exists (fun e -> dominates e p) finite))
           f
      (* completeness: every finite candidate is weakly covered by the front *)
      && List.for_all
           (fun (e : Fitness.eval) ->
             List.exists
               (fun (p : Pareto.point) ->
                 p.p_cost <= e.e_cost && p.p_evasion >= e.e_evasion)
               f)
           finite
      (* every front point is one of the evaluations *)
      && List.for_all
           (fun (p : Pareto.point) ->
             List.exists
               (fun (e : Fitness.eval) ->
                 e.e_cost = p.p_cost && e.e_evasion = p.p_evasion)
               finite)
           f)

let test_front_drops_rejected () =
  let f = Pareto.front [ Fitness.rejected []; Fitness.rejected [ Seqspace.Fla ] ] in
  Alcotest.(check int) "only rejected candidates: empty front" 0 (List.length f)

(* -- search strategies ----------------------------------------------------- *)

(* a synthetic, program-free fitness: shorter is fitter, so the searches
   exercise their full control flow without touching the interpreter *)
let synthetic_eval (_ : Rng.t) (s : Seqspace.seq) : Fitness.eval =
  let n = List.length s in
  {
    Fitness.e_seq = s;
    e_evasion = 1.0 /. float_of_int (1 + n);
    e_cost = 1.0 +. (0.1 *. float_of_int n);
    e_gap = 0.0;
    e_fitness = -.float_of_int n;
  }

let test_search_spends_budget () =
  List.iter
    (fun algo ->
      let out =
        Search.run algo ~budget:17 ~batch:5 ~max_len:3 (Rng.make 3)
          synthetic_eval
      in
      Alcotest.(check int)
        (Search.algo_to_string algo ^ " spends exactly its budget")
        17
        (List.length out.o_evals);
      Alcotest.(check bool)
        (Search.algo_to_string algo ^ " base is the empty sequence")
        true
        (out.o_base.Fitness.e_seq = []);
      Alcotest.(check bool)
        (Search.algo_to_string algo ^ " best is the max over evals")
        true
        (List.for_all
           (fun (e : Fitness.eval) ->
             e.e_fitness <= out.o_best.Fitness.e_fitness)
           out.o_evals))
    Search.all

let test_search_deterministic () =
  List.iter
    (fun algo ->
      let run () =
        Search.run algo ~budget:13 ~batch:4 ~max_len:3 (Rng.make 9)
          synthetic_eval
      in
      Alcotest.(check bool)
        (Search.algo_to_string algo ^ " same seed, same outcome")
        true
        (Stdlib.compare (run ()) (run ()) = 0))
    Search.all

let test_algo_names_roundtrip () =
  List.iter
    (fun algo ->
      Alcotest.(check bool)
        (Search.algo_to_string algo ^ " round-trips")
        true
        (Search.algo_of_string (Search.algo_to_string algo) = Some algo))
    Search.all;
  Alcotest.(check bool) "unknown algo rejected" true
    (Search.algo_of_string "annealing" = None)

(* -- driver ---------------------------------------------------------------- *)

let tiny_cfg =
  {
    Driver.default with
    a_seed = 5;
    a_classes = 2;
    a_train_per_class = 4;
    a_challenges_per_class = 1;
    a_models = [ "lr"; "knn" ];
    a_budget = 8;
    a_batch = 4;
    a_max_len = 2;
    a_vectors = 1;
  }

let test_driver_jobs_invariant () =
  let r1 = Yali.Exec.Pool.with_jobs 1 (fun () -> Driver.run tiny_cfg) in
  let r2 = Yali.Exec.Pool.with_jobs 2 (fun () -> Driver.run tiny_cfg) in
  Alcotest.(check bool) "jobs 1 and jobs 2 reports bit-identical" true
    (Driver.reports_identical r1 r2);
  Alcotest.(check int) "one front per model" 2 (List.length r1.r_fronts);
  Alcotest.(check bool) "challenges survived preparation" true
    (r1.r_challenges > 0);
  List.iter
    (fun (f : Driver.model_front) ->
      Alcotest.(check bool) (f.mf_kind ^ " base is the passive evader") true
        (f.mf_base.Fitness.e_seq = []);
      Alcotest.(check bool) (f.mf_kind ^ " front well-formed") true
        (Pareto.well_formed f.mf_front);
      Alcotest.(check bool)
        (f.mf_kind ^ " front anchored at cost 1.0") true
        (List.exists (fun (p : Pareto.point) -> p.p_cost = 1.0) f.mf_front))
    r1.r_fronts

let test_driver_report_json_shape () =
  let r = Driver.run tiny_cfg in
  let json = Driver.report_to_json tiny_cfg r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report json has " ^ needle) true
        (contains_substring json needle))
    [
      "\"seed\": 5"; "\"algo\": \"hill\""; "\"lr\""; "\"knn\"";
      "cost_multiplier"; "evasion_rate"; "front_points";
    ]

let suite =
  [
    test_random_seq_bounds;
    test_mutate_bounds;
    test_apply_preserves;
    Alcotest.test_case "sequence printing" `Quick test_seq_printing;
    test_front_exactly_non_dominated;
    Alcotest.test_case "front drops rejected" `Quick test_front_drops_rejected;
    Alcotest.test_case "searches spend their budget" `Quick
      test_search_spends_budget;
    Alcotest.test_case "searches deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "algo names round-trip" `Quick test_algo_names_roundtrip;
    Alcotest.test_case "driver invariant under --jobs" `Slow
      test_driver_jobs_invariant;
    Alcotest.test_case "driver report json" `Slow test_driver_report_json_shape;
  ]
