(** Tests for the machine-learning substrate: matrix kernel, metrics, and
    all seven models (each must learn a simple separable task). *)

open Helpers
module Ml = Yali.Ml
module Rng = Yali.Rng
module M = Ml.Matrix

(* -- matrix --------------------------------------------------------------- *)

let test_matmul () =
  let a = M.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = M.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = M.matmul a b in
  Alcotest.(check bool) "2x2 product" true
    (M.get c 0 0 = 19. && M.get c 0 1 = 22. && M.get c 1 0 = 43. && M.get c 1 1 = 50.)

let test_matmul_dims () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Matrix.matmul: dimension mismatch") (fun () ->
      ignore (M.matmul (M.create 2 3) (M.create 2 3)))

let test_transpose_involution =
  qtest ~count:30 "transpose involutive" (fun seed ->
      let rng = Rng.make seed in
      let m = M.random rng 3 5 ~scale:1.0 in
      M.transpose (M.transpose m) = m)

let test_mv_vm () =
  let m = M.of_rows [| [| 1.; 0.; 2. |]; [| 0.; 3.; 0. |] |] in
  Alcotest.(check bool) "mv" true (M.mv m [| 1.; 1.; 1. |] = [| 3.; 3. |]);
  Alcotest.(check bool) "vm" true (M.vm [| 1.; 1. |] m = [| 1.; 3.; 2. |])

let test_matmul_assoc =
  qtest ~count:20 "matmul associative" (fun seed ->
      let rng = Rng.make seed in
      let a = M.random rng 2 3 ~scale:1.0 in
      let b = M.random rng 3 4 ~scale:1.0 in
      let c = M.random rng 4 2 ~scale:1.0 in
      let l = M.matmul (M.matmul a b) c and r = M.matmul a (M.matmul b c) in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) l.data r.data)

let test_axpy () =
  let x = M.of_rows [| [| 1.; 2. |] |] in
  let y = M.of_rows [| [| 10.; 20. |] |] in
  M.axpy ~a:2.0 x y;
  Alcotest.(check bool) "y += 2x" true (y.data = [| 12.; 24. |])

(* -- metrics -------------------------------------------------------------- *)

let test_accuracy () =
  Alcotest.(check bool) "3/4" true
    (approx (Ml.Metrics.accuracy [| 0; 1; 2; 0 |] [| 0; 1; 2; 1 |]) 0.75)

let test_confusion_and_f1 () =
  let c = Ml.Metrics.confusion ~n_classes:2 [| 0; 0; 1; 1 |] [| 0; 1; 1; 1 |] in
  Alcotest.(check int) "tp class1" 2 c.counts.(1).(1);
  Alcotest.(check int) "fp class1" 1 c.counts.(0).(1);
  let p, r, f1 = Ml.Metrics.precision_recall_f1 c 1 in
  Alcotest.(check bool) "precision 2/3" true (approx p (2.0 /. 3.0));
  Alcotest.(check bool) "recall 1" true (approx r 1.0);
  Alcotest.(check bool) "f1 = 0.8" true (approx f1 0.8)

let test_f1_equals_accuracy_on_balanced () =
  (* the paper's Figure 12 point: on balanced data, accuracy ≈ macro F1 *)
  let truth = Array.init 100 (fun i -> i mod 4) in
  let pred = Array.map (fun t -> t) truth in
  let c = Ml.Metrics.confusion ~n_classes:4 truth pred in
  Alcotest.(check bool) "perfect: both 1.0" true
    (approx (Ml.Metrics.accuracy truth pred) (Ml.Metrics.macro_f1 c))

let test_boxplot () =
  let bp = Ml.Metrics.boxplot [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check bool) "median" true (approx bp.median 3.0);
  Alcotest.(check bool) "min/max" true (bp.bp_min = 1.0 && bp.bp_max = 5.0);
  Alcotest.(check bool) "mean" true (approx bp.bp_mean 3.0)

let test_welch_t () =
  let t = Ml.Metrics.welch_t [ 1.; 1.1; 0.9; 1.0 ] [ 2.; 2.1; 1.9; 2.0 ] in
  Alcotest.(check bool) "clearly significant" true (Float.abs t > 5.0)

(* -- metrics edge cases: degenerate inputs stay defined, never nan -------- *)

let test_metrics_empty_predictions () =
  Alcotest.(check bool) "accuracy of nothing is 0, not nan" true
    (approx (Ml.Metrics.accuracy [||] [||]) 0.0);
  let c = Ml.Metrics.confusion ~n_classes:3 [||] [||] in
  Alcotest.(check int) "empty confusion sums to 0" 0
    (Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 c.counts);
  Alcotest.(check bool) "macro f1 of empty confusion defined" true
    (Float.is_finite (Ml.Metrics.macro_f1 c));
  let p, r, f1 = Ml.Metrics.precision_recall_f1 c 0 in
  Alcotest.(check bool) "p/r/f1 of absent class are 0" true
    (p = 0.0 && r = 0.0 && f1 = 0.0)

let test_metrics_single_class () =
  (* all mass on one class: the other rows/columns are empty, and their
     per-class scores must come back 0, not 0/0 *)
  let truth = [| 0; 0; 0; 0 |] and pred = [| 0; 0; 0; 0 |] in
  let c = Ml.Metrics.confusion ~n_classes:1 truth pred in
  Alcotest.(check int) "1x1 confusion" 4 c.counts.(0).(0);
  let p, r, f1 = Ml.Metrics.precision_recall_f1 c 0 in
  Alcotest.(check bool) "perfect single class" true
    (approx p 1.0 && approx r 1.0 && approx f1 1.0);
  Alcotest.(check bool) "macro f1 = 1" true (approx (Ml.Metrics.macro_f1 c) 1.0);
  (* same labels scored against a wider class universe *)
  let c3 = Ml.Metrics.confusion ~n_classes:3 truth pred in
  let p2, r2, f2 = Ml.Metrics.precision_recall_f1 c3 2 in
  Alcotest.(check bool) "unused class: zeros, not nan" true
    (p2 = 0.0 && r2 = 0.0 && f2 = 0.0);
  Alcotest.(check bool) "macro f1 finite with unused classes" true
    (Float.is_finite (Ml.Metrics.macro_f1 c3))

let test_metrics_out_of_range_labels_ignored () =
  let c = Ml.Metrics.confusion ~n_classes:2 [| 0; 5; -1; 1 |] [| 0; 0; 0; 7 |] in
  Alcotest.(check int) "only in-range pairs counted" 1
    (Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 c.counts)

let test_sample_stats_degenerate () =
  Alcotest.(check bool) "mean [] = 0" true (approx (Ml.Metrics.mean []) 0.0);
  Alcotest.(check bool) "stddev [] = 0" true (approx (Ml.Metrics.stddev []) 0.0);
  Alcotest.(check bool) "stddev [x] = 0" true
    (approx (Ml.Metrics.stddev [ 3.0 ]) 0.0);
  let bp = Ml.Metrics.boxplot [] in
  Alcotest.(check bool) "boxplot of [] all zero" true
    (bp.bp_min = 0.0 && bp.median = 0.0 && bp.bp_max = 0.0 && bp.bp_mean = 0.0);
  let bp1 = Ml.Metrics.boxplot [ 7.0 ] in
  Alcotest.(check bool) "boxplot of singleton collapses to it" true
    (approx bp1.bp_min 7.0 && approx bp1.q1 7.0 && approx bp1.median 7.0
    && approx bp1.q3 7.0 && approx bp1.bp_max 7.0);
  (* welch_t on too-small or zero-variance samples: defined, zero *)
  Alcotest.(check bool) "welch_t on singletons is 0" true
    (approx (Ml.Metrics.welch_t [ 1.0 ] [ 2.0 ]) 0.0);
  Alcotest.(check bool) "welch_t on constant samples is 0" true
    (approx (Ml.Metrics.welch_t [ 1.0; 1.0 ] [ 1.0; 1.0 ]) 0.0)

(* -- features ------------------------------------------------------------- *)

let test_scaler () =
  let xs = [| [| 0.; 10. |]; [| 2.; 20. |]; [| 4.; 30. |] |] in
  let s, scaled = Ml.Features.fit_transform xs in
  ignore s;
  (* each column: zero mean *)
  let col j = Array.fold_left (fun a r -> a +. r.(j)) 0.0 scaled /. 3.0 in
  Alcotest.(check bool) "zero mean" true (approx ~eps:1e-9 (col 0) 0.0 && approx ~eps:1e-9 (col 1) 0.0)

let test_scaler_constant_feature () =
  (* constant features must not produce NaNs *)
  let xs = [| [| 5.; 1. |]; [| 5.; 2. |] |] in
  let _, scaled = Ml.Features.fit_transform xs in
  Alcotest.(check bool) "no NaNs" true
    (Array.for_all (fun r -> Array.for_all (fun x -> Float.is_finite x) r) scaled)

(* -- toy learning problems ------------------------------------------------- *)

(* well-separated gaussian blobs, one axis per class (so that the task is
   fair to one-vs-rest linear models too) *)
let blobs (rng : Rng.t) ~(n_classes : int) ~(n_per_class : int) ~(d : int) =
  assert (d >= n_classes);
  let xs = ref [] and ys = ref [] in
  for cls = 0 to n_classes - 1 do
    for _ = 1 to n_per_class do
      let x = Array.init d (fun k ->
          Rng.gaussian rng +. if k = cls then 6.0 else 0.0)
      in
      xs := x :: !xs;
      ys := cls :: !ys
    done
  done;
  (Array.of_list !xs, Array.of_list !ys)

let model_learns (model : Ml.Model.flat) () =
  let rng = Rng.make 99 in
  let xs, ys = blobs rng ~n_classes:3 ~n_per_class:40 ~d:8 in
  let test_xs, test_ys = blobs (Rng.make 123) ~n_classes:3 ~n_per_class:15 ~d:8 in
  let trained =
    model.ftrain (Rng.make 7) ~n_classes:3 (Ml.Fmat.of_rows xs) ys
  in
  let pred = Array.map trained.predict test_xs in
  let acc = Ml.Metrics.accuracy test_ys pred in
  if acc < 0.9 then
    Alcotest.failf "%s only reached %.2f on separable blobs" model.fname acc;
  (* the batched path must agree with per-vector prediction *)
  let bpred = trained.predict_batch (Ml.Fmat.of_rows test_xs) in
  if bpred <> pred then
    Alcotest.failf "%s: predict_batch disagrees with predict" model.fname

let model_tests =
  List.map
    (fun (m : Ml.Model.flat) ->
      Alcotest.test_case (m.fname ^ " learns blobs") `Slow (model_learns m))
    Ml.Model.all_flat

let test_models_deterministic () =
  let xs, ys = blobs (Rng.make 5) ~n_classes:2 ~n_per_class:20 ~d:4 in
  let xs = Ml.Fmat.of_rows xs in
  let train () =
    let t = Ml.Model.rf.ftrain (Rng.make 11) ~n_classes:2 xs ys in
    Array.init 10 (fun k -> t.predict (Array.make 4 (float_of_int k)))
  in
  Alcotest.(check bool) "same seed, same predictions" true (train () = train ())

let test_knn_exact_on_training_points () =
  let xs = Ml.Fmat.of_rows [| [| 0.; 0. |]; [| 10.; 10. |] |] in
  let ys = [| 0; 1 |] in
  let t = Ml.Knn.train ~k:1 ~n_classes:2 xs ys in
  Alcotest.(check int) "near 0" 0 (Ml.Knn.predict t [| 0.5; 0.1 |]);
  Alcotest.(check int) "near 1" 1 (Ml.Knn.predict t [| 9.5; 9.9 |])

let test_decision_tree_pure_leaf () =
  let xs = Ml.Fmat.of_rows [| [| 0. |]; [| 1. |]; [| 10. |]; [| 11. |] |] in
  let ys = [| 0; 0; 1; 1 |] in
  let t = Ml.Decision_tree.train (Rng.make 1) ~n_classes:2 xs ys in
  Alcotest.(check int) "left" 0 (Ml.Decision_tree.predict t [| -1.0 |]);
  Alcotest.(check int) "right" 1 (Ml.Decision_tree.predict t [| 20.0 |]);
  Alcotest.(check bool) "small tree" true (Ml.Decision_tree.node_count t.root <= 3)

(* -- snapshot margins ------------------------------------------------------- *)

let test_margins_agree_with_predict () =
  (* argmax over Model.margins must reproduce predict bit for bit, on both
     training rows and novel points, for every snapshot kind *)
  let xs, ys = blobs (Rng.make 31) ~n_classes:3 ~n_per_class:25 ~d:6 in
  let fx = Ml.Fmat.of_rows xs in
  let novel, _ = blobs (Rng.make 207) ~n_classes:3 ~n_per_class:10 ~d:6 in
  List.iter
    (fun kind ->
      let s =
        Option.get (Ml.Model.train_snapshot kind (Rng.make 13) ~n_classes:3 fx ys)
      in
      let t = Ml.Model.restore s in
      Array.iter
        (fun v ->
          let m = Ml.Model.margins s v in
          Alcotest.(check int) (kind ^ ": one score per class") 3
            (Array.length m);
          Alcotest.(check bool) (kind ^ ": scores finite") true
            (Array.for_all Float.is_finite m);
          Alcotest.(check int)
            (kind ^ ": argmax margins = predict")
            (t.Ml.Model.predict v) (Ml.Model.argmax m))
        (Array.append xs novel))
    Ml.Model.snapshot_kinds

let test_margins_survive_save_load () =
  let xs, ys = blobs (Rng.make 41) ~n_classes:2 ~n_per_class:20 ~d:4 in
  let fx = Ml.Fmat.of_rows xs in
  List.iter
    (fun kind ->
      let s =
        Option.get (Ml.Model.train_snapshot kind (Rng.make 19) ~n_classes:2 fx ys)
      in
      let s' = Ml.Model.load (Ml.Model.save s) in
      Array.iter
        (fun v ->
          Alcotest.(check bool)
            (kind ^ ": margins bit-identical after save/load")
            true
            (Ml.Model.margins s v = Ml.Model.margins s' v))
        xs)
    Ml.Model.snapshot_kinds

let test_argmax_first_maximum () =
  Alcotest.(check int) "plain max" 2 (Ml.Model.argmax [| 0.; 1.; 5.; 3. |]);
  Alcotest.(check int) "tie breaks to the lowest index" 1
    (Ml.Model.argmax [| 0.; 4.; 4.; 4. |]);
  Alcotest.(check int) "singleton" 0 (Ml.Model.argmax [| -7.0 |])

let test_model_registry () =
  Alcotest.(check int) "six flat models (paper §3.2)" 6
    (List.length Ml.Model.all_flat);
  List.iter
    (fun n -> Alcotest.(check bool) n true (Ml.Model.find_flat n <> None))
    [ "rf"; "svm"; "knn"; "lr"; "mlp"; "cnn" ]

(* -- dgcnn on graphs ------------------------------------------------------- *)

let test_dgcnn_learns_graph_sizes () =
  (* two classes of graphs: short chains vs long chains with distinct
     feature patterns — dgcnn must separate them *)
  let mk_graph ~(n : int) ~(flavor : int) : Yali.Embeddings.Graph.t =
    let feats =
      Array.init n (fun k ->
          Array.init 4 (fun j -> if (k + j + flavor) mod 2 = 0 then 1.0 else 0.0))
    in
    let edges = List.init (n - 1) (fun k -> (k, k + 1, Yali.Embeddings.Graph.Control)) in
    { node_feats = feats; edges; feat_dim = 4 }
  in
  let rng = Rng.make 3 in
  let graphs = ref [] and ys = ref [] in
  for _ = 1 to 30 do
    graphs := mk_graph ~n:(4 + Rng.int rng 3) ~flavor:0 :: !graphs;
    ys := 0 :: !ys;
    graphs := mk_graph ~n:(9 + Rng.int rng 3) ~flavor:1 :: !graphs;
    ys := 1 :: !ys
  done;
  let trained =
    Ml.Model.dgcnn.gtrain (Rng.make 17) ~n_classes:2 ~feat_dim:4
      (Array.of_list !graphs) (Array.of_list !ys)
  in
  let correct = ref 0 in
  for k = 0 to 9 do
    if trained.gpredict (mk_graph ~n:(4 + (k mod 3)) ~flavor:0) = 0 then incr correct;
    if trained.gpredict (mk_graph ~n:(9 + (k mod 3)) ~flavor:1) = 1 then incr correct
  done;
  if !correct < 16 then
    Alcotest.failf "dgcnn only got %d/20 on separable graphs" !correct

let test_dgcnn_handles_empty_graph () =
  let g = Yali.Embeddings.Graph.empty ~feat_dim:4 in
  let trained =
    Ml.Model.dgcnn.gtrain (Rng.make 1) ~n_classes:2 ~feat_dim:4
      [| g; { g with node_feats = [| [| 1.; 1.; 1.; 1. |] |] } |] [| 0; 1 |]
  in
  (* prediction on an empty graph must not crash *)
  let c = trained.gpredict g in
  Alcotest.(check bool) "class in range" true (c = 0 || c = 1)

let suite =
  [
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "matmul dims" `Quick test_matmul_dims;
    test_transpose_involution;
    Alcotest.test_case "mv/vm" `Quick test_mv_vm;
    test_matmul_assoc;
    Alcotest.test_case "axpy" `Quick test_axpy;
    Alcotest.test_case "accuracy" `Quick test_accuracy;
    Alcotest.test_case "confusion and f1" `Quick test_confusion_and_f1;
    Alcotest.test_case "f1 = accuracy on balanced" `Quick
      test_f1_equals_accuracy_on_balanced;
    Alcotest.test_case "boxplot" `Quick test_boxplot;
    Alcotest.test_case "welch t" `Quick test_welch_t;
    Alcotest.test_case "metrics: empty predictions" `Quick
      test_metrics_empty_predictions;
    Alcotest.test_case "metrics: single class" `Quick test_metrics_single_class;
    Alcotest.test_case "metrics: out-of-range labels" `Quick
      test_metrics_out_of_range_labels_ignored;
    Alcotest.test_case "metrics: degenerate samples defined" `Quick
      test_sample_stats_degenerate;
    Alcotest.test_case "scaler" `Quick test_scaler;
    Alcotest.test_case "scaler constant feature" `Quick test_scaler_constant_feature;
  ]
  @ model_tests
  @ [
      Alcotest.test_case "models deterministic" `Quick test_models_deterministic;
      Alcotest.test_case "knn on training points" `Quick
        test_knn_exact_on_training_points;
      Alcotest.test_case "decision tree pure leaves" `Quick
        test_decision_tree_pure_leaf;
      Alcotest.test_case "margins agree with predict" `Quick
        test_margins_agree_with_predict;
      Alcotest.test_case "margins survive save/load" `Quick
        test_margins_survive_save_load;
      Alcotest.test_case "argmax first-maximum convention" `Quick
        test_argmax_first_maximum;
      Alcotest.test_case "model registry" `Quick test_model_registry;
      Alcotest.test_case "dgcnn learns" `Slow test_dgcnn_learns_graph_sizes;
      Alcotest.test_case "dgcnn empty graph" `Quick test_dgcnn_handles_empty_graph;
    ]
