(** Tests for the serving layer (lib/serve): codec round-trips and
    corrupt-input rejection, wire framing, model snapshot save/load
    bit-identity, registry versioning, and a fork-based end-to-end daemon
    smoke run. *)

open Helpers
module Serve = Yali.Serve
module Codec = Serve.Codec
module Wire = Serve.Wire
module Registry = Serve.Registry
module Server = Serve.Server
module Client = Serve.Client
module Model = Yali.Ml.Model
module Fmat = Yali.Ml.Fmat
module Rng = Yali.Rng
module Pipeline = Yali.Transforms.Pipeline

(* -- codec ------------------------------------------------------------------ *)

let roundtrips (m : Yali.Ir.Irmod.t) =
  let blob = Codec.encode_module m in
  let m' = Codec.decode_module blob in
  Stdlib.compare m' m = 0
  && String.equal (Yali.Ir.Pp.module_to_string m') (Yali.Ir.Pp.module_to_string m)
  && String.equal (Codec.encode_module m') blob

let test_codec_roundtrip_corpus () =
  List.iter
    (fun seed ->
      let m0 = lower (dataset_program seed) in
      List.iter
        (fun level ->
          let m = Pipeline.optimize level m0 in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d survives encode/decode" seed)
            true (roundtrips m))
        [ Pipeline.O0; Pipeline.O1; Pipeline.O2; Pipeline.O3 ])
    [ 1; 5; 12; 33; 77 ]

let expect_corrupt name blob =
  match Codec.decode_result blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: decoder accepted corrupt input" name

let test_codec_rejects_corruption () =
  let m = lower (dataset_program 9) in
  let blob = Codec.encode_module m in
  (* sanity: the pristine blob decodes *)
  Alcotest.(check bool) "pristine blob decodes" true
    (Result.is_ok (Codec.decode_result blob));
  expect_corrupt "empty input" "";
  expect_corrupt "truncated header" (String.sub blob 0 3);
  expect_corrupt "header only" (String.sub blob 0 7);
  expect_corrupt "truncated mid-body" (String.sub blob 0 (String.length blob - 5));
  expect_corrupt "trailing garbage" (blob ^ "\x00");
  (let bad = Bytes.of_string blob in
   Bytes.set bad 0 'X';
   expect_corrupt "bad magic" (Bytes.to_string bad));
  (let skew = Bytes.of_string blob in
   (* u16 LE version field sits right after the 4-byte magic *)
   Bytes.set skew 4 '\x63';
   Bytes.set skew 5 '\x00';
   match Codec.decode_result (Bytes.to_string skew) with
   | Error msg ->
       Alcotest.(check bool) "version skew names the versions" true
         (contains_substring msg "version skew")
   | Ok _ -> Alcotest.fail "decoder accepted a future format version");
  (let badsec = Bytes.of_string blob in
   (* first section tag byte follows the 7-byte header *)
   Bytes.set badsec 7 '\xee';
   expect_corrupt "unknown section tag" (Bytes.to_string badsec))

let test_codec_file_io () =
  let m = Pipeline.optimize Pipeline.O2 (lower (dataset_program 4)) in
  let path = Filename.temp_file "yali-codec" ".yir" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Codec.write_file path m;
      let m' = Codec.read_file path in
      Alcotest.(check bool) "file round-trip is structural identity" true
        (Stdlib.compare m' m = 0))

(* -- wire ------------------------------------------------------------------- *)

let test_wire_roundtrip () =
  let reqs =
    [
      Wire.Ping;
      Wire.Stats;
      Wire.Shutdown;
      Wire.Classify { fmt = Wire.Binary; blob = "\x00\xffraw" };
      Wire.Classify { fmt = Wire.Minic; blob = "int main() { return 0; }" };
      Wire.Classify { fmt = Wire.Textual; blob = "" };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true
        (Wire.decode_request (Wire.encode_request r) = r))
    reqs;
  let resps =
    [
      Wire.Class { cls = 7; queue_us = 1234; batch = 16 };
      Wire.Error "no such model";
      Wire.Busy;
      Wire.Pong;
      Wire.Stats_json "{}";
      Wire.Bye;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true
        (Wire.decode_response (Wire.encode_response r) = r))
    resps;
  let rejects f s =
    match f s with
    | (_ : Wire.request) -> false
    | exception Yali.Util.Bin.Corrupt _ -> true
  in
  Alcotest.(check bool) "empty request payload rejected" true
    (rejects Wire.decode_request "");
  Alcotest.(check bool) "unknown opcode rejected" true
    (rejects Wire.decode_request "\xfe");
  Alcotest.(check bool) "trailing bytes rejected" true
    (rejects Wire.decode_request (Wire.encode_request Wire.Ping ^ "x"))

let test_wire_dechunk () =
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  let stream =
    String.concat ""
      (List.map
         (fun p ->
           let b = Buffer.create 16 in
           let len = String.length p in
           Buffer.add_char b (Char.chr (len land 0xff));
           Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
           Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
           Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
           Buffer.add_string b p;
           Buffer.contents b)
         payloads)
  in
  (* feed the byte stream one byte at a time: framing must not depend on
     read boundaries *)
  let got = ref [] in
  let d = Wire.Dechunk.create () in
  String.iter
    (fun c ->
      let frames = Wire.Dechunk.feed d (Bytes.make 1 c) 1 in
      got := !got @ frames)
    stream;
  Alcotest.(check (list string)) "byte-at-a-time framing" payloads !got;
  (* oversized header refused before allocating *)
  let huge = Bytes.of_string "\xff\xff\xff\xff" in
  Alcotest.(check bool) "oversized frame header rejected" true
    (match Wire.Dechunk.feed (Wire.Dechunk.create ()) huge 4 with
    | (_ : string list) -> false
    | exception Yali.Util.Bin.Corrupt _ -> true)

(* -- model snapshots -------------------------------------------------------- *)

let synthetic_training () =
  let rng = Rng.make 11 in
  let n = 30 and d = 7 and n_classes = 3 in
  let rows =
    Array.init n (fun i ->
        let cls = i mod n_classes in
        Array.init d (fun _ ->
            float_of_int cls +. (float_of_int (Rng.int_range rng (-50) 50) /. 200.)))
  in
  let labels = Array.init n (fun i -> i mod n_classes) in
  (Fmat.of_rows rows, labels, rows, n_classes)

let test_snapshot_save_load_bit_identity () =
  let x, y, rows, n_classes = synthetic_training () in
  List.iter
    (fun kind ->
      match Model.train_snapshot kind (Rng.make 23) ~n_classes x y with
      | None -> Alcotest.failf "%s: no snapshot form" kind
      | Some snap ->
          let blob = Model.save snap in
          let snap' = Model.load blob in
          Alcotest.(check string)
            (kind ^ ": save is stable under load")
            blob (Model.save snap');
          let t = Model.restore snap and t' = Model.restore snap' in
          Array.iter
            (fun row ->
              Alcotest.(check int)
                (kind ^ ": reloaded snapshot predicts identically")
                (t.Model.predict row) (t'.Model.predict row))
            rows;
          Alcotest.(check (array int))
            (kind ^ ": batch predictions identical")
            (t.Model.predict_batch x) (t'.Model.predict_batch x))
    Model.snapshot_kinds

let test_snapshot_rejects_corruption () =
  let x, y, _, n_classes = synthetic_training () in
  let snap = Option.get (Model.train_snapshot "knn" (Rng.make 3) ~n_classes x y) in
  let blob = Model.save snap in
  let bad name s =
    match Model.load s with
    | (_ : Model.snapshot) -> Alcotest.failf "%s: loader accepted corrupt blob" name
    | exception Yali.Util.Bin.Corrupt _ -> ()
  in
  bad "empty" "";
  bad "bad magic" ("XMDL" ^ String.sub blob 4 (String.length blob - 4));
  bad "truncated" (String.sub blob 0 (String.length blob - 3));
  bad "trailing bytes" (blob ^ "\x00")

(* -- registry --------------------------------------------------------------- *)

let temp_dir_counter = ref 0

let with_temp_dir f =
  incr temp_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-test-%d-%d" (Unix.getpid ()) !temp_dir_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir))
    (fun () -> f dir)

let test_registry_spec_parsing () =
  let ok s = match Registry.parse_spec s with Ok kv -> Some kv | Error _ -> None in
  Alcotest.(check (option (pair string (option int)))) "bare kind"
    (Some ("rf", None)) (ok "rf");
  Alcotest.(check (option (pair string (option int)))) "pinned version"
    (Some ("mlp", Some 3)) (ok "mlp@3");
  List.iter
    (fun s ->
      Alcotest.(check (option (pair string (option int))))
        (Printf.sprintf "%S rejected" s)
        None (ok s))
    [ ""; "@1"; "rf@"; "rf@x"; "rf@0"; "rf@-1"; "a/b"; "a.b@1" ]

let test_registry_publish_and_load () =
  with_temp_dir (fun dir ->
      let x, y, _, n_classes = synthetic_training () in
      let snap = Option.get (Model.train_snapshot "rf" (Rng.make 8) ~n_classes x y) in
      let meta =
        {
          Registry.kind = "rf";
          version = 0;
          embedding = "histogram";
          n_classes;
          dim = x.Fmat.d;
          n_train = x.Fmat.n;
          seed = 8;
          source = "test:synthetic";
        }
      in
      Alcotest.(check (option int)) "empty registry has no latest" None
        (Registry.latest ~dir "rf");
      let v1, _ = Registry.publish ~dir ~meta snap in
      let v2, path2 = Registry.publish ~dir ~meta snap in
      Alcotest.(check int) "first publish is v1" 1 v1;
      Alcotest.(check int) "second publish auto-increments" 2 v2;
      Alcotest.(check (list int)) "versions ascend" [ 1; 2 ]
        (Registry.versions ~dir "rf");
      Alcotest.(check (option int)) "latest" (Some 2) (Registry.latest ~dir "rf");
      (match Registry.load ~dir "rf" with
      | Ok e -> Alcotest.(check int) "bare spec loads latest" 2 e.Registry.meta.version
      | Error e -> Alcotest.failf "load rf: %s" e);
      (match Registry.load ~dir "rf@1" with
      | Ok e -> Alcotest.(check int) "pinned spec loads that version" 1 e.Registry.meta.version
      | Error e -> Alcotest.failf "load rf@1: %s" e);
      (match Registry.load ~dir "rf@9" with
      | Ok _ -> Alcotest.fail "loaded a version that was never published"
      | Error _ -> ());
      (match Registry.load ~dir "svm" with
      | Ok _ -> Alcotest.fail "loaded a kind that was never published"
      | Error _ -> ());
      (* stomp a published file: load must surface corruption as Error *)
      let oc = open_out_bin path2 in
      output_string oc "YREGgarbage";
      close_out oc;
      match Registry.load ~dir "rf@2" with
      | Ok _ -> Alcotest.fail "loaded a corrupt registry file"
      | Error _ -> ())

let test_registry_roundtrip_margins () =
  (* the adaptive evaders' via-serve contract: a snapshot's margins must
     survive the registry encode/decode exactly, for every kind *)
  with_temp_dir (fun dir ->
      let x, y, rows, n_classes = synthetic_training () in
      List.iter
        (fun kind ->
          let snap =
            Option.get (Model.train_snapshot kind (Rng.make 29) ~n_classes x y)
          in
          let meta =
            {
              Registry.kind;
              version = 0;
              embedding = "histogram";
              n_classes;
              dim = x.Fmat.d;
              n_train = x.Fmat.n;
              seed = 29;
              source = "test:margins";
            }
          in
          ignore (Registry.publish ~dir ~meta snap);
          match Registry.load ~dir kind with
          | Error e -> Alcotest.failf "load %s: %s" kind e
          | Ok entry ->
              Array.iter
                (fun row ->
                  Alcotest.(check bool)
                    (kind ^ ": margins bit-identical after publish/load")
                    true
                    (Model.margins snap row
                    = Model.margins entry.Registry.snapshot row))
                rows)
        Model.snapshot_kinds)

(* -- daemon end-to-end ------------------------------------------------------ *)

(* [Unix.fork] is forbidden once any domain has ever been spawned (and
   earlier suites run [Pool.with_jobs 4]), so the daemon child is a
   re-exec of this very test binary in a hidden mode: [create_process]
   goes through [posix_spawn], which multicore permits.  The hook runs at
   module initialisation, before Alcotest ever sees [argv]. *)
let daemon_flag = "--serve-daemon"

let () =
  if Array.length Sys.argv = 4 && Sys.argv.(1) = daemon_flag then begin
    let code =
      match
        Server.run
          {
            Server.default with
            socket = Sys.argv.(2);
            registry_dir = Sys.argv.(3);
            model_spec = "knn";
            log = ignore;
          }
      with
      | Ok () -> 0
      | Error _ -> 1
    in
    exit code
  end

let spawn_daemon ~socket ~dir =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process Sys.executable_name
        [| Sys.executable_name; daemon_flag; socket; dir |]
        Unix.stdin devnull devnull)

let await_socket path =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if Sys.file_exists path then ()
    else (
      Unix.sleepf 0.05;
      go (n - 1))
  in
  go 200

let test_daemon_end_to_end () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "test.sock" in
      (match
         Registry.train ~seed:5
           ~embedding:Yali.Embeddings.Embedding.histogram ~kind:"knn"
           ~n_classes:3 ~per_class:3
       with
      | Error e -> Alcotest.failf "train: %s" e
      | Ok entry ->
          ignore (Registry.publish ~dir ~meta:entry.Registry.meta entry.Registry.snapshot));
      let pid = spawn_daemon ~socket ~dir in
      Fun.protect
            ~finally:(fun () ->
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
              with Unix.Unix_error _ -> ())
            (fun () ->
              await_socket socket;
              let c = Client.connect socket in
              Alcotest.(check bool) "ping answers pong" true (Client.ping c);
              let m = lower (dataset_program 2) in
              let cls r =
                match r with
                | Wire.Class { cls; batch; _ } ->
                    Alcotest.(check bool) "batch size positive" true (batch >= 1);
                    cls
                | Wire.Error e -> Alcotest.failf "daemon error: %s" e
                | _ -> Alcotest.fail "unexpected reply to classify"
              in
              let a = cls (Client.classify c m) in
              let b = cls (Client.classify c m) in
              Alcotest.(check int) "repeated classify is deterministic" a b;
              let src = "int main() { int x = read_int(); print_int(x + 1); return 0; }" in
              (match Client.classify_source c src with
              | Wire.Class _ -> ()
              | Wire.Error e -> Alcotest.failf "classify_source: %s" e
              | _ -> Alcotest.fail "unexpected reply to classify_source");
              (match Client.request c (Wire.Classify { fmt = Wire.Binary; blob = "not a module" }) with
              | Wire.Error _ -> ()
              | _ -> Alcotest.fail "corrupt blob must get an Error reply");
              (match Client.stats c with
              | Ok json ->
                  Alcotest.(check bool) "stats carry embed-cache accounting" true
                    (contains_substring json "embed_cache");
                  Alcotest.(check bool) "stats carry batch histogram" true
                    (contains_substring json "batch_hist")
              | Error e -> Alcotest.failf "stats: %s" e);
              Client.shutdown c;
              Client.close c;
              let _, status = Unix.waitpid [] pid in
              Alcotest.(check bool) "daemon exits cleanly on Shutdown" true
                (status = Unix.WEXITED 0)))

let suite =
  [
    Alcotest.test_case "codec round-trip over corpus and opt levels" `Quick
      test_codec_roundtrip_corpus;
    Alcotest.test_case "codec rejects corrupt input" `Quick
      test_codec_rejects_corruption;
    Alcotest.test_case "codec file io" `Quick test_codec_file_io;
    Alcotest.test_case "wire message round-trips" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire incremental framing" `Quick test_wire_dechunk;
    Alcotest.test_case "model snapshots save/load bit-identically" `Quick
      test_snapshot_save_load_bit_identity;
    Alcotest.test_case "model loader rejects corrupt blobs" `Quick
      test_snapshot_rejects_corruption;
    Alcotest.test_case "registry spec parsing" `Quick test_registry_spec_parsing;
    Alcotest.test_case "registry publish, versions, load" `Quick
      test_registry_publish_and_load;
    Alcotest.test_case "registry round-trip preserves margins" `Quick
      test_registry_roundtrip_margins;
    Alcotest.test_case "daemon end-to-end over a unix socket" `Slow
      test_daemon_end_to_end;
  ]
