(** Tests for the streaming corpus layer (lib/corpus): sharded store
    round-trips against the in-memory reference path, corruption rejection
    (truncated shards, stale indexes), the on-disk feature-file format, and
    the out-of-core/in-memory training equivalence (DESIGN.md §12). *)

module Rng = Yali.Rng
module Gen = Yali.Corpus.Gen
module Store = Yali.Corpus.Store
module Embed = Yali.Corpus.Embed
module Ctrain = Yali.Corpus.Train
module Fmat = Yali.Ml.Fmat
module Fblock = Yali.Ml.Fblock
module Logreg = Yali.Ml.Logreg
module Model = Yali.Ml.Model
module Embedding = Yali.Embeddings.Embedding

let temp_dir_counter = ref 0

let with_temp_dir f =
  incr temp_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yali-corpus-test-%d-%d" (Unix.getpid ())
         !temp_dir_counter)
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir))
    (fun () -> f dir)

let small_spec seed =
  { Gen.dataset = "poj"; seed; n_classes = 4; per_class = 3 }

(* -- spec strings ----------------------------------------------------------- *)

let test_spec_string_roundtrip () =
  List.iter
    (fun spec ->
      let s = Gen.spec_to_string spec in
      match Gen.spec_of_string s with
      | Ok spec' ->
          Alcotest.(check bool) (s ^ " round-trips") true (spec = spec')
      | Error e -> Alcotest.failf "%s did not parse back: %s" s e)
    [
      small_spec 1;
      { Gen.dataset = "genprog2"; seed = 7; n_classes = 16; per_class = 2 };
      { Gen.dataset = "poj"; seed = 0; n_classes = 104; per_class = 500 };
    ];
  List.iter
    (fun s ->
      match Gen.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S parsed as a corpus spec" s)
    [ ""; "poj"; "poj:seed=1:classes=2"; "poj:seed=x:classes=2:per=3" ]

(* -- store round-trip -------------------------------------------------------- *)

(* Sharded write -> reopen -> stream reads must equal the in-memory list:
   same modules structurally, same labels, same order. *)
let test_store_roundtrip () =
  List.iter
    (fun seed ->
      with_temp_dir (fun dir ->
          let spec = small_spec seed in
          Gen.generate ~dir ~records_per_shard:5 spec;
          let reference = Gen.materialize spec in
          let r = Store.open_ dir in
          Fun.protect
            ~finally:(fun () -> Store.close r)
            (fun () ->
              Alcotest.(check int) "record count" (Array.length reference)
                (Store.length r);
              Alcotest.(check string) "meta string" (Gen.spec_to_string spec)
                (Store.meta r);
              Alcotest.(check int) "class count" spec.Gen.n_classes
                (Store.n_classes r);
              Alcotest.(check bool) "more than one shard" true
                (Store.shard_count r > 1);
              let seen = ref 0 in
              Store.iter r (fun i ~label m ->
                  incr seen;
                  let m_ref, l_ref = reference.(i) in
                  Alcotest.(check int)
                    (Printf.sprintf "label of record %d" i)
                    l_ref label;
                  Alcotest.(check bool)
                    (Printf.sprintf "module %d structurally equal" i)
                    true
                    (Stdlib.compare m m_ref = 0));
              Alcotest.(check int) "iter visits every record"
                (Array.length reference) !seen)))
    [ 1; 2; 42 ]

(* Shard-parallel generation is scheduling-independent: the bytes on disk
   at --jobs 1 and --jobs 4 are identical, index included. *)
let test_generation_jobs_invariant () =
  let read_all dir =
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.map (fun f ->
           let ic = open_in_bin (Filename.concat dir f) in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> (f, really_input_string ic (in_channel_length ic))))
  in
  let spec = small_spec 3 in
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          Yali.Exec.Pool.with_jobs 1 (fun () ->
              Gen.generate ~dir:d1 ~records_per_shard:4 spec);
          Yali.Exec.Pool.with_jobs 4 (fun () ->
              Gen.generate ~dir:d2 ~records_per_shard:4 spec);
          Alcotest.(check bool) "same files, same bytes" true
            (read_all d1 = read_all d2)))

(* -- corruption rejection ---------------------------------------------------- *)

let expect_corrupt name dir =
  match Store.open_ dir with
  | exception Yali.Util.Bin.Corrupt _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Corrupt, got %s" name (Printexc.to_string e)
  | r ->
      Store.close r;
      Alcotest.failf "%s: reader accepted a corrupt corpus" name

let clip path bytes =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = really_input_string ic (len - bytes) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc keep;
  close_out oc

let test_rejects_truncated_shard () =
  with_temp_dir (fun dir ->
      Gen.generate ~dir ~records_per_shard:5 (small_spec 1);
      clip (Store.shard_file dir 0) 7;
      expect_corrupt "truncated shard" dir)

let test_rejects_stale_index () =
  with_temp_dir (fun dir ->
      (* generate, then regenerate a *different* corpus but keep the first
         index: every index points at shards it does not describe *)
      Gen.generate ~dir ~records_per_shard:5 (small_spec 1);
      let stale = Store.index_file dir ^ ".stale" in
      Sys.rename (Store.index_file dir) stale;
      Gen.generate ~dir ~records_per_shard:5
        { (small_spec 1) with Gen.per_class = 5 };
      Sys.rename stale (Store.index_file dir);
      expect_corrupt "stale index" dir)

let test_rejects_missing_shard () =
  with_temp_dir (fun dir ->
      Gen.generate ~dir ~records_per_shard:5 (small_spec 2);
      Sys.remove (Store.shard_file dir 1);
      expect_corrupt "missing shard" dir)

let test_rejects_bad_index_magic () =
  with_temp_dir (fun dir ->
      Gen.generate ~dir ~records_per_shard:5 (small_spec 2);
      let path = Store.index_file dir in
      let ic = open_in_bin path in
      let blob = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let bad = Bytes.of_string blob in
      Bytes.set bad 0 'X';
      let oc = open_out_bin path in
      output_bytes oc bad;
      close_out oc;
      expect_corrupt "bad index magic" dir)

(* -- feature files ----------------------------------------------------------- *)

let test_fblock_roundtrip_bitexact () =
  with_temp_dir (fun dir ->
      let x =
        Fmat.of_rows
          (Array.init 17 (fun i ->
               Array.init 9 (fun j ->
                   (float_of_int (((i * 31) + (j * 17)) mod 23) /. 7.0) -. 1.5)))
      in
      let path = Filename.concat dir "m.yfmb" in
      Fblock.to_file path x;
      let fr = Fblock.open_reader path in
      Fun.protect
        ~finally:(fun () -> Fblock.close_reader fr)
        (fun () ->
          let back = Fblock.materialize (Fblock.Disk fr) in
          Alcotest.(check bool) "doubles round-trip bit-exactly" true
            (back.Fmat.data = x.Fmat.data));
      clip path 3;
      match Fblock.open_reader path with
      | exception Yali.Util.Bin.Corrupt _ -> ()
      | fr ->
          Fblock.close_reader fr;
          Alcotest.fail "truncated feature file accepted")

(* -- out-of-core training ----------------------------------------------------- *)

(* One epoch, source fits one block: the streamed logreg must reproduce the
   in-memory weights to 1e-9 (they are in fact byte-identical). *)
let test_stream_logreg_one_epoch () =
  with_temp_dir (fun dir ->
      let spec = small_spec 42 in
      Gen.generate ~dir ~records_per_shard:5 spec;
      let r = Store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Store.close r)
        (fun () ->
          let embedding = Embedding.histogram in
          let x, ys = Embed.to_fmat ~embedding r in
          let path = Filename.concat dir "features.yfmb" in
          let d = Embed.to_file ~embedding r ~out:path in
          Alcotest.(check int) "embed dims agree" x.Fmat.d d;
          let fr = Fblock.open_reader path in
          Fun.protect
            ~finally:(fun () -> Fblock.close_reader fr)
            (fun () ->
              let params = { Logreg.default_params with epochs = 1 } in
              let inmem =
                Logreg.train ~params (Rng.make 7)
                  ~n_classes:spec.Gen.n_classes x ys
              in
              let streamed =
                Logreg.train_stream ~params ~block_rows:x.Fmat.n (Rng.make 7)
                  ~n_classes:spec.Gen.n_classes (Fblock.Disk fr) ys
              in
              let wa = (Logreg.weights inmem).Yali.Ml.Matrix.data in
              let wb = (Logreg.weights streamed).Yali.Ml.Matrix.data in
              Alcotest.(check int) "same weight count" (Array.length wa)
                (Array.length wb);
              Array.iteri
                (fun i a ->
                  if Float.abs (a -. wb.(i)) > 1e-9 then
                    Alcotest.failf "weight %d drifted: %.17g vs %.17g" i a
                      wb.(i))
                wa)))

(* Multi-block streaming is a different (still deterministic) SGD order; it
   must stay deterministic and classify the easy synthetic corpus well. *)
let test_stream_multiblock_deterministic () =
  with_temp_dir (fun dir ->
      let spec = small_spec 11 in
      Gen.generate ~dir ~records_per_shard:3 spec;
      let r = Store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Store.close r)
        (fun () ->
          let embedding = Embedding.histogram in
          let path = Filename.concat dir "features.yfmb" in
          ignore (Embed.to_file ~embedding r ~out:path);
          let ys = Store.labels r in
          let train () =
            let fr = Fblock.open_reader path in
            Fun.protect
              ~finally:(fun () -> Fblock.close_reader fr)
              (fun () ->
                Option.get
                  (Model.train_snapshot_stream ~block_rows:4 "lr"
                     (Rng.make 3) ~n_classes:spec.Gen.n_classes
                     (Fblock.Disk fr) ys))
          in
          Alcotest.(check bool) "two runs, same blob" true
            (Model.save (train ()) = Model.save (train ()))))

(* Train-from-corpus end to end: the registry entry records the corpus spec
   as provenance and survives encode/decode. *)
let test_train_records_provenance () =
  with_temp_dir (fun dir ->
      let spec = small_spec 8 in
      Gen.generate ~dir ~records_per_shard:5 spec;
      match
        Ctrain.train ~dir ~embedding:Embedding.histogram ~kind:"lr" ~seed:9 ()
      with
      | Error e -> Alcotest.failf "corpus train failed: %s" e
      | Ok entry ->
          let open Yali.Serve in
          Alcotest.(check string) "provenance is the corpus spec"
            (Gen.spec_to_string spec) entry.Registry.meta.source;
          Alcotest.(check int) "rows recorded" (Gen.size spec)
            entry.Registry.meta.n_train;
          let back = Registry.decode_entry (Registry.encode_entry entry) in
          Alcotest.(check string) "provenance survives the registry codec"
            entry.Registry.meta.source back.Registry.meta.source)

let suite =
  [
    Alcotest.test_case "spec strings round-trip" `Quick
      test_spec_string_roundtrip;
    Alcotest.test_case "store round-trips vs materialize (seeds 1,2,42)"
      `Quick test_store_roundtrip;
    Alcotest.test_case "generation is jobs-invariant" `Quick
      test_generation_jobs_invariant;
    Alcotest.test_case "truncated shard rejected" `Quick
      test_rejects_truncated_shard;
    Alcotest.test_case "stale index rejected" `Quick test_rejects_stale_index;
    Alcotest.test_case "missing shard rejected" `Quick
      test_rejects_missing_shard;
    Alcotest.test_case "bad index magic rejected" `Quick
      test_rejects_bad_index_magic;
    Alcotest.test_case "feature file round-trips bit-exactly" `Quick
      test_fblock_roundtrip_bitexact;
    Alcotest.test_case "streamed logreg = in-memory after one epoch" `Quick
      test_stream_logreg_one_epoch;
    Alcotest.test_case "multi-block streaming is deterministic" `Quick
      test_stream_multiblock_deterministic;
    Alcotest.test_case "corpus training records provenance" `Quick
      test_train_records_provenance;
  ]
