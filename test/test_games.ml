(** Tests for the game framework: Definition 2.4, the four setups, the
    arena, obfuscator discovery, the malware experiment and the antivirus
    ensemble. *)

open Helpers
module G = Yali.Games
module Rng = Yali.Rng
module Ir = Yali.Ir

let test_play_threshold () =
  let classifier (_ : Ir.Irmod.t) = 1 in
  let m = lower (parse "int main() { return 0; }") in
  let challenges = [ (m, 1); (m, 1); (m, 0); (m, 1) ] in
  let v = G.Game.play ~classifier ~threshold:0.5 challenges in
  Alcotest.(check bool) "75% beats K=0.5" true v.classifier_wins;
  Alcotest.(check bool) "accuracy 0.75" true (approx v.accuracy 0.75);
  let v' = G.Game.play ~classifier ~threshold:0.9 challenges in
  Alcotest.(check bool) "75% loses K=0.9" false v'.classifier_wins

let test_setups_shape () =
  let e = Yali.Obfuscation.Evader.fla in
  Alcotest.(check string) "game0" "game0" G.Game.game0.game_name;
  Alcotest.(check string) "game1" "game1-fla" (G.Game.game1 e).game_name;
  Alcotest.(check string) "game2" "game2-fla" (G.Game.game2 e).game_name;
  Alcotest.(check string) "game3" "game3-fla" (G.Game.game3 e).game_name

let test_game0_transforms_nothing () =
  let p = dataset_program 3 in
  let rng = Rng.make 1 in
  let m = G.Game.game0.train_tx rng p in
  Alcotest.(check int) "plain lowering" (Ir.Irmod.instr_count (lower p))
    (Ir.Irmod.instr_count m)

let test_game3_normalizes_challenges () =
  let setup = G.Game.game3 Yali.Obfuscation.Evader.sub in
  let p = dataset_program 5 in
  let challenge = setup.normalize (setup.challenge_tx (Rng.make 2) p) in
  let unnormalized = setup.challenge_tx (Rng.make 2) p in
  Alcotest.(check bool) "normalization shrinks the obfuscated challenge" true
    (Ir.Irmod.instr_count challenge < Ir.Irmod.instr_count unnormalized)

(* -- arena ---------------------------------------------------------------- *)

let small_split seed =
  Yali.Dataset.Poj.make (Rng.make seed) ~n_classes:6 ~train_per_class:12
    ~test_per_class:4

let test_arena_game0_beats_random () =
  let split = small_split 1 in
  let r =
    G.Arena.run_flat (Rng.make 2) ~n_classes:6
      Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf G.Game.game0 split
  in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f beats random (0.17)" r.accuracy)
    true (r.accuracy > 0.5);
  Alcotest.(check int) "test count" 24 r.n_test;
  Alcotest.(check bool) "model has a size" true (r.model_bytes > 0)

let test_arena_game2_recovers () =
  (* the paper's §4.3 finding: knowing the obfuscator restores accuracy.
     The finding is an expectation, not a per-seed certainty; this seed
     shows a solid margin under the index-based Poj sampling plan. *)
  let split = small_split 8 in
  let evader = Yali.Obfuscation.Evader.fla in
  let g1 =
    G.Arena.run_flat (Rng.make 4) ~n_classes:6
      Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf (G.Game.game1 evader)
      split
  in
  let g2 =
    G.Arena.run_flat (Rng.make 4) ~n_classes:6
      Yali.Embeddings.Embedding.histogram Yali.Ml.Model.rf (G.Game.game2 evader)
      split
  in
  Alcotest.(check bool)
    (Printf.sprintf "game2 (%.2f) ≥ game1 (%.2f)" g2.accuracy g1.accuracy)
    true
    (g2.accuracy >= g1.accuracy)

let test_arena_graph_model_runs () =
  let split =
    Yali.Dataset.Poj.make (Rng.make 9) ~n_classes:3 ~train_per_class:8
      ~test_per_class:3
  in
  let r =
    G.Arena.run_graph (Rng.make 5) ~n_classes:3
      Yali.Embeddings.Embedding.cfg_compact G.Game.game0 split
  in
  Alcotest.(check bool) "dgcnn produced a valid accuracy" true
    (r.accuracy >= 0.0 && r.accuracy <= 1.0)

let test_game1_grid_regression () =
  (* a pinned evader×model corner of the Game 1 arena grid (fig. 7's
     shape): every cell is a pure function of its seeds, so these exact
     accuracies are a regression net over the whole train/embed/play
     pipeline — including the adaptive evaders' shared baselines.  12 test
     challenges, so every accuracy is a twelfth. *)
  let split =
    Yali.Dataset.Poj.make (Rng.make 21) ~n_classes:4 ~train_per_class:8
      ~test_per_class:3
  in
  let evader name =
    match Yali.Obfuscation.Evader.find name with
    | Some e -> e
    | None -> Alcotest.failf "no evader %s" name
  in
  let model name = Option.get (Yali.Ml.Model.find_flat name) in
  List.iter
    (fun (ename, mname, twelfths) ->
      let r =
        G.Arena.run_flat (Rng.make 6) ~n_classes:4
          Yali.Embeddings.Embedding.histogram (model mname)
          (G.Game.game1 (evader ename))
          split
      in
      Alcotest.(check int) (ename ^ "/" ^ mname ^ " challenge count") 12
        r.n_test;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s pinned at %d/12 (got %.6f)" ename mname
           twelfths r.accuracy)
        true
        (approx r.accuracy (float_of_int twelfths /. 12.0)))
    [
      ("sub", "rf", 7); ("sub", "knn", 6); ("sub", "lr", 10);
      ("fla", "rf", 8); ("fla", "knn", 8); ("fla", "lr", 9);
      ("bcf", "rf", 7); ("bcf", "knn", 2); ("bcf", "lr", 3);
    ]

(* -- obfuscator discovery (RQ7) ------------------------------------------- *)

let test_discover_ten_transformers () =
  Alcotest.(check int) "ten classes (§4.7)" 10 G.Discover.n_transformers

let test_discover_runs_and_beats_random () =
  let r = G.Discover.run ~per_transformer:10 (Rng.make 3) G.Discover.Dataset1 in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.2f above random (0.1)" r.accuracy)
    true (r.accuracy > 0.1)

let test_discover_dataset3_confounded () =
  (* dataset3 ties transformer to problem class: accuracy shoots up *)
  let r1 = G.Discover.run ~per_transformer:12 (Rng.make 5) G.Discover.Dataset1 in
  let r3 = G.Discover.run ~per_transformer:12 (Rng.make 5) G.Discover.Dataset3 in
  Alcotest.(check bool)
    (Printf.sprintf "dataset3 (%.2f) > dataset1 (%.2f)" r3.accuracy r1.accuracy)
    true
    (r3.accuracy > r1.accuracy)

(* -- malware (RQ8) -------------------------------------------------------- *)

let test_malware_curve_shape () =
  let points = G.Malware.run ~seed_n:8 ~challenge_n:3 (Rng.make 7) Yali.Ml.Model.rf in
  Alcotest.(check int) "seven growth points" 7 (List.length points);
  let first = List.hd points and last = List.nth points 6 in
  Alcotest.(check bool) "training set grows" true (last.n_train > first.n_train);
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves or stays (%.2f -> %.2f)"
       first.total_accuracy last.total_accuracy)
    true
    (last.total_accuracy >= first.total_accuracy -. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "full training set is accurate (%.2f)" last.total_accuracy)
    true (last.total_accuracy > 0.8)

(* -- antivirus (fig. 16) --------------------------------------------------- *)

let build_av seed =
  let rng = Rng.make seed in
  let malware =
    List.init 16 (fun _ -> lower (Yali.Dataset.Mirai.generate_malware (Rng.split rng)))
  in
  let benign =
    List.init 16 (fun _ -> lower (Yali.Dataset.Mirai.generate_benign (Rng.split rng)))
  in
  G.Antivirus.build rng ~malware ~benign

let test_av_detects_plain_malware () =
  let av = build_av 11 in
  let fresh = lower (Yali.Dataset.Mirai.generate_malware (Rng.make 999)) in
  let generic, _family = G.Antivirus.detections av fresh in
  Alcotest.(check bool) "several engines fire" true (generic >= 2)

let test_av_spares_benign () =
  let av = build_av 11 in
  let fresh = lower (Yali.Dataset.Mirai.generate_benign (Rng.make 999)) in
  let generic, _ = G.Antivirus.detections av fresh in
  Alcotest.(check bool) "at most one engine fires" true (generic <= 1)

let test_av_degrades_under_obfuscation () =
  let av = build_av 13 in
  let challenges plain =
    List.init 8 (fun k ->
        let m = lower (Yali.Dataset.Mirai.generate_malware (Rng.make (500 + k))) in
        let m = if plain then m else Yali.Obfuscation.Fla.run (Rng.make k) m in
        (m, 1))
    @ List.init 8 (fun k ->
          (lower (Yali.Dataset.Mirai.generate_benign (Rng.make (800 + k))), 0))
  in
  let plain_acc, _ = G.Antivirus.best_accuracy av (challenges true) in
  let obf_acc, _ = G.Antivirus.best_accuracy av (challenges false) in
  Alcotest.(check bool)
    (Printf.sprintf "plain (%.2f) ≥ obfuscated (%.2f)" plain_acc obf_acc)
    true
    (plain_acc >= obf_acc)

let test_av_family_stricter_than_generic () =
  let av = build_av 17 in
  let m = lower (Yali.Dataset.Mirai.generate_malware (Rng.make 1234)) in
  let generic, family = G.Antivirus.detections av m in
  Alcotest.(check bool) "family votes ≤ generic votes" true (family <= generic)

let suite =
  [
    Alcotest.test_case "play threshold (def 2.4)" `Quick test_play_threshold;
    Alcotest.test_case "setup names" `Quick test_setups_shape;
    Alcotest.test_case "game0 identity" `Quick test_game0_transforms_nothing;
    Alcotest.test_case "game3 normalizes" `Quick test_game3_normalizes_challenges;
    Alcotest.test_case "arena game0 beats random" `Slow test_arena_game0_beats_random;
    Alcotest.test_case "arena game2 recovers" `Slow test_arena_game2_recovers;
    Alcotest.test_case "arena graph model" `Slow test_arena_graph_model_runs;
    Alcotest.test_case "game1 grid regression" `Slow test_game1_grid_regression;
    Alcotest.test_case "discover: ten transformers" `Quick
      test_discover_ten_transformers;
    Alcotest.test_case "discover beats random" `Slow
      test_discover_runs_and_beats_random;
    Alcotest.test_case "discover dataset3 confounded" `Slow
      test_discover_dataset3_confounded;
    Alcotest.test_case "malware curve" `Slow test_malware_curve_shape;
    Alcotest.test_case "av detects malware" `Slow test_av_detects_plain_malware;
    Alcotest.test_case "av spares benign" `Slow test_av_spares_benign;
    Alcotest.test_case "av degrades under obfuscation" `Slow
      test_av_degrades_under_obfuscation;
    Alcotest.test_case "av family stricter" `Slow test_av_family_stricter_than_generic;
  ]
