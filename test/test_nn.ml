(** Differential tests for the kernelized neural tier (DESIGN.md §15): the
    minibatch trainers (Nn.train_batch, Cnn.train, Dgcnn.train) must produce
    weights bit-identical to the frozen naive implementations in
    {!Yali.Ml.Reference}, at any [--jobs], and through the streamed
    training paths. *)

module Ml = Yali.Ml
module Rng = Yali.Rng
module Pool = Yali.Exec.Pool
module Graph = Yali.Embeddings.Graph
module F = Ml.Fmat

let weights = Alcotest.testable (Fmt.Dump.array (Fmt.Dump.array Fmt.float)) ( = )

(* well-separated gaussian blobs as an Fmat (same shape as test_ml's) *)
let blobs (rng : Rng.t) ~(n_classes : int) ~(n : int) ~(d : int) :
    F.t * int array =
  let x = F.create n d in
  let ys = Array.init n (fun i -> i mod n_classes) in
  for i = 0 to n - 1 do
    for k = 0 to d - 1 do
      x.F.data.((i * d) + k) <-
        Rng.gaussian rng +. (if k = ys.(i) then 6.0 else 0.0)
    done
  done;
  (x, ys)

let chain_graph ~(n : int) ~(flavor : int) : Graph.t =
  let feats =
    Array.init n (fun k ->
        Array.init 4 (fun j -> if (k + j + flavor) mod 2 = 0 then 1.0 else 0.0))
  in
  let edges = List.init (n - 1) (fun k -> (k, k + 1, Graph.Control)) in
  { Graph.node_feats = feats; edges; feat_dim = 4 }

let chain_graphs (rng : Rng.t) ~(n : int) : Graph.t array * int array =
  let graphs =
    Array.init n (fun i ->
        if i mod 2 = 0 then chain_graph ~n:(4 + Rng.int rng 3) ~flavor:0
        else chain_graph ~n:(9 + Rng.int rng 3) ~flavor:1)
  in
  (graphs, Array.init n (fun i -> i mod 2))

(* -- Fmat batch-assembly helpers ------------------------------------------- *)

let test_of_rows_into () =
  let rows = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let dst = F.create 2 3 in
  F.of_rows_into dst rows;
  Alcotest.(check bool) "rows blitted" true (dst = F.of_rows rows);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Fmat.of_rows_into: width mismatch") (fun () ->
      F.of_rows_into dst [| [| 1.; 2. |]; [| 3.; 4. |] |])

let test_gather_rows_into () =
  let src = F.of_rows [| [| 0.; 0. |]; [| 1.; 10. |]; [| 2.; 20. |] |] in
  let idx = [| 2; 0; 1 |] in
  let dst = F.create 2 2 in
  F.gather_rows_into dst src idx ~lo:0 ~len:2;
  Alcotest.(check bool) "gathered [2;0]" true
    (dst = F.of_rows [| [| 2.; 20. |]; [| 0.; 0. |] |]);
  F.gather_rows_into dst src idx ~lo:1 ~len:2;
  Alcotest.(check bool) "gathered [0;1]" true
    (dst = F.of_rows [| [| 0.; 0. |]; [| 1.; 10. |] |])

(* -- Nn.train_batch vs Reference.Nnb --------------------------------------- *)

(* The same net built twice from the same seed (identical init draws); a few
   minibatch steps on each side must agree on loss, input gradients, and
   every weight bit. *)
let nnb_differential ~(d : int) ~(n_classes : int) ~(batch : int)
    ~(seed : int) () =
  let build () = Ml.Cnn.build_net (Rng.make seed) ~d_in:d ~n_classes in
  let kernel = build () and naive = build () in
  let krng = Rng.make (seed + 1) and nrng = Rng.make (seed + 1) in
  let data_rng = Rng.make (seed + 2) in
  for step = 0 to 4 do
    let x, ys = blobs data_rng ~n_classes ~n:batch ~d in
    let lr = 0.01 /. (1.0 +. (0.1 *. float_of_int step)) in
    let kl, kdx = Ml.Nn.train_batch ~lr ~rng:krng kernel x ys in
    let nl, ndx = Ml.Reference.Nnb.train_batch ~lr ~rng:nrng naive x ys in
    Alcotest.(check (float 0.0)) "loss identical" nl kl;
    Alcotest.(check bool) "input grads identical" true (kdx = ndx)
  done;
  Alcotest.check weights "weights identical"
    (Ml.Nn.dump_weights naive) (Ml.Nn.dump_weights kernel)

(* -- cnn / dgcnn end-to-end differentials ----------------------------------- *)

let cnn_differential ~(d : int) () =
  let mk_data () = blobs (Rng.make 11) ~n_classes:3 ~n:70 ~d in
  let params = { Ml.Cnn.default_params with epochs = 3 } in
  let x, ys = mk_data () in
  let kernel = Ml.Cnn.train ~params (Rng.make 7) ~n_classes:3 x ys in
  let x, ys = mk_data () in
  let naive = Ml.Reference.Cnn.train ~params (Rng.make 7) ~n_classes:3 x ys in
  Alcotest.check weights "cnn weights identical"
    (Ml.Cnn.dump_weights naive) (Ml.Cnn.dump_weights kernel)

let test_cnn_kernel_vs_reference_dense () = cnn_differential ~d:8 ()
let test_cnn_kernel_vs_reference_conv () = cnn_differential ~d:24 ()

let dgcnn_differential () =
  let graphs, ys = chain_graphs (Rng.make 3) ~n:40 in
  let params = { Ml.Dgcnn.default_params with epochs = 2 } in
  let kernel =
    Ml.Dgcnn.train ~params (Rng.make 17) ~n_classes:2 ~feat_dim:4 graphs ys
  in
  let naive =
    Ml.Reference.Dgcnn.train ~params (Rng.make 17) ~n_classes:2 ~feat_dim:4
      graphs ys
  in
  Alcotest.check weights "dgcnn weights identical"
    (Ml.Dgcnn.dump_weights naive) (Ml.Dgcnn.dump_weights kernel)

(* -- jobs invariance -------------------------------------------------------- *)

let test_cnn_jobs_invariant () =
  let params = { Ml.Cnn.default_params with epochs = 3 } in
  let train jobs =
    Pool.with_jobs jobs (fun () ->
        let x, ys = blobs (Rng.make 11) ~n_classes:3 ~n:70 ~d:24 in
        Ml.Cnn.dump_weights (Ml.Cnn.train ~params (Rng.make 7) ~n_classes:3 x ys))
  in
  Alcotest.check weights "cnn --jobs 1 = --jobs 4" (train 1) (train 4)

let test_dgcnn_jobs_invariant () =
  let params = { Ml.Dgcnn.default_params with epochs = 2 } in
  let train jobs =
    Pool.with_jobs jobs (fun () ->
        let graphs, ys = chain_graphs (Rng.make 3) ~n:40 in
        Ml.Dgcnn.dump_weights
          (Ml.Dgcnn.train ~params (Rng.make 17) ~n_classes:2 ~feat_dim:4
             graphs ys))
  in
  Alcotest.check weights "dgcnn --jobs 1 = --jobs 4" (train 1) (train 4)

(* -- streamed vs in-memory --------------------------------------------------- *)

let test_cnn_stream_one_block () =
  let params = { Ml.Cnn.default_params with epochs = 3 } in
  let x, ys = blobs (Rng.make 11) ~n_classes:3 ~n:70 ~d:24 in
  let inmem = Ml.Cnn.train ~params (Rng.make 7) ~n_classes:3 x ys in
  let x, _ = blobs (Rng.make 11) ~n_classes:3 ~n:70 ~d:24 in
  let streamed =
    Ml.Cnn.train_stream ~params (Rng.make 7) ~n_classes:3 (Ml.Fblock.of_fmat x)
      ys
  in
  Alcotest.check weights "one block = in-memory"
    (Ml.Cnn.dump_weights inmem) (Ml.Cnn.dump_weights streamed)

let test_dgcnn_stream_vs_inmem () =
  let params = { Ml.Dgcnn.default_params with epochs = 2 } in
  let graphs, ys = chain_graphs (Rng.make 3) ~n:40 in
  let inmem =
    Ml.Dgcnn.train ~params (Rng.make 17) ~n_classes:2 ~feat_dim:4 graphs ys
  in
  let streamed =
    Ml.Model.train_dgcnn_stream ~params (Rng.make 17) ~n_classes:2
      (Ml.Gsource.of_graphs graphs) ys
  in
  Alcotest.check weights "gsource = in-memory"
    (Ml.Dgcnn.dump_weights inmem) (Ml.Dgcnn.dump_weights streamed)

(* -- transpose cache --------------------------------------------------------- *)

(* predict_batch caches a transposed weight matrix per dense layer; a weight
   update must invalidate it, or batch predictions go stale *)
let test_transpose_cache_invalidation () =
  let rng = Rng.make 5 in
  let net =
    {
      Ml.Nn.layers =
        [
          Ml.Nn.dense rng ~d_in:6 ~d_out:16;
          Ml.Nn.relu ();
          Ml.Nn.dense rng ~d_in:16 ~d_out:3;
        ];
      n_classes = 3;
    }
  in
  let x, ys = blobs (Rng.make 9) ~n_classes:3 ~n:30 ~d:6 in
  let check_batch_matches_rows msg =
    let batch = Ml.Nn.predict_batch net x in
    let rows = Array.init x.F.n (fun i -> Ml.Nn.predict net (F.row_copy x i)) in
    Alcotest.(check (array int)) msg rows batch
  in
  check_batch_matches_rows "fresh net";
  (* per-example path (mutates weights in place) *)
  ignore (Ml.Nn.train_step ~lr:0.05 ~rng net (F.row_copy x 0) ys.(0));
  check_batch_matches_rows "after train_step";
  (* batched path *)
  ignore (Ml.Nn.train_batch ~lr:0.05 ~rng net x ys);
  check_batch_matches_rows "after train_batch"

(* -- cnn snapshots ------------------------------------------------------------ *)

let test_cnn_snapshot_roundtrip () =
  let x, ys = blobs (Rng.make 11) ~n_classes:3 ~n:70 ~d:24 in
  let s =
    Option.get (Ml.Model.train_snapshot "cnn" (Rng.make 7) ~n_classes:3 x ys)
  in
  let s' = Ml.Model.load (Ml.Model.save s) in
  Alcotest.(check string) "kind" "cnn" (Ml.Model.snapshot_kind s');
  let v = F.row_copy x 3 in
  Alcotest.(check bool) "margins survive save/load" true
    (Ml.Model.margins s v = Ml.Model.margins s' v);
  Alcotest.(check int) "predict survives save/load"
    ((Ml.Model.restore s).predict v)
    ((Ml.Model.restore s').predict v)

let suite =
  [
    Alcotest.test_case "of_rows_into" `Quick test_of_rows_into;
    Alcotest.test_case "gather_rows_into" `Quick test_gather_rows_into;
    Alcotest.test_case "train_batch = reference (dense, b=32)" `Quick
      (nnb_differential ~d:8 ~n_classes:3 ~batch:32 ~seed:41);
    Alcotest.test_case "train_batch = reference (dense, b=7)" `Quick
      (nnb_differential ~d:11 ~n_classes:4 ~batch:7 ~seed:42);
    Alcotest.test_case "train_batch = reference (conv, b=32)" `Quick
      (nnb_differential ~d:24 ~n_classes:3 ~batch:32 ~seed:43);
    Alcotest.test_case "train_batch = reference (conv, b=19)" `Quick
      (nnb_differential ~d:30 ~n_classes:5 ~batch:19 ~seed:44);
    Alcotest.test_case "train_batch = reference (conv, b=1)" `Quick
      (nnb_differential ~d:20 ~n_classes:2 ~batch:1 ~seed:45);
    Alcotest.test_case "cnn = reference (dense tail)" `Slow
      test_cnn_kernel_vs_reference_dense;
    Alcotest.test_case "cnn = reference (conv stack)" `Slow
      test_cnn_kernel_vs_reference_conv;
    Alcotest.test_case "dgcnn = reference" `Slow dgcnn_differential;
    Alcotest.test_case "cnn jobs-invariant" `Slow test_cnn_jobs_invariant;
    Alcotest.test_case "dgcnn jobs-invariant" `Slow test_dgcnn_jobs_invariant;
    Alcotest.test_case "cnn stream one block = in-memory" `Slow
      test_cnn_stream_one_block;
    Alcotest.test_case "dgcnn gsource = in-memory" `Slow
      test_dgcnn_stream_vs_inmem;
    Alcotest.test_case "transpose cache invalidation" `Quick
      test_transpose_cache_invalidation;
    Alcotest.test_case "cnn snapshot round-trip" `Quick
      test_cnn_snapshot_roundtrip;
  ]
